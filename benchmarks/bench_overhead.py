"""§5.2 protocol cost bench: traffic and storage decomposition.

Regenerates the section's qualitative claims: with the CLC timer off, the
protocol's only network cost is one piggybacked integer per inter-cluster
message (plus acks); checkpoint-related traffic and storage grow as the
timer tightens.
"""

from benchmarks.conftest import run_once
from repro.experiments.overhead import protocol_overhead


def test_protocol_overhead(benchmark, scale, record_result):
    exp = run_once(benchmark, protocol_overhead, seed=42, **scale)
    record_result("overhead_decomposition", exp.render())

    rows = {row[0]: row for row in exp.rows}
    off = rows["off"]
    tightest = exp.rows[-1]
    # Timer off is the cheapest regime.  Note it is NOT checkpoint-free
    # here: the workload is bidirectional, so inter-cluster messages still
    # force CLCs (the §5.3 effect); only the unforced ones disappear.
    assert off[1] == min(row[1] for row in exp.rows)
    assert tightest[1] > off[1]
    assert tightest[3] > off[3]   # more 2PC bytes with a tighter timer
    assert tightest[5] > off[5]   # more replica bytes
    assert tightest[7] >= off[7]  # more stored checkpoint bytes
    # piggyback volume is workload-bound, not timer-bound
    piggy = [row[2] for row in exp.rows]
    assert max(piggy) - min(piggy) <= 0.2 * max(piggy) + 64
    # control overhead grows monotonically as checkpointing tightens
    assert tightest[8] >= off[8]
