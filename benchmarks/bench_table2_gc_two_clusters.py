"""Table 2 -- stored CLCs before/after each garbage collection (2 clusters).

Paper: Fig. 9 scenario with 103 messages 1->0, GC every 2 hours; before
10-18 CLCs, after 2; without GC 63 CLCs per cluster accumulate (= 126
local states per node with neighbour replication).
"""

from benchmarks.conftest import run_once
from repro.experiments.table2_table3 import gc_two_clusters, no_gc_reference


def _run_both(scale):
    exp = gc_two_clusters(seed=42, **scale)
    ref = no_gc_reference(seed=42, **scale)
    return exp, ref


def test_table2_gc_two_clusters(benchmark, scale, record_result):
    exp, ref = run_once(benchmark, _run_both, scale)
    record_result("table2_gc_two_clusters", exp.render() + "\n\n" + ref.render())

    assert len(exp.rows) >= 3  # one row per garbage collection
    for row in exp.rows:
        _, b0, a0, b1, a1 = row
        assert a0 <= b0 and a1 <= b1
        assert a0 <= 3 and a1 <= 3   # paper: 2 just after each GC

    # §5.4 sizing without GC: CLCs accumulate; states/node doubles them
    for _cluster, stored, states, _peak in ref.rows:
        assert states == 2 * stored
        if scale["nodes"] == 100 and scale["total_time"] == 36000.0:
            assert 40 <= stored <= 90  # paper: 63
