"""Figure 8 -- increasing the number of CLCs in cluster 1.

Paper shape: with cluster 0's timer at 30 min, sweeping cluster 1's timer
from 15 to 60 min changes cluster 1's totals but cluster 0 "do[es] not
store more CLCs even if cluster 1 timer is set to 15 minutes", thanks to
the low 1->0 message count.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig8 import cluster1_timer_sweep

DELAYS_MIN = [15, 20, 25, 30, 40, 50, 60]


def test_fig8_cluster1_timer(benchmark, scale, record_result):
    exp = run_once(
        benchmark, cluster1_timer_sweep, delays_min=DELAYS_MIN, seed=42, **scale
    )
    record_result("fig8_cluster1_timer", exp.render())

    c0_total = exp.series["c0 total"]
    c1_total = exp.series["c1 total"]
    # cluster 0 insensitive to cluster 1's timer
    assert max(c0_total) - min(c0_total) <= max(2, max(c0_total) // 8)
    # cluster 1's own totals fall as its timer grows
    assert c1_total[0] >= c1_total[-1]
