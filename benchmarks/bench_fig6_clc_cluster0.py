"""Figure 6 -- CLCs committed in cluster 0 vs its unforced-CLC timer.

Paper shape: unforced CLCs fall as ~ total_time/delay (a bit below, since
forced CLCs reset the timer); forced CLCs stay constant (~8 at full scale,
caused by the ~11 messages arriving from cluster 1 regardless of the
timer).
"""

from benchmarks.conftest import run_once
from repro.analysis.plots import ascii_plot
from repro.analysis.reporting import format_series
from repro.experiments.fig6_fig7 import clc_delay_sweep

DELAYS_MIN = [5, 10, 15, 20, 30, 45, 60, 90, 120]


def test_fig6_cluster0_clcs(benchmark, scale, record_result):
    exp = run_once(
        benchmark, clc_delay_sweep, delays_min=DELAYS_MIN, seed=42, **scale
    )
    c0_series = {k: v for k, v in exp.series.items() if k.startswith("c0")}
    rendered = format_series(
        "delay (min)",
        exp.xs,
        c0_series,
        title="Figure 6 -- Interval Between CLCs Influence in Cluster 0",
    )
    plot = ascii_plot(
        exp.xs, c0_series, title="Figure 6 (plotted)", x_label="delay (min)"
    )
    record_result(
        "fig6_clc_cluster0", rendered + "\n\n" + plot + "\n\n" + exp.render()
    )

    unforced = exp.series["c0 unforced"]
    forced = exp.series["c0 forced"]
    # decreasing ~ total/delay
    assert all(a >= b for a, b in zip(unforced, unforced[1:]))
    for delay, count in zip(exp.xs, unforced):
        assert count <= scale["total_time"] / (delay * 60.0) + 1
    # forced roughly constant across two orders of magnitude of the timer
    assert max(forced) - min(forced) <= max(3, max(forced) // 2)
