"""Robustness (multi-seed), failure-rate sweep and scalability benches."""

from benchmarks.conftest import HOUR, bench_scale, run_once
from repro.experiments.failure_sweep import mtbf_sweep
from repro.experiments.robustness import multi_seed_robustness
from repro.experiments.scalability import federation_scaling


def test_multi_seed_robustness(benchmark, scale, record_result):
    seeds = range(1, 6) if scale["nodes"] < 100 else range(1, 11)
    exp = run_once(benchmark, multi_seed_robustness, seeds=list(seeds), **scale)
    record_result("robustness_multi_seed", exp.render())

    by_name = {row[0]: row for row in exp.rows}
    # Fig. 7: unforced CLCs in cluster 1 are zero for EVERY seed
    assert by_name["c1 unforced"][4] == 0  # max over seeds
    # Table 1 structure: intra dominates inter across all seeds
    assert by_name["msgs 0->0"][3] > by_name["msgs 0->1"][4]
    assert by_name["msgs 1->1"][3] > by_name["msgs 1->0"][4]
    # Fig. 6: the forced count's spread is small (constant-ish)
    forced = by_name["c0 forced"]
    assert forced[2] <= max(2.0, 0.6 * forced[1])  # std <= 60% of mean


def test_mtbf_sweep(benchmark, record_result):
    exp = run_once(
        benchmark, mtbf_sweep,
        mtbfs=[4 * HOUR, HOUR, HOUR / 2],
        nodes=10,
        total_time=8 * HOUR,
        seed=42,
    )
    record_result("mtbf_sweep", exp.render())

    by_key = {(row[0], row[1]): row for row in exp.rows}
    # goodput decreases (weakly) as failures become more frequent
    for protocol in ("hc3i", "global-coordinated"):
        goodputs = [by_key[(protocol, m)][4] for m in ("4h", "1h", "0.5h")]
        assert goodputs[0] >= goodputs[-1]
    # HC3I loses no more work than whole-federation rollback at high rates
    assert by_key[("hc3i", "0.5h")][4] >= by_key[("global-coordinated", "0.5h")][4]


def test_federation_scaling(benchmark, record_result):
    shapes = [(2, 10), (2, 50), (4, 25), (8, 12)]
    if bench_scale()["nodes"] >= 100:
        shapes += [(2, 100), (16, 12)]
    exp = run_once(benchmark, federation_scaling, shapes=shapes)
    record_result("federation_scaling", exp.render())

    events = {row[0]: row[2] for row in exp.rows}
    rates = [row[6] for row in exp.rows]
    # larger federations process more events, and the kernel sustains a
    # healthy event rate throughout
    assert events["2x50"] > events["2x10"]
    assert min(rates) > 10_000
