"""Table 3 -- stored CLCs before/after each GC with three clusters.

Paper: cluster 2 clones cluster 1, ~200 messages leave/arrive per cluster;
before 30-80 CLCs, after 2 per cluster.
"""

from benchmarks.conftest import run_once
from repro.experiments.table2_table3 import gc_three_clusters


def test_table3_gc_three_clusters(benchmark, scale, record_result):
    exp = run_once(benchmark, gc_three_clusters, seed=42, **scale)
    record_result("table3_gc_three_clusters", exp.render())

    assert len(exp.rows) >= 3
    for row in exp.rows:
        befores = row[1::2]
        afters = row[2::2]
        for before, after in zip(befores, afters):
            assert after <= before
            assert after <= 3  # paper: 2
        if scale["nodes"] == 100:
            # heavy three-way chatter accumulates tens of CLCs per period
            assert max(befores) >= 8
