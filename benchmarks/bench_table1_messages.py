"""Table 1 -- application message counts (paper §5.2).

Paper rows: 0->0: 2920, 1->1: 2497, 0->1: 145, 1->0: 11.
"""

from benchmarks.conftest import run_once
from repro.experiments.table1 import PAPER_TABLE1, table1_message_counts


def test_table1_message_counts(benchmark, scale, record_result):
    exp = run_once(benchmark, table1_message_counts, seed=42, **scale)
    record_result("table1_messages", exp.render())

    measured = {
        (int(row[0][-1]), int(row[1][-1])): row[2] for row in exp.rows
    }
    scale_factor = (scale["nodes"] * scale["total_time"]) / (100 * 36000.0)
    for flow, paper_count in PAPER_TABLE1.items():
        expected = paper_count * scale_factor
        # Poisson-level noise: within 40% + slack for the sparse flows
        assert measured[flow] <= expected * 1.4 + 8
        assert measured[flow] >= expected * 0.6 - 8
    # the paper's dominance structure
    assert measured[(0, 0)] > measured[(0, 1)] > measured[(1, 0)]
    assert measured[(1, 1)] > measured[(1, 0)]
