"""Figure 7 -- CLCs committed in cluster 1 during the Figure 6 sweep.

Paper shape: cluster 1's timer is infinite, so it commits **no** unforced
CLCs; its forced CLCs are proportional to the number of CLCs stored in
cluster 0, "because numerous messages come from cluster 0" (~145 messages,
each forcing at most once per new cluster-0 SN).
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_series
from repro.experiments.fig6_fig7 import clc_delay_sweep

DELAYS_MIN = [5, 10, 15, 20, 30, 45, 60, 90, 120]


def test_fig7_cluster1_clcs(benchmark, scale, record_result):
    exp = run_once(
        benchmark, clc_delay_sweep, delays_min=DELAYS_MIN, seed=43, **scale
    )
    rendered = format_series(
        "delay (min)",
        exp.xs,
        {
            "c1 unforced": exp.series["c1 unforced"],
            "c1 forced": exp.series["c1 forced"],
            "c0 total": [
                u + f + 1
                for u, f in zip(exp.series["c0 unforced"], exp.series["c0 forced"])
            ],
        },
        title="Figure 7 -- Interval Between CLCs Influence in Cluster 1",
    )
    record_result("fig7_clc_cluster1", rendered)

    assert all(v == 0 for v in exp.series["c1 unforced"])
    c0_total = [
        u + f + 1
        for u, f in zip(exp.series["c0 unforced"], exp.series["c0 forced"])
    ]
    c1_forced = exp.series["c1 forced"]
    # proportionality: more cluster-0 CLCs -> more forced CLCs in cluster 1
    assert c1_forced[0] >= c1_forced[-1]
    for total, forced in zip(c0_total, c1_forced):
        assert forced <= total + 2
    # at full scale the correlation is strong: check rank agreement on the
    # sweep extremes
    if c0_total[0] > 2 * c0_total[-1]:
        assert c1_forced[0] >= c1_forced[-1]
