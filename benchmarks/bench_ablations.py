"""Ablation benches over HC3I's design choices (see DESIGN.md §4).

* transitive DDV piggybacking (§7) vs SN vs force-always (Fig. 4),
* sender-side message logging on/off (§3.3),
* garbage-collection period (§5.4 trade-off),
* stable-storage replication degree (§7).
"""

from benchmarks.conftest import HOUR, run_once
from repro.experiments.ablations import (
    gc_period_sweep,
    incremental_checkpoint_ablation,
    message_logging_ablation,
    replication_degree_sweep,
    transitive_ddv_ablation,
)


def test_ablation_transitive_ddv(benchmark, record_result):
    exp = run_once(
        benchmark, transitive_ddv_ablation,
        nodes_per_stage=20, n_stages=4, total_time=4 * HOUR, seed=42,
    )
    record_result("ablation_transitive_ddv", exp.render())
    forced = {row[0]: row[1] for row in exp.rows}
    assert forced["hc3i-transitive"] <= forced["hc3i"]
    assert forced["cic-always"] > forced["hc3i"]
    msgs = {row[0]: row[3] for row in exp.rows}
    assert forced["cic-always"] == msgs["cic-always"]  # one CLC per message


def test_ablation_message_logging(benchmark, record_result):
    exp = run_once(
        benchmark, message_logging_ablation,
        nodes=20, total_time=4 * HOUR, seed=42,
    )
    record_result("ablation_message_logging", exp.render())
    with_log, without_log = exp.rows
    # §3.3's goal: the log limits the number of clusters that roll back
    assert without_log[3] >= with_log[3]
    assert without_log[5] >= with_log[5]  # and without it more work is lost


def test_ablation_gc_period(benchmark, scale, record_result):
    exp = run_once(
        benchmark, gc_period_sweep,
        periods_h=[0.5, 1, 2, 4, None],
        nodes=min(50, scale["nodes"]),
        total_time=scale["total_time"],
        seed=42,
    )
    record_result("ablation_gc_period", exp.render())
    peaks = [row[1] for row in exp.rows]
    gc_msgs = [row[5] for row in exp.rows]
    # §5.4's trade-off: more frequent GC -> lower peak storage, more traffic
    assert peaks[0] <= peaks[-1]
    assert gc_msgs[0] >= gc_msgs[-2]  # 0.5h GC sends more than 4h GC
    assert gc_msgs[-1] == 0           # GC off sends nothing


def test_ablation_incremental_storage(benchmark, record_result):
    exp = run_once(
        benchmark, incremental_checkpoint_ablation,
        nodes=20, total_time=4 * HOUR, seed=42,
    )
    record_result("ablation_incremental_storage", exp.render())
    full, inc = exp.rows
    assert inc[3] < full[3]       # delta replication moves fewer bytes
    assert abs(inc[1] - full[1]) <= 4  # without changing the CLC schedule


def test_ablation_replication_degree(benchmark, record_result):
    exp = run_once(
        benchmark, replication_degree_sweep,
        degrees=(0, 1, 2, 3), nodes=20, total_time=2 * HOUR, seed=42,
    )
    record_result("ablation_replication", exp.render())
    rows = {row[0]: row for row in exp.rows}
    assert [rows[d][1] for d in (0, 1, 2, 3)] == [0, 1, 2, 3]
    # replica traffic scales linearly with the degree
    base = rows[1][4]
    assert rows[2][4] == 2 * base
    assert rows[3][4] == 3 * base
    # states per node = stored * (1 + degree)
    for d in (0, 1, 2, 3):
        assert rows[d][3] == rows[d][2] * (1 + d)
