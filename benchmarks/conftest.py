"""Shared benchmark plumbing.

Every benchmark regenerates one table or figure of the paper at full scale
(100 nodes per cluster, 10-hour application) unless ``HC3I_BENCH_SCALE``
says otherwise:

* ``HC3I_BENCH_SCALE=full``  (default) -- the paper's configuration,
* ``HC3I_BENCH_SCALE=small`` -- 10 nodes / 2 hours, for quick checks.

Each bench runs its experiment exactly once under ``benchmark.pedantic``
(the simulation itself is deterministic; repeating it only wastes time),
prints the paper-style rows, and writes them to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"

HOUR = 3600.0


def bench_scale() -> dict:
    mode = os.environ.get("HC3I_BENCH_SCALE", "full")
    if mode == "small":
        return {"nodes": 10, "total_time": 2 * HOUR}
    return {"nodes": 100, "total_time": 10 * HOUR}


@pytest.fixture
def scale() -> dict:
    return bench_scale()


@pytest.fixture
def record_result():
    """Print the experiment output and persist it under results/."""

    def _record(name: str, rendered: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
        print()
        print(rendered)

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic experiment exactly once, timed."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
