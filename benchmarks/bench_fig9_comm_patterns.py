"""Figure 9 -- increasing communication from cluster 1 to cluster 0.

Paper shape: "The number of forced CLCs increases fast with the number of
messages from cluster 1 to cluster 0" -- bidirectional chatter makes SNs
grow on both sides and most messages force a CLC, which is exactly the
workload the protocol is *not* meant for (§5.3).
"""

from benchmarks.conftest import run_once
from repro.analysis.plots import ascii_plot
from repro.experiments.fig9 import communication_pattern_sweep

MESSAGE_COUNTS = [10, 30, 50, 70, 90, 110]


def test_fig9_communication_patterns(benchmark, scale, record_result):
    exp = run_once(
        benchmark,
        communication_pattern_sweep,
        message_counts=MESSAGE_COUNTS,
        seed=42,
        **scale,
    )
    plot = ascii_plot(
        exp.xs,
        {k: exp.series[k] for k in ("c0 forced", "c0 total", "c1 forced")},
        title="Figure 9 (plotted)",
        x_label="msgs 1->0",
    )
    record_result("fig9_comm_patterns", exp.render() + "\n\n" + plot)

    c0_forced = exp.series["c0 forced"]
    c1_forced = exp.series["c1 forced"]
    c0_total = exp.series["c0 total"]
    # fast growth of forced CLCs in cluster 0 with the 1->0 flow
    assert c0_forced[-1] > c0_forced[0]
    assert c0_forced[-1] >= 2 * max(1, c0_forced[0])
    # totals grow too
    assert c0_total[-1] > c0_total[0]
    # cluster 1 keeps forcing as well (bidirectional SN growth)
    assert c1_forced[-1] >= c1_forced[0]
