"""FROZEN pre-rewrite kernel (PR 4 baseline) -- benchmark reference ONLY.

This is a verbatim snapshot of ``src/repro/sim/kernel.py`` as of commit
89bd73f (before the fast-path rewrite): per-event ``Event`` objects with
Python-level ``__lt__`` heap dispatch, O(n) ``pending``, and a
``peek()``/``step()`` run loop.  ``tools/bench_kernel.py`` imports it to
measure the *current* kernel against the pre-rewrite substrate on the same
machine, which is what makes the CI perf gate machine-independent.

Do not import this from ``src/`` code and do not "fix" or optimize it --
its whole value is that it never changes.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, re-running, ...)."""


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule`; keep it to be able to
    :meth:`Simulator.cancel` the callback before it fires.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} seq={self.seq} {name} [{state}]>"


class Simulator:
    """Deterministic discrete-event simulation loop.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.run(until=10.0)

    The loop pops the earliest event, advances :attr:`now` to its timestamp
    and invokes its callback.  Callbacks may schedule further events.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self._processed: int = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        ev = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Cancelling twice is a no-op."""
        event.cancelled = True
        event.fn = None  # break reference cycles early
        event.args = ()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if empty."""
        self._drop_cancelled()
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` if the queue is empty."""
        self._drop_cancelled()
        if not self._queue:
            return False
        ev = heapq.heappop(self._queue)
        if ev.time < self.now:  # pragma: no cover - defensive
            raise SimulationError("event queue corrupted: time went backwards")
        self.now = ev.time
        fn, args = ev.fn, ev.args
        ev.fn = None
        ev.args = ()
        self._processed += 1
        assert fn is not None
        fn(*args)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue empties or simulated time reaches ``until``.

        Returns the simulation time at which the run stopped.  When ``until``
        is given the clock is advanced to exactly ``until`` even if the last
        event fired earlier (matching how the paper reports a fixed
        application duration).
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                nxt = self.peek()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    break
                self.step()
            if until is not None and not self._stopped and self.now < until:
                self.now = until
            return self.now
        finally:
            self._running = False

    def stop(self) -> None:
        """Request the current :meth:`run` to return after this event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    @property
    def processed(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    def _drop_cancelled(self) -> None:
        q = self._queue
        while q and q[0].cancelled:
            heapq.heappop(q)
