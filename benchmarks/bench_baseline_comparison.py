"""Protocol-family comparison bench (§2.2/§6 positioning).

HC3I vs global coordinated checkpointing, independent checkpointing and
pessimistic message logging on identical workloads and failure schedules.
"""

from benchmarks.conftest import HOUR, run_once
from repro.experiments.ablations import baseline_comparison


def test_baseline_comparison(benchmark, record_result):
    exp = run_once(
        benchmark, baseline_comparison, nodes=20, total_time=4 * HOUR, seed=42
    )
    record_result("baseline_comparison", exp.render())

    rows = {row[0]: row for row in exp.rows}
    # the paper's qualitative claims:
    # 1. global coordination rolls back every cluster on any failure
    assert rows["global-coordinated"][3] == 2.0
    # 2. HC3I's rollback scope is no larger than global coordination's
    assert rows["hc3i"][3] <= rows["global-coordinated"][3]
    # 3. global coordination loses the most work per failure
    assert rows["global-coordinated"][4] >= rows["hc3i"][4]
    # 4. pessimistic logging logs far more bytes than anyone else
    others = max(rows[p][5] for p in rows if p != "pessimistic-log")
    assert rows["pessimistic-log"][5] > others
    # 5. global coordination's freeze spans WAN latency
    assert rows["global-coordinated"][6] > 0.25  # ms
