"""Figure 5 -- the protocol's worked example as a regression benchmark.

Asserts the full §4 narrative: which messages force CLCs, the ack SNs, the
rollback targets and the alert cascade after the fault in the middle
cluster.
"""

from benchmarks.conftest import run_once
from repro.analysis.reporting import format_table
from repro.experiments.figure5 import figure5_scenario


def test_figure5_worked_example(benchmark, record_result):
    outcome = run_once(benchmark, figure5_scenario)

    rows = [
        ("pre-fault SNs", str(outcome.pre_fault_sns)),
        ("pre-fault DDVs", str(outcome.pre_fault_ddvs)),
        ("forced CLCs", str(outcome.pre_fault_forced)),
        ("acks m1..m5", str([outcome.acks[m] for m in ("m1", "m2", "m3", "m4", "m5")])),
        ("rollbacks", str(outcome.rollbacks)),
        ("alerts", str(outcome.alerts)),
        ("replays", str(outcome.replays)),
    ]
    record_result(
        "figure5_example",
        format_table(["step", "value"], rows, title="Figure 5 worked example"),
    )

    assert outcome.pre_fault_sns == [2, 4, 3]
    assert outcome.pre_fault_forced == [1, 1, 2]
    assert outcome.acks == {"m1": 2, "m2": 3, "m3": 2, "m4": 3, "m5": 2}
    assert outcome.rollbacks == [(1, 4), (2, 3), (0, 2)]
    assert outcome.alerts == [(1, 4), (2, 3), (0, 2)]
    assert outcome.replays == 0
