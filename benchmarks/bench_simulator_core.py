"""Microbenchmarks of the simulation substrate itself.

Not a paper experiment: these track the DES kernel's throughput so
regressions in the substrate (which every experiment sits on) are visible.
"""

from repro.sim.kernel import Simulator
from repro.sim.process import Process, Timeout


def test_kernel_event_throughput(benchmark):
    """Schedule+dispatch cost of raw kernel events."""

    def run():
        sim = Simulator()

        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 50_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count

    assert benchmark(run) == 50_000


def test_process_switch_throughput(benchmark):
    """Generator-process resume cost (the app-loop hot path)."""

    def run():
        sim = Simulator()

        def proc():
            for _ in range(10_000):
                yield Timeout(1.0)

        procs = [Process(sim, proc()) for _ in range(5)]
        sim.run()
        return sum(not p.alive for p in procs)

    assert benchmark(run) == 5


def test_full_federation_run(benchmark):
    """End-to-end cost of one small federation simulation."""
    from repro.app.workloads import table1_workload
    from repro.cluster.federation import Federation

    def run():
        topology, application, timers = table1_workload(
            nodes=20, total_time=7200.0
        )
        fed = Federation(topology, application, timers, seed=1)
        return fed.run().events

    assert benchmark(run) > 0
