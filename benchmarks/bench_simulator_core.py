"""Microbenchmarks of the simulation substrate itself.

Not a paper experiment: these track the DES kernel's throughput so
regressions in the substrate (which every experiment sits on) are visible.

Machine-readable trajectory: the committed ``benchmarks/BENCH_kernel.json``
holds the recorded numbers for these workloads per substrate change
(``tools/bench_kernel.py --record``); CI's bench-smoke job regenerates the
measurement as an artifact and hard-gates kernel throughput against the
frozen pre-rewrite snapshot (``benchmarks/_legacy_kernel.py``).
"""

from repro.sim.kernel import Simulator
from repro.sim.process import Process, Timeout
from repro.sim.timers import PeriodicTimer


def test_kernel_event_throughput(benchmark):
    """Schedule+dispatch cost of raw kernel events."""

    def run():
        sim = Simulator()

        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 50_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count

    assert benchmark(run) == 50_000


def test_process_switch_throughput(benchmark):
    """Generator-process resume cost (the app-loop hot path)."""

    def run():
        sim = Simulator()

        def proc():
            for _ in range(10_000):
                yield Timeout(1.0)

        procs = [Process(sim, proc()) for _ in range(5)]
        sim.run()
        return sum(not p.alive for p in procs)

    assert benchmark(run) == 5


def test_periodic_timer_throughput(benchmark):
    """A field of periodic timers: the reschedule/timer-wheel fast path.

    This is the shape of every cluster's unforced-CLC and heartbeat
    timers (``config/timers.py``): many concurrent timers, each firing and
    re-arming itself for the whole run.
    """

    def run():
        sim = Simulator()
        timers = [
            PeriodicTimer(sim, 1.0 + i * 0.01, lambda: None) for i in range(100)
        ]
        for t in timers:
            t.start()
        sim.run(until=500.0)
        return sim.processed

    assert benchmark(run) > 0


def test_schedule_many_burst(benchmark):
    """Batched scheduling bursts (signal wakeups, broadcast fan-outs)."""

    def run():
        sim = Simulator()
        sink = []
        for wave in range(100):
            sim.schedule_many(
                [(float(wave), sink.append, (i,)) for i in range(200)]
            )
        sim.run()
        return len(sink)

    assert benchmark(run) == 20_000


def test_cancellation_heavy_churn(benchmark):
    """Schedule/cancel churn: the compaction + O(1)-pending path.

    Mirrors the protocol's mass-cancel moments (rollback aborting an
    in-flight 2PC round, detach-on-interrupt): most scheduled events never
    fire, and the queue must not accumulate corpses.
    """

    def run():
        sim = Simulator()
        fired = []
        for wave in range(50):
            events = [
                sim.schedule(float(wave) + 0.5, fired.append, i) for i in range(400)
            ]
            for ev in events[::4]:
                sim.cancel(ev)
            sim.run(until=float(wave))
        sim.run()
        return len(fired), sim.pending

    fired_count, pending = benchmark(run)
    assert fired_count == 50 * 300
    assert pending == 0


def test_full_federation_run(benchmark):
    """End-to-end cost of one small federation simulation."""
    from repro.app.workloads import table1_workload
    from repro.cluster.federation import Federation

    def run():
        topology, application, timers = table1_workload(
            nodes=20, total_time=7200.0
        )
        fed = Federation(topology, application, timers, seed=1)
        return fed.run().events

    assert benchmark(run) > 0
