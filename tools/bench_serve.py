#!/usr/bin/env python
"""Measure repro-serve throughput and tail latency; record or gate it.

Starts the real server stack in-process (ephemeral port, temp cache
pre-warmed with one computed grid point per synthetic experiment key)
and hammers the memoized point-fetch route from ``--clients`` concurrent
keep-alive connections at two or more concurrency levels.  Reported per
level, best of ``--repeat`` runs by QPS:

* ``qps`` -- completed requests per wall-clock second,
* ``p50_ms`` / ``p99_ms`` -- client-observed latency percentiles,
* ``hot_ratio`` -- fraction of responses served from the in-memory hot
  tier (the steady state should be ~1.0: only each key's first fetch
  touches disk).

Modes::

    python tools/bench_serve.py                    # print a report
    python tools/bench_serve.py --json out.json    # machine-readable
    python tools/bench_serve.py --record "label"   # append to the committed
                                                   #   trajectory
                                                   #   (benchmarks/BENCH_serve.json)
    python tools/bench_serve.py --gate             # exit 1 on regression

The gate enforces a floor on single-level QPS against the committed
baseline: current ``qps`` at the highest concurrency level must reach
``baseline * $HC3I_BENCH_ABS_SLACK`` (default 0.5 -- serving numbers
swing more across machines than pure-CPU kernel numbers, so the default
slack is generous; tighten it on a pinned benchmark host).
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO / "benchmarks" / "BENCH_serve.json"

sys.path.insert(0, str(REPO / "src"))


def _percentile(samples: list, q: float) -> float:
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def start_server(n_keys: int = 8, hot_mb: float = 16.0):
    """Real ServeApp on an ephemeral port over a pre-warmed temp cache."""
    from repro.experiments import registry
    from repro.experiments.cache import ResultCache
    from repro.serve import ServeApp, start_in_thread

    tmp = tempfile.mkdtemp(prefix="bench-serve-")
    cache = ResultCache(Path(tmp), journal_shards=4)
    # pre-warm: n_keys distinct seeds of the cheapest real experiment, so
    # the benchmark measures serving, not simulation
    exp = registry.get("table1")
    grid0 = exp.build_grid({"nodes": 4, "total_time": 600.0})[0]
    keys = []
    for seed in range(n_keys):
        params = {**grid0, "seed": seed}
        cache.put(exp.name, params, exp.point(params))
        keys.append(seed)
    app = ServeApp(cache=cache, hot_mb=hot_mb, max_inflight=4)
    handle = start_in_thread(app)
    paths = [
        f"/experiments/table1/points?scale=tiny&total_time=600.0&seed={seed}"
        for seed in keys
    ]
    return handle, paths


def run_level(handle, paths: list, clients: int, duration: float) -> dict:
    """Hammer ``paths`` from ``clients`` keep-alive connections."""
    stop_at = time.perf_counter() + duration
    results: list = [None] * clients

    def worker(idx: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=10)
        latencies, count, hot = [], 0, 0
        i = idx  # stagger key order across clients
        while time.perf_counter() < stop_at:
            path = paths[i % len(paths)]
            i += 1
            t0 = time.perf_counter()
            conn.request("GET", path)
            resp = conn.getresponse()
            body = resp.read()
            latencies.append(time.perf_counter() - t0)
            assert resp.status == 200, (resp.status, body[:200])
            count += 1
            if resp.getheader("X-Repro-Source") == "hot":
                hot += 1
        conn.close()
        results[idx] = (count, hot, latencies)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    total = sum(r[0] for r in results)
    hot = sum(r[1] for r in results)
    latencies = [s for r in results for s in r[2]]
    return {
        "clients": clients,
        "requests": total,
        "qps": round(total / elapsed, 1),
        "p50_ms": round(_percentile(latencies, 50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 99) * 1e3, 3),
        "mean_ms": round(statistics.fmean(latencies) * 1e3, 3),
        "hot_ratio": round(hot / total, 4) if total else 0.0,
    }


def measure(levels: list, duration: float = 2.0, repeat: int = 2) -> dict:
    handle, paths = start_server()
    try:
        # warm every key into the hot tier once so levels measure steady state
        run_level(handle, paths, clients=1, duration=0.25)
        measured = []
        for clients in levels:
            best = max(
                (run_level(handle, paths, clients, duration) for _ in range(repeat)),
                key=lambda r: r["qps"],
            )
            measured.append(best)
    finally:
        handle.stop()
    return {
        "levels": measured,
        "python": ".".join(map(str, sys.version_info[:3])),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--record",
        metavar="LABEL",
        help="append a labelled entry to the committed trajectory "
        f"({BENCH_JSON.relative_to(REPO)})",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero if serving QPS regressed (see module doc)",
    )
    parser.add_argument(
        "--clients",
        default="1,8",
        help="comma list of concurrency levels (default: %(default)s)",
    )
    parser.add_argument(
        "--duration", type=float, default=2.0, help="seconds per level (default 2)"
    )
    parser.add_argument("--repeat", type=int, default=2, help="best-of-N (default 2)")
    args = parser.parse_args(argv)

    levels = [int(c) for c in args.clients.split(",") if c.strip()]
    results = measure(levels, duration=args.duration, repeat=args.repeat)
    committed = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}

    for level in results["levels"]:
        print(
            f"clients={level['clients']:<3d} qps={level['qps']:<9g} "
            f"p50={level['p50_ms']}ms p99={level['p99_ms']}ms "
            f"hot_ratio={level['hot_ratio']}"
        )

    if args.json:
        payload = {"results": results}
        if committed:
            payload["committed_baseline"] = committed.get("baseline")
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.record:
        committed.setdefault("trajectory", []).append(
            {"label": args.record, **results}
        )
        BENCH_JSON.write_text(json.dumps(committed, indent=2) + "\n")
        print(f"recorded {args.record!r} into {BENCH_JSON.relative_to(REPO)}")

    if args.gate:
        failures = []
        top = max(results["levels"], key=lambda r: r["clients"])
        baseline_levels = (committed.get("baseline") or {}).get("levels") or []
        baseline = next(
            (b["qps"] for b in baseline_levels if b["clients"] == top["clients"]),
            None,
        )
        if baseline:
            slack = float(os.environ.get("HC3I_BENCH_ABS_SLACK", "0.5"))
            floor = baseline * slack
            if top["qps"] < floor:
                failures.append(
                    f"absolute gate: {top['qps']} qps at {top['clients']} clients "
                    f"< committed baseline {baseline} x slack {slack} "
                    "(HC3I_BENCH_ABS_SLACK)"
                )
        if top["hot_ratio"] < 0.5:
            failures.append(
                f"hot-tier gate: hot_ratio {top['hot_ratio']} < 0.5 -- the "
                "memoized path is not actually serving from memory"
            )
        if failures:
            for failure in failures:
                print(f"GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"GATE OK: {top['qps']} qps at {top['clients']} clients")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
