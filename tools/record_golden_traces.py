#!/usr/bin/env python
"""Record the golden kernel-dispatch digests for every experiment.

Rewrites ``tests/golden/trace_digests.json`` with the digests produced by
the *current* substrate.  Only run this when a behavior change is
intentional (a protocol change, a new experiment, a deliberate event-order
change) -- the whole point of the golden suite is that kernel/network/core
*optimizations* must NOT need a refresh.

Usage::

    PYTHONPATH=src python tools/record_golden_traces.py           # rewrite
    PYTHONPATH=src python tools/record_golden_traces.py --check   # diff only
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDEN_PATH = REPO / "tests" / "golden" / "trace_digests.json"

sys.path.insert(0, str(REPO / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed goldens instead of rewriting",
    )
    args = parser.parse_args(argv)

    from repro.experiments.golden import all_experiment_digests

    digests = all_experiment_digests()
    if args.check:
        committed = json.loads(GOLDEN_PATH.read_text())
        mismatched = {
            name: {"committed": committed.get(name), "current": current}
            for name, current in digests.items()
            if committed.get(name) != current
        }
        missing = sorted(set(committed) - set(digests))
        if mismatched or missing:
            print(json.dumps({"mismatched": mismatched, "missing": missing}, indent=2))
            print(f"FAIL: {len(mismatched)} mismatched, {len(missing)} missing",
                  file=sys.stderr)
            return 1
        print(f"OK: all {len(digests)} experiment digests match the goldens")
        return 0

    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
    total_events = sum(d["events"] for d in digests.values())
    print(f"wrote {GOLDEN_PATH} ({len(digests)} experiments, "
          f"{total_events} dispatched events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
