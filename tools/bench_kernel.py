#!/usr/bin/env python
"""Measure simulation-substrate throughput; record or gate the trajectory.

Three workloads, all wall-clock, events/sec, best of ``--repeat`` runs:

* ``kernel_events_per_sec`` -- raw schedule+dispatch of self-rescheduling
  kernel events (the ``bench_simulator_core`` kernel workload),
* ``process_resumes_per_sec`` -- generator-process Timeout resumes,
* ``timer_firings_per_sec`` -- a field of periodic timers (the
  reschedule/timer-wheel fast path).

The kernel workload is *also* run against the frozen pre-rewrite kernel
snapshot (``benchmarks/_legacy_kernel.py``) in the same process, giving a
machine-independent ``legacy_ratio``.

Modes::

    python tools/bench_kernel.py                    # print a report
    python tools/bench_kernel.py --json out.json    # machine-readable
    python tools/bench_kernel.py --record "label"   # append to the
                                                    #   committed trajectory
                                                    #   (benchmarks/BENCH_kernel.json)
    python tools/bench_kernel.py --gate             # exit 1 on regression

The gate enforces two floors on ``kernel_events_per_sec``:

1. **relative** (machine-independent, primary): current kernel must beat
   the legacy snapshot measured on the same machine in the same run by
   ``$HC3I_BENCH_MIN_RATIO`` (default 1.0 -- never regress below the
   pre-rewrite substrate),
2. **absolute**: current must reach the committed pre-rewrite baseline
   number times ``$HC3I_BENCH_ABS_SLACK`` (default 1.0; lower it only for
   machines known to be slower than the one that recorded the baseline).
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO / "benchmarks" / "BENCH_kernel.json"

sys.path.insert(0, str(REPO / "src"))


def _load_legacy_kernel():
    spec = importlib.util.spec_from_file_location(
        "_legacy_kernel", REPO / "benchmarks" / "_legacy_kernel.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def bench_kernel_events(simulator_cls, n: int = 200_000) -> float:
    sim = simulator_cls()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < n:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert count == n
    return n / elapsed


def bench_process_resumes(n: int = 20_000, procs: int = 5) -> float:
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process, Timeout

    sim = Simulator()

    def proc():
        for _ in range(n):
            yield Timeout(1.0)

    alive = [Process(sim, proc()) for _ in range(procs)]
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert not any(p.alive for p in alive)
    return (n * procs) / elapsed


def bench_timer_firings(n_timers: int = 200, horizon: float = 1000.0) -> float:
    from repro.sim.kernel import Simulator
    from repro.sim.timers import PeriodicTimer

    sim = Simulator()
    timers = [
        PeriodicTimer(sim, 1.0 + i * 0.01, lambda: None) for i in range(n_timers)
    ]
    for t in timers:
        t.start()
    t0 = time.perf_counter()
    sim.run(until=horizon)
    elapsed = time.perf_counter() - t0
    return sim.processed / elapsed


def measure(repeat: int = 3) -> dict:
    from repro.sim.kernel import Simulator

    legacy = _load_legacy_kernel()
    best = lambda fn, *a: max(fn(*a) for _ in range(repeat))  # noqa: E731
    current = best(bench_kernel_events, Simulator)
    legacy_rate = best(bench_kernel_events, legacy.Simulator)
    return {
        "kernel_events_per_sec": round(current),
        "legacy_kernel_events_per_sec": round(legacy_rate),
        "legacy_ratio": round(current / legacy_rate, 3),
        "process_resumes_per_sec": round(best(bench_process_resumes)),
        "timer_firings_per_sec": round(best(bench_timer_firings)),
        "python": ".".join(map(str, sys.version_info[:3])),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--record",
        metavar="LABEL",
        help="append a labelled entry to the committed trajectory "
        f"({BENCH_JSON.relative_to(REPO)})",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero if kernel throughput regressed (see module doc)",
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N (default 3)")
    args = parser.parse_args(argv)

    results = measure(repeat=args.repeat)
    committed = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}

    for key, value in results.items():
        print(f"{key:32s} {value}")

    if args.json:
        payload = {"results": results}
        if committed:
            payload["committed_baseline"] = committed.get("baseline")
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.record:
        committed.setdefault("trajectory", []).append(
            {"label": args.record, **results}
        )
        BENCH_JSON.write_text(json.dumps(committed, indent=2) + "\n")
        print(f"recorded {args.record!r} into {BENCH_JSON.relative_to(REPO)}")

    if args.gate:
        failures = []
        min_ratio = float(os.environ.get("HC3I_BENCH_MIN_RATIO", "1.0"))
        if results["legacy_ratio"] < min_ratio:
            failures.append(
                f"relative gate: current/legacy = {results['legacy_ratio']} "
                f"< required {min_ratio} (HC3I_BENCH_MIN_RATIO)"
            )
        baseline = (committed.get("baseline") or {}).get("kernel_events_per_sec")
        if baseline:
            slack = float(os.environ.get("HC3I_BENCH_ABS_SLACK", "1.0"))
            floor = baseline * slack
            if results["kernel_events_per_sec"] < floor:
                failures.append(
                    f"absolute gate: {results['kernel_events_per_sec']} ev/s "
                    f"< committed pre-rewrite baseline {baseline} x slack "
                    f"{slack} (HC3I_BENCH_ABS_SLACK)"
                )
        if failures:
            for failure in failures:
                print(f"GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            f"GATE OK: {results['kernel_events_per_sec']} ev/s, "
            f"{results['legacy_ratio']}x the pre-rewrite substrate"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
