#!/usr/bin/env python
"""Record the experiment-level benchmark trajectory.

Runs every registered experiment's tiny-scale grid serially in-process
(the exact workload whose dispatch streams the golden suite pins), times
each, and appends a labelled entry to ``benchmarks/BENCH_experiments.json``
so every future substrate PR has a wall-clock trajectory to beat.

Event counts come from ``tests/golden/trace_digests.json`` -- they are
exact for this workload and cost nothing at run time (running with the
digest attached would slow the thing being measured).

Usage::

    PYTHONPATH=src python tools/record_bench.py --record "PR 5 <change>"
    PYTHONPATH=src python tools/record_bench.py            # measure only
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO / "benchmarks" / "BENCH_experiments.json"
GOLDEN_JSON = REPO / "tests" / "golden" / "trace_digests.json"

sys.path.insert(0, str(REPO / "src"))


def measure() -> dict:
    from repro.experiments import registry
    from repro.experiments.golden import golden_overrides

    golden = json.loads(GOLDEN_JSON.read_text()) if GOLDEN_JSON.exists() else {}
    per_experiment = {}
    total_seconds = 0.0
    total_events = 0
    for name in registry.names():
        experiment = registry.get(name)
        grid = experiment.build_grid(golden_overrides(experiment))
        t0 = time.perf_counter()
        for params in grid:
            experiment.point(params)
        elapsed = time.perf_counter() - t0
        events = golden.get(name, {}).get("events")
        per_experiment[name] = {
            "seconds": round(elapsed, 4),
            "points": len(grid),
            "events": events,
        }
        total_seconds += elapsed
        total_events += events or 0
    return {
        "total_seconds": round(total_seconds, 3),
        "total_events": total_events,
        "events_per_sec": round(total_events / total_seconds) if total_seconds else 0,
        "python": ".".join(map(str, sys.version_info[:3])),
        "per_experiment": per_experiment,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record", metavar="LABEL", help="append a labelled trajectory entry"
    )
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    args = parser.parse_args(argv)

    results = measure()
    print(
        f"all experiments, tiny scale: {results['total_seconds']}s, "
        f"{results['total_events']} events, {results['events_per_sec']} ev/s"
    )
    slowest = sorted(
        results["per_experiment"].items(),
        key=lambda kv: kv[1]["seconds"],
        reverse=True,
    )[:5]
    for name, row in slowest:
        print(f"  {name:28s} {row['seconds']:.3f}s  {row['points']} points")

    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.record:
        committed = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
        committed.setdefault("trajectory", []).append(
            {"label": args.record, **results}
        )
        BENCH_JSON.write_text(json.dumps(committed, indent=2) + "\n")
        print(f"recorded {args.record!r} into {BENCH_JSON.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
