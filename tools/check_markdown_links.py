#!/usr/bin/env python3
"""Markdown link checker for the repo's docs (CI `docs` job + tier-1).

Validates, for every given markdown file (or every ``*.md`` under a
given directory):

* relative links point at files/directories that exist (``#anchor``
  suffixes are stripped; pure in-page ``#anchor`` links are accepted);
* intra-repo absolute links are rejected (they break on GitHub);
* fenced code blocks are balanced (an unclosed fence swallows the rest
  of the page, mermaid diagrams included).

External ``http(s)``/``mailto`` links are *not* fetched -- CI must not
fail on somebody else's outage.

Usage::

    python tools/check_markdown_links.py README.md docs
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) -- excluding images' preceding "!" is unnecessary: image
# targets must resolve too.  Nested parens in URLs don't occur in this repo.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_markdown(paths: list) -> list:
    files = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def check_file(path: Path) -> list:
    """Return a list of human-readable problems in one markdown file."""
    problems = []
    if not path.is_file():
        return [f"{path}: file does not exist"]
    text = path.read_text(encoding="utf-8")

    fences = sum(1 for line in text.splitlines() if line.lstrip().startswith("```"))
    if fences % 2:
        problems.append(f"{path}: unbalanced ``` code fences ({fences} markers)")

    # links inside code fences are illustrative, not navigation: drop them
    prose = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in _LINK.finditer(prose):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        if target.startswith("/"):
            problems.append(f"{path}: absolute link {target!r} breaks on GitHub")
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link {target!r} -> {resolved}")
    return problems


def main(argv: list) -> int:
    paths = argv or ["README.md", "docs"]
    files = iter_markdown(paths)
    if not files:
        print(f"check_markdown_links: no markdown files under {paths}", file=sys.stderr)
        return 1
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"check_markdown_links: {len(files)} files, {len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
