#!/usr/bin/env python3
"""A miniature kubectl for tests and CI: no cluster, no daemon, same CLI shape.

Point ``$REPRO_KUBECTL_COMMAND`` at this script (plus an interpreter) and
the sweep engine's :class:`K8sCliTransport` drives it exactly as it would
a real control plane::

    export REPRO_K8S_STUB_STATE=/tmp/stub-k8s.json
    export REPRO_KUBECTL_COMMAND="python tools/stub_k8s.py"
    repro sweep table1 --backend k8s --spool /tmp/spool

Implemented subcommands (the subset the transport uses):

* ``create -f <manifest.json> -o name`` -- parses the indexed-completion
  Job manifest and runs every completion index *synchronously* via the
  manifest's container command with ``JOB_COMPLETION_INDEX`` set, then
  prints ``job.batch/<name>``.  Each index's exit status becomes its pod
  phase (``Succeeded``/``Failed``).
* ``get pods -l job-name=<name> -o json`` -- prints a pod list whose
  items carry the completion-index label and recorded phases.
* ``delete job <name> ...`` -- forgets the job (its pods vanish from
  subsequent ``get`` calls).

Job states persist in the JSON file named by ``$REPRO_K8S_STUB_STATE``
so that separate ``create``/``get`` invocations (separate processes)
share them.  Fault injection: set ``$REPRO_K8S_STUB_KILL`` to a comma
list of ``jobseq:index`` pairs (1-based job sequence numbers as this
stub assigns them) and those pods are *not* executed -- they are
recorded phase ``Failed`` / reason ``Evicted`` with no result file,
exactly what a node-pressure eviction mid-sweep looks like to the
backend.

``$REPRO_K8S_STUB_KILL_MID`` kills pods *mid-run* instead: a comma list
of ``jobseq:index:event`` triples.  The matching pod runs with
``REPRO_CHECKPOINT_KILL_EVENT=<event>`` in its environment, so the worker
genuinely executes -- writing checkpoint snapshots as it goes -- and then
dies after that many simulator events (see
:mod:`repro.experiments.checkpoint`).  The requeued copy (a later job, a
new sequence number) no longer matches and runs to completion, resuming
from the dead pod's latest snapshot.  This is the CI resume-smoke lane's
eviction model.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

_INDEX_KEY = "batch.kubernetes.io/job-completion-index"


def _state_path() -> str:
    path = os.environ.get("REPRO_K8S_STUB_STATE")
    if not path:
        print("stub_k8s: REPRO_K8S_STUB_STATE is not set", file=sys.stderr)
        sys.exit(2)
    return path


def _load() -> dict:
    try:
        with open(_state_path(), encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {"next_seq": 1, "jobs": {}}


def _save(state: dict) -> None:
    with open(_state_path(), "w", encoding="utf-8") as fh:
        json.dump(state, fh)


def _killed_pods() -> set:
    pairs = set()
    for chunk in os.environ.get("REPRO_K8S_STUB_KILL", "").split(","):
        chunk = chunk.strip()
        if chunk:
            pairs.add(chunk)
    return pairs


def _mid_run_kills() -> dict:
    """``{"seq:index": event_count}`` from $REPRO_K8S_STUB_KILL_MID."""
    kills = {}
    for chunk in os.environ.get("REPRO_K8S_STUB_KILL_MID", "").split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        pod, _, event = chunk.rpartition(":")
        try:
            kills[pod] = int(event)
        except ValueError:
            print(f"stub_k8s: malformed KILL_MID entry {chunk!r}", file=sys.stderr)
    return kills


def _flag_value(argv: list, *flags: str) -> str:
    for flag in flags:
        if flag in argv:
            index = argv.index(flag)
            if index + 1 < len(argv):
                return argv[index + 1]
    return ""


def _create(argv: list) -> int:
    spec = _flag_value(argv, "-f", "--filename")
    if not spec:
        print("create: missing -f <manifest>", file=sys.stderr)
        return 1
    try:
        manifest = json.loads(open(spec, encoding="utf-8").read())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"create: cannot read {spec}: {exc}", file=sys.stderr)
        return 1
    try:
        name = manifest["metadata"]["name"]
        completions = int(manifest["spec"]["completions"])
        command = manifest["spec"]["template"]["spec"]["containers"][0]["command"]
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        print(f"create: malformed Job manifest {spec}: {exc}", file=sys.stderr)
        return 1
    state = _load()
    if name in state["jobs"]:
        print(f'create: jobs.batch "{name}" already exists', file=sys.stderr)
        return 1
    seq = state["next_seq"]
    state["next_seq"] += 1
    killed = _killed_pods()
    mid_kills = _mid_run_kills()
    pods = {}
    for i in range(completions):
        if f"{seq}:{i}" in killed:
            pods[str(i)] = {"phase": "Failed", "reason": "Evicted"}
            continue
        env = dict(os.environ, JOB_COMPLETION_INDEX=str(i))
        mid = mid_kills.get(f"{seq}:{i}")
        if mid is not None:
            # the worker runs for real but dies after `mid` simulator
            # events -- mid-run eviction, snapshots already on disk
            env["REPRO_CHECKPOINT_KILL_EVENT"] = str(mid)
        rc = subprocess.call(list(command), env=env)
        pods[str(i)] = {"phase": "Succeeded" if rc == 0 else "Failed"}
    state["jobs"][name] = {"seq": seq, "pods": pods}
    _save(state)
    print(f"job.batch/{name}")
    return 0


def _get(argv: list) -> int:
    if not argv or argv[0] != "pods":
        print(f"get: unsupported resource {argv[:1]!r}", file=sys.stderr)
        return 1
    selector = _flag_value(argv, "-l", "--selector")
    _, _, name = selector.partition("job-name=")
    job = _load()["jobs"].get(name)
    items = []
    if job is not None:
        for index, pod in sorted(job["pods"].items(), key=lambda kv: int(kv[0])):
            status = {"phase": pod["phase"]}
            if pod.get("reason"):
                status["reason"] = pod["reason"]
            items.append(
                {
                    "metadata": {
                        "name": f"{name}-{index}",
                        "labels": {"job-name": name, _INDEX_KEY: index},
                    },
                    "status": status,
                }
            )
    json.dump({"apiVersion": "v1", "kind": "List", "items": items}, sys.stdout)
    print()
    return 0


def _delete(argv: list) -> int:
    if argv[:1] != ["job"]:
        return 0
    name = argv[1] if len(argv) > 1 else ""
    state = _load()
    if state["jobs"].pop(name, None) is not None:
        _save(state)
    return 0


def main(argv: list) -> int:
    if not argv:
        print("stub_k8s: expected create/get/delete", file=sys.stderr)
        return 2
    command, rest = argv[0], argv[1:]
    if command == "create":
        return _create(rest)
    if command == "get":
        return _get(rest)
    if command == "delete":
        return _delete(rest)
    print(f"stub_k8s: unknown command {command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
