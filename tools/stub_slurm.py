#!/usr/bin/env python3
"""A miniature SLURM for tests and CI: no daemon, no cluster, same CLI shape.

Point ``$REPRO_SLURM_COMMAND`` at this script (plus an interpreter) and
the sweep engine's :class:`SlurmCliTransport` drives it exactly as it
would a real scheduler::

    export REPRO_SLURM_STUB_STATE=/tmp/stub-slurm.json
    export REPRO_SLURM_COMMAND="python tools/stub_slurm.py"
    repro sweep table1 --backend slurm --spool /tmp/spool

Implemented subcommands (the subset the transport uses):

* ``sbatch --parsable <script>`` -- parses ``#SBATCH --array=0-N`` out of
  the script and runs every array task *synchronously* via ``bash`` with
  ``SLURM_ARRAY_TASK_ID`` set, then prints the new job id.  Each task's
  exit status becomes its terminal state.
* ``squeue -h -j <id> -o ...`` -- prints nothing (tasks never linger in
  the queue: execution is synchronous).
* ``sacct -n -P -X -j <id> -o JobID,State`` -- prints ``<id>_<i>|STATE``
  lines from the recorded states.
* ``scancel <id>`` -- no-op.

Job states persist in the JSON file named by ``$REPRO_SLURM_STUB_STATE``
so that separate ``sbatch``/``sacct`` invocations (separate processes)
share them.  Fault injection: set ``$REPRO_SLURM_STUB_KILL`` to a
comma list of ``jobid:taskid`` pairs (1-based job ids as this stub
assigns them) and those tasks are *not* executed -- they are recorded
``CANCELLED`` with no result file, exactly what an operator's ``scancel``
mid-sweep looks like to the backend.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys


def _state_path() -> str:
    path = os.environ.get("REPRO_SLURM_STUB_STATE")
    if not path:
        print("stub_slurm: REPRO_SLURM_STUB_STATE is not set", file=sys.stderr)
        sys.exit(2)
    return path


def _load() -> dict:
    try:
        with open(_state_path(), encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return {"next_id": 1, "jobs": {}}


def _save(state: dict) -> None:
    with open(_state_path(), "w", encoding="utf-8") as fh:
        json.dump(state, fh)


def _killed_tasks() -> set:
    pairs = set()
    for chunk in os.environ.get("REPRO_SLURM_STUB_KILL", "").split(","):
        chunk = chunk.strip()
        if chunk:
            pairs.add(chunk)
    return pairs


def _sbatch(argv: list) -> int:
    script = argv[-1]
    try:
        text = open(script, encoding="utf-8").read()
    except OSError as exc:
        print(f"sbatch: cannot read {script}: {exc}", file=sys.stderr)
        return 1
    match = re.search(r"^#SBATCH --array=0-(\d+)\s*$", text, re.MULTILINE)
    if not match:
        print(f"sbatch: no #SBATCH --array directive in {script}", file=sys.stderr)
        return 1
    n_tasks = int(match.group(1)) + 1
    state = _load()
    job_id = str(state["next_id"])
    state["next_id"] += 1
    killed = _killed_tasks()
    states = {}
    for i in range(n_tasks):
        if f"{job_id}:{i}" in killed:
            states[str(i)] = "CANCELLED"
            continue
        env = dict(os.environ, SLURM_ARRAY_TASK_ID=str(i))
        rc = subprocess.call(["bash", script], env=env)
        states[str(i)] = "COMPLETED" if rc == 0 else "FAILED"
    state["jobs"][job_id] = states
    _save(state)
    print(job_id)
    return 0


def _sacct(argv: list) -> int:
    try:
        job_id = argv[argv.index("-j") + 1]
    except (ValueError, IndexError):
        print("sacct: missing -j <jobid>", file=sys.stderr)
        return 1
    for idx, task_state in sorted(
        _load()["jobs"].get(job_id, {}).items(), key=lambda kv: int(kv[0])
    ):
        print(f"{job_id}_{idx}|{task_state}")
    return 0


def main(argv: list) -> int:
    if not argv:
        print("stub_slurm: expected sbatch/squeue/sacct/scancel", file=sys.stderr)
        return 2
    command, rest = argv[0], argv[1:]
    if command == "sbatch":
        return _sbatch(rest)
    if command == "squeue":
        return 0  # synchronous execution: nothing is ever queued
    if command == "sacct":
        return _sacct(rest)
    if command == "scancel":
        return 0
    print(f"stub_slurm: unknown command {command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
