"""Recovery-line computation (pure functions).

Two consumers:

* the **garbage collector** (§3.5): "it simulates a failure in each cluster
  and keeps the smallest SN to which the clusters of the federation might
  rollback" -- :func:`compute_min_sns`;
* **verification**: property tests check that the event-driven rollback
  cascade of :mod:`repro.core.rollback` lands exactly on the targets
  predicted by :func:`cascade_targets`.

Both operate on plain data -- per-cluster chronological lists of
``(sn, ddv_tuple)`` for the stored CLCs plus each cluster's current DDV --
so they can run anywhere (inside the simulated GC initiator, in tests, in
offline analysis).

Key protocol facts used here (§3.4):

* a cluster rolls back on an alert ``(f, s)`` iff its current DDV entry for
  ``f`` is ``>= s``;
* it rolls back to the **oldest** stored CLC whose DDV entry for ``f`` is
  ``>= s`` (forced CLCs are taken *before* delivering the message that
  updated the DDV, so that CLC precedes every dependent delivery);
* a cluster that rolls back emits its own alert with its new SN, which may
  cascade;
* DDV entries are monotonically non-decreasing along a cluster's stored
  CLCs, which makes the "oldest with entry >= s" search well defined.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

__all__ = ["cascade_targets", "compute_min_sns"]

StoredDdvs = Sequence[Sequence[tuple]]  # per cluster: [(sn, ddv_tuple), ...]


def _check_monotone(stored: StoredDdvs) -> None:
    for c, records in enumerate(stored):
        prev_sn = -1
        for sn, ddv in records:
            if sn <= prev_sn:
                raise ValueError(f"cluster {c}: CLC SNs not increasing at sn={sn}")
            prev_sn = sn


def cascade_targets(
    stored: StoredDdvs,
    current_ddvs: Sequence[tuple],
    failed: int,
) -> list:
    """Rollback target SN per cluster after a failure in ``failed``.

    :param stored: per-cluster chronological ``(sn, ddv)`` of stored CLCs.
    :param current_ddvs: each cluster's live DDV (used for the *first*
        trigger test; after a simulated rollback the restored CLC's DDV is
        used instead).
    :param failed: index of the faulty cluster.
    :returns: list with one entry per cluster: the SN of the CLC the cluster
        rolls back to, or ``None`` if it does not roll back.

    The faulty cluster always rolls back to its *last* stored CLC.  Alerts
    are then propagated to a fixpoint.  Re-receiving an alert that maps a
    cluster onto its current position is a no-op and emits no further alert,
    which guarantees termination (every real move is strictly older).
    """
    n = len(stored)
    if not (0 <= failed < n):
        raise ValueError(f"failed cluster {failed} out of range")
    if not stored[failed]:
        raise ValueError(f"faulty cluster {failed} has no stored CLC")
    _check_monotone(stored)

    # position[c] = index into stored[c] after rollback, or None = live.
    position: list[Optional[int]] = [None] * n
    position[failed] = len(stored[failed]) - 1
    alerts: deque = deque([(failed, stored[failed][-1][0])])

    while alerts:
        f, s = alerts.popleft()
        for d in range(n):
            if d == f:
                continue
            if position[d] is None:
                ddv = current_ddvs[d]
                limit = len(stored[d]) - 1
            else:
                ddv = stored[d][position[d]][1]
                limit = position[d]
            if ddv[f] < s:
                continue  # no dependency on the lost states
            target = None
            for i in range(limit + 1):
                if stored[d][i][1][f] >= s:
                    target = i
                    break
            if target is None:
                # Defensive: the DDV update's forced CLC is always stored
                # (or the dependency was already erased); treat as no move.
                continue
            if position[d] is None or target < position[d]:
                position[d] = target
                alerts.append((d, stored[d][target][0]))
            # target == position[d]: already there; no re-alert (termination).
    return [
        stored[c][position[c]][0] if position[c] is not None else None
        for c in range(n)
    ]


def compute_min_sns(stored: StoredDdvs, current_ddvs: Sequence[tuple]) -> list:
    """Smallest SN each cluster might ever roll back to (§3.5).

    For every hypothetical single-cluster failure, compute the cascade
    targets and keep the per-cluster minimum.  A cluster that never rolls
    back in any scenario other than its own failure keeps its own last SN
    as the minimum (its own failure is one of the scenarios).

    The garbage collector may then discard every CLC whose SN is smaller
    than this bound, and every logged message acknowledged below the
    receiver's bound.
    """
    n = len(stored)
    mins: list[Optional[int]] = [None] * n
    for f in range(n):
        if not stored[f]:
            continue
        targets = cascade_targets(stored, current_ddvs, f)
        for c, t in enumerate(targets):
            if t is None:
                continue
            if mins[c] is None or t < mins[c]:
                mins[c] = t
    # A cluster with no stored CLC anywhere reachable keeps bound 0.
    return [m if m is not None else 0 for m in mins]
