"""The HC3I hierarchical checkpointing protocol (§3 of the paper).

Structure:

* :class:`Hc3iClusterState` -- shared per-cluster protocol state (SN, DDV,
  CLC store, sender log, incarnation bookkeeping),
* :class:`ClcCoordinator` -- the two-phase commit engine of one cluster,
  hosted by the cluster leader's agent (the paper's "initiator node"),
* :class:`Hc3iNodeAgent` -- per-node behaviour: piggybacking SNs on
  inter-cluster sends, sender-side logging, the forced-CLC decision on
  reception, freezing during 2PC windows, delivery-after-commit and
  acknowledgements,
* :class:`Hc3iProtocol` -- glues the above with the rollback manager
  (:mod:`repro.core.rollback`) and the garbage collector
  (:mod:`repro.core.garbage`).

Protocol options (``protocol_options`` in the scenario):

``mode``
    ``"sn"`` (paper default: piggyback the sender SN),
    ``"ddv"`` (§7 extension: piggyback the whole DDV, transitive
    dependency tracking), or ``"always"`` (strawman of Fig. 4: force a CLC
    on *every* inter-cluster message).
``replay_enabled``
    ``True`` (paper): replay logged messages on receiver rollback.
    ``False`` (ablation): the sender's cluster rolls back instead.
``replication_degree``
    number of neighbour copies of each node state (paper: 1).
``gc_mode``
    ``"centralized"`` (paper) or ``"distributed"`` (§7 extension,
    token-ring).

Incarnation numbers: the paper's research report is not public, so one
mechanism is filled in explicitly -- every rollback increments the cluster's
*rollback epoch*, which is piggybacked (with the SN) on inter-cluster
messages and carried on alerts.  A message sent before a rollback that
erased its send (a *ghost*) is recognized and dropped by the receiver by
comparing its epoch and SN against the recorded alerts.  This is the
standard incarnation-number technique from optimistic message logging and is
behaviourally neutral in failure-free runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.clc import CheckpointCause, CheckpointRecord
from repro.core.ddv import DDV
from repro.core.protocol import BaseProtocol, ClusterView, NodeAgent, register_protocol
from repro.network.message import Message, MessageKind, NodeId
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceLevel

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = [
    "Hc3iClusterState",
    "Hc3iNodeAgent",
    "Hc3iOptions",
    "Hc3iProtocol",
    "PendingDelivery",
    "Piggyback",
]

#: base size in bytes of a protocol control message
CONTROL_SIZE = 64
#: extra bytes piggybacked on an inter-cluster app message in "sn" mode
SN_PIGGYBACK_SIZE = 12


@dataclass(frozen=True)
class Piggyback:
    """Metadata added to every inter-cluster application message.

    ``sn`` is the sender cluster's sequence number at send time ("The
    current cluster's sequence number is piggy-backed on each inter-cluster
    application message", §3.2).  In transitive mode ``ddv`` carries the
    whole vector instead.  ``epoch`` is the sender's rollback incarnation.
    """

    sn: int
    epoch: int
    ddv: Optional[tuple] = None

    def entry_for(self, cluster: int) -> int:
        """Effective dependency this message creates on ``cluster``."""
        if self.ddv is not None:
            return self.ddv[cluster]
        return self.sn


@dataclass
class PendingDelivery:
    """An inter-cluster message queued until its forced CLC commits."""

    msg: Message
    updates: dict                 #: DDV entries this message must raise
    ack_sn: int                   #: ack value fixed at arrival: SN + 1
    created_sn: int               #: cluster SN when the message was queued
    force_required: bool = False  #: "always" mode: commit needed even w/o updates


class Hc3iClusterState(ClusterView):
    """Shared HC3I state of one cluster (see ClusterView for the basics)."""

    def __init__(self, index: int, n_clusters: int):
        super().__init__(index, n_clusters)
        #: newest rollback epoch heard from each cluster (own entry = own)
        self.known_epochs = [0] * n_clusters
        #: per source cluster: [(new_epoch, restored_sn)] of its rollbacks,
        #: used to recognize ghost messages from erased epochs
        self.ghost_cuts: list = [[] for _ in range(n_clusters)]
        #: SN of the record being restored while ``recovering``
        self.restore_target_sn: Optional[int] = None

    def record_alert(self, faulty: int, alert_sn: int, new_epoch: int) -> None:
        if new_epoch > self.known_epochs[faulty]:
            self.known_epochs[faulty] = new_epoch
            self.ghost_cuts[faulty].append((new_epoch, alert_sn))

    def is_ghost(self, src_cluster: int, piggy: Piggyback) -> bool:
        """Was this message's send erased by a rollback of its sender?"""
        value = piggy.entry_for(src_cluster)
        for new_epoch, restored_sn in self.ghost_cuts[src_cluster]:
            if new_epoch > piggy.epoch and restored_sn <= value:
                return True
        return False


@dataclass
class Hc3iOptions:
    """Parsed protocol options with defaults matching the paper.

    ``incremental`` enables incremental stable storage: after a node's
    first full replica, subsequent CLCs ship only a delta of
    ``incremental_fraction`` x the state size to the neighbour(s).  A
    cluster rollback invalidates the delta chain (the base state lineage
    changed), so the next replica after a rollback is full again.
    """

    mode: str = "sn"
    replay_enabled: bool = True
    replication_degree: int = 1
    gc_mode: str = "centralized"
    control_size: int = CONTROL_SIZE
    incremental: bool = False
    incremental_fraction: float = 0.2

    @classmethod
    def from_dict(cls, data: dict) -> "Hc3iOptions":
        opts = cls(
            mode=data.get("mode", "sn"),
            replay_enabled=data.get("replay_enabled", True),
            replication_degree=data.get("replication_degree", 1),
            gc_mode=data.get("gc_mode", "centralized"),
            control_size=data.get("control_size", CONTROL_SIZE),
            incremental=data.get("incremental", False),
            incremental_fraction=data.get("incremental_fraction", 0.2),
        )
        if opts.mode not in ("sn", "ddv", "always"):
            raise ValueError(f"unknown HC3I mode {opts.mode!r}")
        if opts.replication_degree < 0:
            raise ValueError("replication_degree must be >= 0")
        if opts.gc_mode not in ("centralized", "distributed"):
            raise ValueError(f"unknown gc_mode {opts.gc_mode!r}")
        if not (0.0 < opts.incremental_fraction <= 1.0):
            raise ValueError("incremental_fraction must be in (0, 1]")
        return opts


class ClcCoordinator:
    """Two-phase commit engine of one cluster (runs at the leader).

    §3.1: "An initiator node broadcasts (in its cluster) a CLC request.
    All the cluster nodes acknowledge the request, then the initiator node
    broadcasts a commit.  Between the request and the commit messages,
    application messages are queued."

    One round at a time; forced-CLC requests arriving during an active
    round are accumulated and served by the immediately following round.
    """

    IDLE = "idle"
    COLLECTING = "collecting"

    def __init__(self, protocol: "Hc3iProtocol", cluster_index: int):
        self.protocol = protocol
        self.cluster = cluster_index
        self.cs = protocol.cluster_states[cluster_index]
        self.phase = self.IDLE
        self.round_updates: dict = {}
        self.round_force = False
        self.round_cause = CheckpointCause.TIMER
        self._acks_pending: set = set()
        self._snapshots: list = []
        self.pending_request = False
        self.pending_updates: dict = {}
        self.pending_force = False
        self.pending_cause = CheckpointCause.TIMER
        period = protocol.federation.timers.clc_period_for(cluster_index)
        self.timer = PeriodicTimer(
            protocol.sim, period, self._timer_fired, name=f"clc-c{cluster_index}"
        )

    # ------------------------------------------------------------------
    @property
    def leader(self) -> "Node":
        return self.protocol.federation.clusters[self.cluster].leader

    def _timer_fired(self) -> None:
        # "timer interruptions" appear at the paper's highest trace level
        tracer = self.protocol.tracer
        if tracer.level >= TraceLevel.DEBUG:  # skip building the record
            tracer.debug("clc_timer_fired", cluster=self.cluster)
        if self.cs.recovering:
            return
        if self.phase != self.IDLE or self.pending_request:
            return  # a CLC is being established right now anyway
        self.initiate(CheckpointCause.TIMER)

    def initiate(
        self,
        cause: CheckpointCause,
        updates: Optional[dict] = None,
        force: bool = False,
    ) -> None:
        """Ask for a CLC; merged with other pending requests."""
        if updates:
            for k, v in updates.items():
                if v > self.pending_updates.get(k, -1):
                    self.pending_updates[k] = v
        self.pending_force = self.pending_force or force or bool(updates)
        if self.pending_force:
            self.pending_cause = CheckpointCause.FORCED
        elif not self.pending_request:
            self.pending_cause = cause
        self.pending_request = True
        if self.phase == self.IDLE and not self.cs.recovering:
            self._begin_round()

    def scrub(self, faulty: int, alert_sn: int) -> None:
        """Drop DDV updates that a rollback of ``faulty`` just erased."""
        for updates in (self.pending_updates, self.round_updates):
            v = updates.get(faulty)
            if v is not None and v >= alert_sn:
                del updates[faulty]

    def abort(self) -> None:
        """A rollback cancels any in-flight round and pending requests."""
        self.phase = self.IDLE
        self.round_updates = {}
        self.round_force = False
        self._acks_pending.clear()
        self._snapshots = []
        self.pending_request = False
        self.pending_updates = {}
        self.pending_force = False

    # ------------------------------------------------------------------
    def _begin_round(self) -> None:
        cs = self.cs
        self.phase = self.COLLECTING
        self.round_updates = self.pending_updates
        self.round_force = self.pending_force
        self.round_cause = self.pending_cause
        self.pending_request = False
        self.pending_updates = {}
        self.pending_force = False
        self.pending_cause = CheckpointCause.TIMER
        self._snapshots = []

        cluster = self.protocol.federation.clusters[self.cluster]
        leader_agent = self.leader.agent
        assert isinstance(leader_agent, Hc3iNodeAgent)
        # The leader participates locally: freeze, save state, snapshot.
        leader_agent.in_round = True
        self._snapshots.append((self.leader.id.node, tuple(leader_agent.pending_force)))
        leader_agent.send_replicas()

        others = [n for n in cluster.nodes if n.id != self.leader.id]
        self._acks_pending = {n.id.node for n in others}
        size = self.protocol.options.control_size
        for n in others:
            self.leader.send_raw(n.id, MessageKind.CLC_REQUEST, size=size)
        if not self._acks_pending:
            self._commit()

    def on_ack(self, msg: Message) -> None:
        if self.phase != self.COLLECTING:
            return  # stale ack from an aborted round
        node_idx = msg.src.node
        if node_idx not in self._acks_pending:
            return
        self._acks_pending.discard(node_idx)
        self._snapshots.append((node_idx, msg.payload["snapshot"]))
        if not self._acks_pending:
            self._commit()

    def _commit(self) -> None:
        cs = self.cs
        new_sn = cs.sn + 1
        new_ddv = DDV(cs.ddv).merged(self.round_updates).with_entry(cs.index, new_sn)
        queued = tuple(
            (node_idx, entry)
            for node_idx, snapshot in self._snapshots
            for entry in snapshot
        )
        n_nodes = self.protocol.federation.topology.nodes_in(self.cluster)
        state_size = self.protocol.federation.timers.node_state_size
        record = CheckpointRecord(
            sn=new_sn,
            ddv=new_ddv,
            time=self.protocol.sim.now,
            cause=self.round_cause,
            cluster=self.cluster,
            delivered_ids=frozenset(cs.delivered_ids),
            state_bytes=n_nodes * state_size,
            queued=queued,
        )
        cs.store.add(record)
        cs.sn = new_sn
        cs.ddv = list(new_ddv)
        cs.state_dirty = False
        self.phase = self.IDLE
        self.protocol.note_commit(self.cluster, record)

        # Phase 2: commit broadcast; the leader applies locally right away.
        size = self.protocol.options.control_size + 8 * cs.n_clusters
        cluster = self.protocol.federation.clusters[self.cluster]
        for n in cluster.nodes:
            if n.id == self.leader.id:
                continue
            self.leader.send_raw(
                n.id, MessageKind.CLC_COMMIT, size=size, payload={"sn": new_sn}
            )
        leader_agent = self.leader.agent
        assert isinstance(leader_agent, Hc3iNodeAgent)
        leader_agent.apply_commit()

        self.timer.reset()
        if self.pending_request and not self.cs.recovering:
            # Serve the requests accumulated during this round immediately.
            self.protocol.sim.schedule(0.0, self._begin_if_pending)

    def _begin_if_pending(self) -> None:
        if self.phase == self.IDLE and self.pending_request and not self.cs.recovering:
            self._begin_round()


class Hc3iNodeAgent(NodeAgent):
    """Per-node HC3I endpoint."""

    def __init__(self, protocol: "Hc3iProtocol", node: "Node"):
        super().__init__(protocol, node)
        self.cs: Hc3iClusterState = protocol.cluster_states[node.id.cluster]
        #: this cluster's 2PC engine (agents are built after the coordinators)
        self.coordinator: ClcCoordinator = protocol.coordinators[node.id.cluster]
        #: lazily-resolved hc3i/c{i}/log_entries gauge (hot: every logged send)
        self._log_gauge = None
        #: between CLC request and CLC commit: application messages queued
        self.in_round = False
        #: application sends queued during a freeze window
        self.queued_out: list = []
        #: inter-cluster arrivals deferred (freeze window or recovery)
        self.deferred_in: list = []
        #: messages waiting for their forced CLC to commit
        self.pending_force: list = []
        #: incremental stable storage: True once a full replica was shipped
        self.replicated_full = False

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def app_send(self, dst: NodeId, size: int, payload: Optional[dict] = None) -> None:
        if not self.node.up:
            return  # fail-stop: a failed node sends nothing
        if self.in_round or self.cs.recovering:
            self.queued_out.append((dst, size, payload))
            return
        self._send_app_now(dst, size, payload)

    def _send_app_now(self, dst: NodeId, size: int, payload: Optional[dict]) -> None:
        cs = self.cs
        opts = self.protocol.options
        piggyback = None
        if dst.cluster != cs.index:
            if opts.mode == "ddv":
                piggyback = Piggyback(
                    sn=cs.sn, epoch=cs.rollback_epoch, ddv=cs.ddv_tuple()
                )
                size += 4 + 8 * cs.n_clusters
            else:
                piggyback = Piggyback(sn=cs.sn, epoch=cs.rollback_epoch)
                size += SN_PIGGYBACK_SIZE
        msg = Message(
            src=self.node.id, dst=dst, kind=MessageKind.APP, size=size,
            payload=payload or {}, piggyback=piggyback,
        )
        if piggyback is not None:
            entry = cs.sent_log.add(msg, send_sn=cs.sn)
            entry.epoch = cs.rollback_epoch  # type: ignore[attr-defined]
            cs.state_dirty = True
            gauge = self._log_gauge
            if gauge is None:
                gauge = self._log_gauge = self.protocol.stats.gauge(
                    f"hc3i/c{cs.index}/log_entries"
                )
            gauge.set(len(cs.sent_log))
        self.protocol.federation.fabric.send(msg)

    def send_replicas(self) -> None:
        """Stable storage: copy this node's state to its ring successors.

        With ``incremental`` enabled only the first replica after a
        (re)start or rollback carries the full state; later ones carry a
        delta sized ``incremental_fraction`` x the state.
        """
        opts = self.protocol.options
        degree = opts.replication_degree
        cluster = self.protocol.federation.clusters[self.cs.index]
        n = len(cluster.nodes)
        state_size = self.protocol.federation.timers.node_state_size
        size = state_size
        if opts.incremental and self.replicated_full:
            size = max(1, int(state_size * opts.incremental_fraction))
        for k in range(1, min(degree, n - 1) + 1):
            neighbour = cluster.nodes[(self.node.id.node + k) % n]
            self.node.send_raw(neighbour.id, MessageKind.REPLICA, size=size)
        if degree > 0 and n > 1:
            self.replicated_full = True

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def on_receive(self, msg: Message) -> None:
        kind = msg.kind
        if kind is MessageKind.APP or kind is MessageKind.REPLAY:
            if msg.src.cluster != msg.dst.cluster:
                self._on_inter_arrival(msg)
            else:
                self.node.deliver_app(msg)
            return
        if kind is MessageKind.CLC_REQUEST:
            self._on_clc_request()
        elif kind is MessageKind.CLC_ACK:
            self.coordinator.on_ack(msg)
        elif kind is MessageKind.CLC_COMMIT:
            self.apply_commit()
        elif kind is MessageKind.CLC_INITIATE:
            self.coordinator.initiate(
                CheckpointCause.FORCED,
                updates=msg.payload.get("updates"),
                force=msg.payload.get("force", False),
            )
        elif kind is MessageKind.INTER_ACK:
            self.cs.sent_log.ack(msg.payload["msg_id"], msg.payload["ack_sn"])
        elif kind is MessageKind.REPLICA:
            pass  # accounted by the fabric; content is abstract state
        elif kind is MessageKind.ALERT:
            self.protocol.on_alert_message(self.node, msg)
        elif kind is MessageKind.ALERT_LOCAL:
            pass  # intra-cluster fan-out of an alert (accounting only)
        elif kind in (
            MessageKind.GC_REQUEST,
            MessageKind.GC_RESPONSE,
            MessageKind.GC_COLLECT,
            MessageKind.GC_LOCAL,
        ):
            self.protocol.garbage_collector.on_message(self.node, msg)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unhandled message kind {kind}")

    # -- inter-cluster application messages -----------------------------
    def _on_inter_arrival(self, msg: Message) -> None:
        if self.in_round or self.cs.recovering:
            self.deferred_in.append(msg)
            return
        self.handle_inter(msg)

    def handle_inter(self, msg: Message) -> None:
        """The communication-induced checkpointing decision (§3.2)."""
        cs = self.cs
        piggy: Piggyback = msg.piggyback
        src = msg.src.cluster
        if cs.is_ghost(src, piggy):
            self.protocol.stats.counter("hc3i/ghosts_dropped").inc()
            tracer = self.protocol.tracer
            if tracer.level >= TraceLevel.PROTOCOL:
                tracer.protocol(
                    "ghost_dropped", cluster=cs.index, msg_id=msg.msg_id, src=src
                )
            return
        if msg.msg_id in cs.delivered_ids:
            # Duplicate (replay raced an in-flight original). Re-ack
            # conservatively; the delivery is captured by the next CLC at
            # the latest.
            self.protocol.stats.counter("hc3i/duplicates").inc()
            self._send_ack(msg, cs.sn + 1)
            return

        updates = self._required_updates(piggy, src)
        force_required = self.protocol.options.mode == "always"
        ack_sn = cs.sn + 1
        if updates or force_required:
            entry = PendingDelivery(
                msg=msg,
                updates=updates,
                ack_sn=ack_sn,
                created_sn=cs.sn,
                force_required=force_required,
            )
            self.pending_force.append(entry)
            tracer = self.protocol.tracer
            if tracer.level >= TraceLevel.PROTOCOL:
                tracer.protocol(
                    "force_requested",
                    cluster=cs.index,
                    msg_id=msg.msg_id,
                    src=src,
                    updates=dict(updates),
                )
            self._request_force(updates, force_required)
        else:
            self.deliver_now(msg, ack_sn)

    def _required_updates(self, piggy: Piggyback, src: int) -> dict:
        cs = self.cs
        if self.protocol.options.mode == "ddv" and piggy.ddv is not None:
            return {
                i: v
                for i, v in enumerate(piggy.ddv)
                if i != cs.index and v > cs.ddv[i]
            }
        if piggy.sn > cs.ddv[src]:
            return {src: piggy.sn}
        return {}

    def _request_force(self, updates: dict, force: bool) -> None:
        coordinator = self.coordinator
        if self.node.id == coordinator.leader.id:
            coordinator.initiate(CheckpointCause.FORCED, updates=updates, force=force)
        else:
            size = self.protocol.options.control_size + 8 * len(updates)
            self.node.send_raw(
                coordinator.leader.id,
                MessageKind.CLC_INITIATE,
                size=size,
                payload={"updates": dict(updates), "force": force},
            )

    def deliver_now(self, msg: Message, ack_sn: int) -> None:
        cs = self.cs
        cs.delivered_ids.add(msg.msg_id)
        cs.state_dirty = True
        self.node.deliver_app(msg)
        self._send_ack(msg, ack_sn)
        tracer = self.protocol.tracer
        if tracer.level >= TraceLevel.PROTOCOL:
            tracer.protocol(
                "inter_delivered", cluster=cs.index, msg_id=msg.msg_id, ack_sn=ack_sn
            )

    def _send_ack(self, msg: Message, ack_sn: int) -> None:
        self.node.send_raw(
            msg.src,
            MessageKind.INTER_ACK,
            size=self.protocol.options.control_size,
            payload={"msg_id": msg.msg_id, "ack_sn": ack_sn},
        )

    # -- 2PC participant --------------------------------------------------
    def _on_clc_request(self) -> None:
        self.in_round = True
        self.send_replicas()
        coordinator = self.coordinator
        self.node.send_raw(
            coordinator.leader.id,
            MessageKind.CLC_ACK,
            size=self.protocol.options.control_size,
            payload={"snapshot": tuple(self.pending_force)},
        )

    def apply_commit(self) -> None:
        """Unfreeze after a commit; deliver satisfied queued messages."""
        self.in_round = False
        self.flush_queued_out()
        self.evaluate_pending()
        self.process_deferred()

    def flush_queued_out(self) -> None:
        queued, self.queued_out = self.queued_out, []
        for dst, size, payload in queued:
            self._send_app_now(dst, size, payload)

    def evaluate_pending(self) -> None:
        cs = self.cs
        still: list = []
        for entry in self.pending_force:
            residual = {i: v for i, v in entry.updates.items() if v > cs.ddv[i]}
            satisfied = not residual and (
                not entry.force_required or cs.sn > entry.created_sn
            )
            if satisfied:
                if entry.msg.msg_id in cs.delivered_ids:
                    continue  # already delivered (e.g. replay raced requeue)
                self.deliver_now(entry.msg, entry.ack_sn)
            else:
                # entry.updates is never mutated: the same PendingDelivery
                # object may be shared with CLC snapshots, which a rollback
                # can restore verbatim.
                still.append(entry)
        self.pending_force = still

    def process_deferred(self) -> None:
        while self.deferred_in and not self.in_round and not self.cs.recovering:
            self.handle_inter(self.deferred_in.pop(0))

    # -- failure bookkeeping ----------------------------------------------
    def on_node_failed(self) -> None:
        # Volatile state of the crashed node is lost; its queued output
        # and frozen round membership die with it.  The pending_force
        # entries conceptually live in the (stable) CLC snapshots and are
        # restored by the rollback.
        self.queued_out = []
        self.in_round = False

    def drop_ghost_input(self, faulty: int) -> None:
        """Remove queued/deferred messages whose sends were just erased."""
        cs = self.cs
        self.pending_force = [
            e
            for e in self.pending_force
            if not cs.is_ghost(e.msg.src.cluster, e.msg.piggyback)
        ]
        self.deferred_in = [
            m
            for m in self.deferred_in
            if not cs.is_ghost(m.src.cluster, m.piggyback)
        ]


@register_protocol("hc3i")
class Hc3iProtocol(BaseProtocol):
    """The full hierarchical protocol wired to a federation."""

    def __init__(self, federation, options: Optional[dict] = None):
        super().__init__(federation, options)
        self.options: Hc3iOptions = Hc3iOptions.from_dict(self.options)
        n = federation.topology.n_clusters
        self.cluster_states = [Hc3iClusterState(i, n) for i in range(n)]
        self.coordinators = [ClcCoordinator(self, i) for i in range(n)]
        from repro.core.rollback import Hc3iRecoveryManager
        from repro.core.garbage import make_garbage_collector

        self.recovery = Hc3iRecoveryManager(self)
        self.garbage_collector = make_garbage_collector(self)

    # ------------------------------------------------------------------
    def make_agent(self, node: "Node") -> Hc3iNodeAgent:
        return Hc3iNodeAgent(self, node)

    def start(self) -> None:
        """§4: "each cluster stores a first CLC which is the beginning of
        the application"; then the per-cluster unforced-CLC timers run."""
        for coordinator in self.coordinators:
            coordinator.initiate(CheckpointCause.INITIAL)
            coordinator.timer.start()
        self.garbage_collector.start()

    def on_failure_detected(self, node: "Node") -> None:
        self.recovery.on_failure_detected(node)

    def request_checkpoint(self, cluster: int) -> None:
        """Programmatic CLC (examples, tests, memory-pressure handlers)."""
        self.coordinators[cluster].initiate(CheckpointCause.MANUAL)

    def collect_garbage(self) -> None:
        """Run a garbage collection round now ("periodically, or when a
        node memory saturates, a garbage collection is initiated", §3.5)."""
        self.garbage_collector.collect_now()

    def on_alert_message(self, node: "Node", msg: Message) -> None:
        """An ALERT reached this cluster: fan out locally, then handle."""
        cluster = self.federation.clusters[node.id.cluster]
        size = self.options.control_size
        for other in cluster.nodes:
            if other.id != node.id:
                node.send_raw(other.id, MessageKind.ALERT_LOCAL, size=size)
        self.recovery.on_alert(
            node.id.cluster,
            faulty=msg.payload["faulty"],
            alert_sn=msg.payload["sn"],
            faulty_epoch=msg.payload["epoch"],
        )

    # ------------------------------------------------------------------
    def note_commit(self, cluster: int, record: CheckpointRecord) -> None:
        stats = self.stats
        cause = record.cause.value
        stats.counter(f"clc/c{cluster}/{cause}").inc()
        stats.counter(f"clc/c{cluster}/total").inc()
        store = self.cluster_states[cluster].store
        stats.gauge(f"clc/c{cluster}/stored").set(len(store))
        stats.gauge(f"clc/c{cluster}/stored_bytes").set(store.total_state_bytes())
        self.tracer.protocol(
            "clc_commit",
            cluster=cluster,
            sn=record.sn,
            cause=cause,
            ddv=record.ddv.as_tuple(),
        )
        # §3.5: "Periodically, or when a node memory saturates, a garbage
        # collection is initiated."  Per-node occupancy = per-node share of
        # the cluster's checkpoints times (1 + replication degree).
        threshold = self.federation.timers.gc_memory_threshold
        if threshold is not None:
            nodes = self.federation.topology.nodes_in(cluster)
            per_node = (
                store.total_state_bytes()
                * (1 + self.options.replication_degree)
                // max(1, nodes)
            )
            if per_node > threshold:
                self.stats.counter("gc/pressure_triggers").inc()
                self.garbage_collector.collect_now()

    def cluster_summary(self, cluster: int) -> dict:
        cs = self.cluster_states[cluster]
        stats = self.stats
        def count(name: str) -> int:
            full = f"clc/c{cluster}/{name}"
            return stats.counter(full).value if full in stats else 0

        return {
            "sn": cs.sn,
            "ddv": cs.ddv_tuple(),
            "clc_initial": count("initial"),
            "clc_unforced": count("timer"),
            "clc_forced": count("forced"),
            "clc_total": count("total"),
            "clc_stored": len(cs.store),
            "log_entries": len(cs.sent_log),
            "log_bytes": cs.sent_log.bytes,
            "log_max_entries": cs.sent_log.max_entries,
            "rollback_epoch": cs.rollback_epoch,
        }
