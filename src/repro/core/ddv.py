"""Direct Dependencies Vector (DDV).

From the paper (§3.2): all sequence numbers last received from each other
cluster are stored in a DDV.  For a cluster *j*:

* ``DDV_j[i] = SN_j``            if ``i == j``
* ``DDV_j[i] = last received SN_i`` (0 if none)   if ``i != j``

"Note that the size of the DDV is the number of clusters in the federation,
not the number of nodes."

DDV values are immutable; the protocol state keeps the *current* DDV and
stamps an immutable copy into every committed CLC.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

__all__ = ["DDV"]


class DDV:
    """Immutable dependency vector indexed by cluster."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[int]):
        self._entries = tuple(int(v) for v in entries)
        if any(v < 0 for v in self._entries):
            raise ValueError(f"DDV entries must be >= 0: {self._entries}")

    @classmethod
    def zero(cls, n_clusters: int) -> "DDV":
        """The DDV of a cluster that has neither checkpointed nor received."""
        if n_clusters < 1:
            raise ValueError("federation needs at least one cluster")
        return cls((0,) * n_clusters)

    # ------------------------------------------------------------------
    def __getitem__(self, cluster: int) -> int:
        return self._entries[cluster]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DDV):
            return self._entries == other._entries
        if isinstance(other, tuple):
            return self._entries == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._entries)

    def as_tuple(self) -> tuple:
        return self._entries

    # ------------------------------------------------------------------
    def with_entry(self, cluster: int, value: int) -> "DDV":
        """Copy with one entry replaced."""
        entries = list(self._entries)
        entries[cluster] = value
        return DDV(entries)

    def merged(self, updates: Mapping[int, int]) -> "DDV":
        """Copy with ``updates`` applied as entrywise maxima."""
        entries = list(self._entries)
        for cluster, value in updates.items():
            if value > entries[cluster]:
                entries[cluster] = value
        return DDV(entries)

    def merged_max(self, other: "DDV") -> "DDV":
        """Entrywise maximum with another DDV (transitive-tracking mode)."""
        if len(other) != len(self):
            raise ValueError("DDV size mismatch")
        return DDV(max(a, b) for a, b in zip(self._entries, other._entries))

    def increased_entries(self, other: "DDV", skip: int = -1) -> dict:
        """Entries of ``other`` strictly greater than ours, except ``skip``.

        Used in transitive mode to decide whether a received DDV introduces
        any new dependency (and therefore must force a CLC).
        """
        return {
            i: v
            for i, (mine, v) in enumerate(zip(self._entries, other._entries))
            if v > mine and i != skip
        }

    def dominates(self, other: "DDV") -> bool:
        """True if every entry is >= the corresponding entry of ``other``."""
        if len(other) != len(self):
            raise ValueError("DDV size mismatch")
        return all(a >= b for a, b in zip(self._entries, other._entries))

    def __repr__(self) -> str:
        return f"DDV{self._entries}"
