"""Rollback and recovery (§3.4 of the paper).

Sequence on a node failure:

1. the failure detector reports the crash (detector itself is out of the
   paper's scope; ours is a fixed-latency oracle),
2. the faulty cluster rolls back to its **last** stored CLC; its new SN is
   the restored CLC's number,
3. one node in each other cluster receives a **rollback alert** carrying the
   faulty cluster's new SN (and rollback epoch) and re-broadcasts it inside
   its cluster,
4. an alerted cluster whose current DDV entry for the faulty cluster is
   ``>= alert SN`` rolls back to the **oldest** stored CLC whose entry is
   ``>= alert SN`` and emits its own alert (cascade: this computes the
   recovery line),
5. clusters -- rolled back or not -- re-send logged messages destined to the
   faulty cluster that were acknowledged with an SN greater than the alert
   SN, or never acknowledged.

The ablation ``replay_enabled=False`` replaces step 5 by rolling the
*sender* cluster back to before its earliest affected send, measuring how
much the sender-side log buys (§3.3: "We want to limit the number of
clusters that rollback").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.clc import CheckpointCause, CheckpointRecord
from repro.network.message import MessageKind, NodeId
from repro.sim.kernel import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.core.hc3i import Hc3iClusterState, Hc3iProtocol

__all__ = ["Hc3iRecoveryManager"]


class Hc3iRecoveryManager:
    """Event-driven rollback cascade for the HC3I protocol."""

    def __init__(self, protocol: "Hc3iProtocol"):
        self.protocol = protocol
        self._completion_events: dict = {}
        #: failures handled so far (for statistics / experiment bookkeeping)
        self.failures_handled = 0

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def on_failure_detected(self, node: "Node") -> None:
        """§3.4: "the cluster rolls back to its last stored CLC"."""
        cluster = node.id.cluster
        cs = self.protocol.cluster_states[cluster]
        target = cs.store.last()
        self.failures_handled += 1
        self.protocol.stats.counter("rollback/failures").inc()
        self.protocol.tracer.protocol(
            "failure_detected", cluster=cluster, node=node.id.node, target_sn=target.sn
        )
        self._do_rollback(cluster, target, failed_node=node)

    def on_alert(
        self, cluster: int, faulty: int, alert_sn: int, faulty_epoch: int
    ) -> None:
        """Handle a rollback alert received by ``cluster``."""
        protocol = self.protocol
        cs = protocol.cluster_states[cluster]
        cs.record_alert(faulty, alert_sn, faulty_epoch)
        protocol.stats.counter("rollback/alerts_received").inc()
        protocol.tracer.protocol(
            "alert_received", cluster=cluster, faulty=faulty, sn=alert_sn
        )

        # Inputs from the faulty cluster's erased epochs are ghosts now.
        protocol.coordinators[cluster].scrub(faulty, alert_sn)
        for node in protocol.federation.clusters[cluster].nodes:
            node.agent.drop_ghost_input(faulty)

        # Rollback check (on the *current* DDV, per §3.4).
        if cs.ddv[faulty] >= alert_sn:
            target = cs.store.find_rollback_target(faulty, alert_sn)
            if target is not None and not self._is_noop(cs, target):
                self._do_rollback(cluster, target)

        # Replay (or the no-log ablation) from whatever survived in the log.
        if protocol.options.replay_enabled:
            self._replay(cluster, faulty, alert_sn)
        else:
            self._rollback_instead_of_replay(cluster, faulty, alert_sn)

    # ------------------------------------------------------------------
    # rollback machinery
    # ------------------------------------------------------------------
    def _is_noop(self, cs: "Hc3iClusterState", target: CheckpointRecord) -> bool:
        """Would restoring ``target`` change nothing?  (Loop guard.)"""
        if cs.recovering and cs.restore_target_sn is not None:
            return target.sn >= cs.restore_target_sn
        return (
            not cs.state_dirty
            and cs.sn == target.sn
            and cs.store.last() is target
        )

    def _do_rollback(
        self,
        cluster: int,
        target: CheckpointRecord,
        failed_node: Optional["Node"] = None,
    ) -> None:
        protocol = self.protocol
        fed = protocol.federation
        cs = protocol.cluster_states[cluster]
        sim = protocol.sim
        from_sn = cs.sn

        # 1. Abort any in-flight two-phase commit.
        protocol.coordinators[cluster].abort()

        # 2. Collect the volatile per-node input queues before wiping them.
        agents = [node.agent for node in fed.clusters[cluster].nodes]
        live_msgs: dict = {}
        for agent in agents:
            for entry in agent.pending_force:
                live_msgs[entry.msg.msg_id] = entry.msg
            for msg in agent.deferred_in:
                live_msgs[msg.msg_id] = msg
            agent.pending_force = []
            agent.deferred_in = []
            agent.queued_out = []
            agent.in_round = False
            # A rollback invalidates incremental-replica delta chains.
            agent.replicated_full = False

        # 3. Restore the shared cluster state from the target CLC.
        discarded = cs.store.discard_after(target)
        cs.sn = target.sn
        cs.ddv = list(target.ddv)
        cs.delivered_ids = set(target.delivered_ids)
        dropped_log = cs.sent_log.drop_sent_after(target.sn)
        cs.rollback_epoch += 1
        cs.known_epochs[cluster] = cs.rollback_epoch
        cs.state_dirty = False
        cs.recovering = True
        cs.restore_target_sn = target.sn

        # 4. Re-queue the inter-cluster messages saved inside the CLC --
        #    except those whose send a peer rollback has erased meanwhile
        #    (they are ghosts now; delivering them from the restored queue
        #    would resurrect an unsent message).
        requeued = set()
        for node_idx, entry in target.queued:
            if entry.msg.msg_id in requeued or entry.msg.msg_id in cs.delivered_ids:
                continue
            if cs.is_ghost(entry.msg.src.cluster, entry.msg.piggyback):
                protocol.stats.counter("hc3i/ghosts_dropped").inc()
                continue
            agents[node_idx].pending_force.append(entry)
            requeued.add(entry.msg.msg_id)

        # 5. Received-but-unrecorded messages get re-examined from scratch
        #    once recovery completes (fresh ack/force decision).
        for msg_id, msg in live_msgs.items():
            if msg_id in requeued or msg_id in cs.delivered_ids:
                continue
            agents[msg.dst.node].deferred_in.append(msg)

        # 6. Application impact: interrupt processes, account lost work.
        fed.on_cluster_rollback(cluster, target.time, failed_node)

        # 7. Statistics / trace.
        protocol.stats.counter(f"rollback/c{cluster}/count").inc()
        protocol.stats.counter("rollback/total").inc()
        protocol.stats.counter("rollback/clcs_discarded").inc(discarded)
        protocol.stats.counter("rollback/log_entries_dropped").inc(dropped_log)
        protocol.stats.gauge(f"clc/c{cluster}/stored").set(len(cs.store))
        protocol.tracer.protocol(
            "rollback",
            cluster=cluster,
            to_sn=target.sn,
            from_sn=from_sn,
            discarded=discarded,
            epoch=cs.rollback_epoch,
            failed=failed_node.id.node if failed_node is not None else None,
        )

        # 8. Alert every other cluster (one node each, §3.4).  The sender
        #    must be a live node -- the crashed one may be the leader.
        runtime = fed.clusters[cluster]
        sender = next((n for n in runtime.nodes if n.up), runtime.leader)
        size = protocol.options.control_size
        for d in range(fed.topology.n_clusters):
            if d == cluster:
                continue
            sender.send_raw(
                NodeId(d, 0),
                MessageKind.ALERT,
                size=size,
                payload={"faulty": cluster, "sn": target.sn, "epoch": cs.rollback_epoch},
            )
            protocol.stats.counter("rollback/alerts_sent").inc()

        # 9. Schedule the end of the restore.
        timers = fed.timers
        delay = timers.checkpoint_restore_time
        if failed_node is not None:
            # The crashed node must be repaired, then fetch its state back
            # from the neighbour holding the replica (stable storage).
            fetch = fed.topology.delay(
                failed_node.id, failed_node.id, timers.node_state_size
            )
            delay += timers.node_repair_time + fetch
        prev: Optional[Event] = self._completion_events.get(cluster)
        if prev is not None:
            sim.cancel(prev)
        self._completion_events[cluster] = sim.schedule(
            delay, self._complete_recovery, cluster
        )

    def _complete_recovery(self, cluster: int) -> None:
        protocol = self.protocol
        fed = protocol.federation
        cs = protocol.cluster_states[cluster]
        self._completion_events.pop(cluster, None)
        cs.recovering = False
        cs.restore_target_sn = None

        # Bring crashed nodes back (flushes their buffered input).
        for node in fed.clusters[cluster].nodes:
            if not node.up:
                node.recover()

        # Deliver restored queued messages that the restored DDV already
        # covers; re-request a forced CLC for the rest.
        combined: dict = {}
        force_any = False
        agents = [node.agent for node in fed.clusters[cluster].nodes]
        for agent in agents:
            agent.evaluate_pending()
            for entry in agent.pending_force:
                for i, v in entry.updates.items():
                    if v > cs.ddv[i] and v > combined.get(i, -1):
                        combined[i] = v
                force_any = force_any or entry.force_required
        if combined or force_any:
            protocol.coordinators[cluster].initiate(
                CheckpointCause.FORCED, updates=combined, force=force_any
            )
        for agent in agents:
            agent.process_deferred()

        fed.restart_cluster_apps(cluster)
        protocol.coordinators[cluster].timer.reset()
        protocol.tracer.protocol("recovery_complete", cluster=cluster, sn=cs.sn)
        fed.notify_recovery_complete(cluster)

    # ------------------------------------------------------------------
    # replays
    # ------------------------------------------------------------------
    def _replay(self, cluster: int, faulty: int, alert_sn: int) -> None:
        protocol = self.protocol
        cs = protocol.cluster_states[cluster]
        # "log searches" appear at the paper's highest trace level
        protocol.tracer.debug(
            "log_search", cluster=cluster, dest=faulty, alert_sn=alert_sn,
            entries=len(cs.sent_log),
        )
        entries = cs.sent_log.entries_to_replay(faulty, alert_sn)
        for entry in entries:
            entry.ack_sn = None
            entry.replays += 1
            replay = entry.msg.clone_for_replay()
            protocol.federation.fabric.send(replay)
            protocol.stats.counter("rollback/replays").inc()
        if entries:
            protocol.tracer.protocol(
                "replayed", cluster=cluster, dest=faulty, count=len(entries)
            )

    def _rollback_instead_of_replay(
        self, cluster: int, faulty: int, alert_sn: int
    ) -> None:
        """Ablation: no sender-side replay, so the sender rolls back far
        enough that re-execution regenerates the affected messages."""
        protocol = self.protocol
        cs = protocol.cluster_states[cluster]
        entries = cs.sent_log.entries_to_replay(faulty, alert_sn)
        if not entries:
            return
        min_send = min(e.send_sn for e in entries)
        target = None
        for record in cs.store:
            if record.sn <= min_send:
                target = record
            else:
                break
        if target is None or self._is_noop(cs, target):
            return
        protocol.stats.counter("rollback/no_log_forced").inc()
        self._do_rollback(cluster, target)
