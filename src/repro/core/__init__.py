"""HC3I: the paper's hierarchical checkpointing protocol.

The protocol combines

* **coordinated checkpointing inside each cluster** -- a two-phase commit
  establishes Cluster Level Checkpoints (CLCs), numbered by a per-cluster
  sequence number (SN) (:mod:`repro.core.clc`),
* **communication-induced checkpointing between clusters** -- the sender's
  SN is piggybacked on every inter-cluster application message and compared
  against the receiver's Direct Dependencies Vector (DDV); a *forced CLC*
  keeps the recovery line progressing (:mod:`repro.core.hc3i`,
  :mod:`repro.core.ddv`),
* **sender-side optimistic message logging** so that clusters that did not
  fail do not have to roll back (:mod:`repro.core.msglog`),
* **rollback alerts** that compute the recovery line at rollback time
  (:mod:`repro.core.rollback`, :mod:`repro.core.recovery_line`),
* **garbage collection** of old CLCs and logged messages
  (:mod:`repro.core.garbage`).
"""

from repro.core.clc import CheckpointCause, CheckpointRecord, ClcStore
from repro.core.ddv import DDV
from repro.core.msglog import LogEntry, MessageLog
from repro.core.protocol import BaseProtocol, ClusterView, register_protocol, make_protocol, protocol_names
from repro.core.recovery_line import cascade_targets, compute_min_sns
from repro.core.hc3i import Hc3iProtocol

__all__ = [
    "BaseProtocol",
    "CheckpointCause",
    "CheckpointRecord",
    "ClcStore",
    "ClusterView",
    "DDV",
    "Hc3iProtocol",
    "LogEntry",
    "MessageLog",
    "cascade_targets",
    "compute_min_sns",
    "make_protocol",
    "protocol_names",
    "register_protocol",
]
