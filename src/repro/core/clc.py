"""Cluster Level Checkpoints (CLCs) and their per-cluster store.

A CLC is the coordinated checkpoint of all the processes of one cluster,
established by a two-phase commit (§3.1 of the paper):

* an initiator broadcasts a CLC *request* inside its cluster,
* every node saves its state (and replicates it to neighbour memory --
  stable storage), then *acknowledges*,
* the initiator broadcasts a *commit*; the cluster's sequence number (SN)
  is incremented and the CLC is stamped with the cluster's DDV (whose own
  entry equals the new SN).

Because the protocol's communication-induced layer may need to restore *old*
CLCs (the recovery line is computed at rollback time), every cluster stores
multiple CLCs; the garbage collector prunes them (§3.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.ddv import DDV

__all__ = ["CheckpointCause", "CheckpointRecord", "ClcStore"]


class CheckpointCause(enum.Enum):
    """Why a CLC was taken."""

    INITIAL = "initial"  #: the mandatory checkpoint at application start
    TIMER = "timer"      #: unforced: the cluster's periodic CLC timer fired
    FORCED = "forced"    #: forced by an inter-cluster message (CIC layer)
    MANUAL = "manual"    #: requested explicitly through the API

    @property
    def forced(self) -> bool:
        return self is CheckpointCause.FORCED

    @property
    def unforced(self) -> bool:
        return self is CheckpointCause.TIMER


@dataclass(frozen=True)
class CheckpointRecord:
    """One committed CLC.

    ``sn`` is the cluster's sequence number *after* the commit; the record's
    DDV own-entry always equals ``sn``.  ``delivered_ids`` snapshots the set
    of inter-cluster application message ids delivered so far -- restoring
    the record restores that set, which is what makes replay deduplication
    consistent across rollbacks.

    ``queued`` snapshots the inter-cluster messages that were *received but
    not yet delivered* (waiting for their forced CLC) when each node saved
    its state: they are part of the saved state, exactly like the paper's
    queued messages during the two-phase commit.  This is what makes the
    "acknowledged with the local SN + 1" rule (§4) consistent: the CLC whose
    number equals the ack contains the message in its queue, so restoring it
    re-delivers the message without any replay.  Entries are
    ``(node_index, PendingDelivery)`` pairs.
    """

    sn: int
    ddv: DDV
    time: float
    cause: CheckpointCause
    cluster: int
    delivered_ids: frozenset = field(default_factory=frozenset)
    state_bytes: int = 0
    queued: tuple = ()

    def __post_init__(self) -> None:
        if self.ddv[self.cluster] != self.sn:
            raise ValueError(
                f"CLC record invariant violated: ddv[{self.cluster}]="
                f"{self.ddv[self.cluster]} != sn={self.sn}"
            )

    @property
    def forced(self) -> bool:
        return self.cause.forced


class ClcStore:
    """Chronologically ordered CLCs of one cluster.

    Supports the three mutations the protocol needs: append on commit,
    discard-after on rollback, prune-older-than on garbage collection.
    """

    def __init__(self, cluster: int):
        self.cluster = cluster
        self.records: list[CheckpointRecord] = []
        #: total CLCs ever discarded by rollbacks (for statistics)
        self.discarded_by_rollback = 0
        #: total CLCs ever removed by the garbage collector
        self.removed_by_gc = 0

    # ------------------------------------------------------------------
    def add(self, record: CheckpointRecord) -> None:
        if record.cluster != self.cluster:
            raise ValueError(f"record for cluster {record.cluster} in store {self.cluster}")
        if self.records and record.sn <= self.records[-1].sn:
            raise ValueError(
                f"non-increasing CLC sn: {record.sn} after {self.records[-1].sn}"
            )
        self.records.append(record)

    def last(self) -> CheckpointRecord:
        if not self.records:
            raise LookupError(f"cluster {self.cluster} has no stored CLC")
        return self.records[-1]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def sns(self) -> list[int]:
        return [r.sn for r in self.records]

    # ------------------------------------------------------------------
    def find_rollback_target(self, faulty: int, alert_sn: int) -> Optional[CheckpointRecord]:
        """The *oldest* stored CLC whose DDV entry for ``faulty`` >= ``alert_sn``.

        This is the paper's §3.4 rule: the DDV entry for the faulty cluster
        is updated (by a forced CLC) *before* any message carrying that SN
        is delivered, so the oldest CLC satisfying the predicate precedes
        every delivery that depends on the lost states.
        """
        for record in self.records:
            if record.ddv[faulty] >= alert_sn:
                return record
        return None

    def discard_after(self, record: CheckpointRecord) -> int:
        """Drop every CLC newer than ``record`` (a rollback erased them)."""
        try:
            idx = self.records.index(record)
        except ValueError:
            raise LookupError(f"record sn={record.sn} not in store {self.cluster}") from None
        removed = len(self.records) - idx - 1
        del self.records[idx + 1:]
        self.discarded_by_rollback += removed
        return removed

    def prune(self, min_sn: int) -> int:
        """Garbage-collect CLCs with ``sn < min_sn`` (§3.5).

        Defensive guard: the newest CLC is never removed, whatever
        ``min_sn`` says -- a cluster must always be able to roll back to
        its last checkpoint.
        """
        if len(self.records) <= 1:
            return 0
        keep_from = 0
        for i, record in enumerate(self.records):
            if record.sn >= min_sn:
                keep_from = i
                break
        else:
            keep_from = len(self.records) - 1  # keep only the newest
        removed = keep_from
        if removed:
            del self.records[:keep_from]
            self.removed_by_gc += removed
        return removed

    def ddv_list(self) -> list[tuple]:
        """(sn, ddv-tuple) for every stored CLC -- the GC response payload."""
        return [(r.sn, r.ddv.as_tuple()) for r in self.records]

    def total_state_bytes(self) -> int:
        return sum(r.state_bytes for r in self.records)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ClcStore c{self.cluster} sns={self.sns()}>"
