"""Protocol-agnostic interfaces.

The federation builder (:mod:`repro.cluster.federation`) instantiates a
checkpointing protocol by name; HC3I and every baseline implement the same
small surface so experiments can swap them with a string:

* :class:`BaseProtocol` -- one object per federation; owns per-cluster
  protocol state and builds one :class:`NodeAgent` per node,
* :class:`NodeAgent` -- receives every message addressed to its node and
  mediates application sends (piggybacking, freezing, queueing),
* :class:`ClusterView` -- the shared per-cluster protocol state (SN, DDV,
  CLC store, sender log).

Modelling note: SN, DDV and the CLC store are *shared objects* per cluster
rather than per-node copies.  The paper guarantees that "outside the
two-phase commit protocol" all nodes of a cluster agree on them (§3.1), and
the agents only read them outside freeze windows, so sharing is
behaviourally equivalent while keeping the simulator fast.  All protocol
*traffic* (requests, acks, commits, replicas, alerts, GC rounds) still
travels through the network fabric and is counted and delayed normally.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.clc import ClcStore
from repro.core.msglog import MessageLog
from repro.network.message import Message, NodeId

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.federation import Federation
    from repro.cluster.node import Node

__all__ = [
    "BaseProtocol",
    "ClusterView",
    "NodeAgent",
    "make_protocol",
    "protocol_names",
    "register_protocol",
]


class ClusterView:
    """Shared per-cluster protocol state."""

    def __init__(self, index: int, n_clusters: int):
        self.index = index
        self.n_clusters = n_clusters
        self.sn = 0
        self.ddv = [0] * n_clusters
        self.store = ClcStore(index)
        self.sent_log = MessageLog(index)
        #: ids of inter-cluster application messages delivered so far
        self.delivered_ids: set = set()
        #: incremented on every rollback of this cluster (incarnation number)
        self.rollback_epoch = 0
        #: False right after a restore until any commit/delivery progresses
        self.state_dirty = False
        #: cluster is mid-recovery: inter-cluster input is deferred
        self.recovering = False

    def ddv_tuple(self) -> tuple:
        return tuple(self.ddv)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ClusterView c{self.index} sn={self.sn} ddv={self.ddv}>"


class NodeAgent(abc.ABC):
    """Per-node protocol endpoint."""

    def __init__(self, protocol: "BaseProtocol", node: "Node"):
        self.protocol = protocol
        self.node = node

    @abc.abstractmethod
    def app_send(self, dst: NodeId, size: int, payload: Optional[dict] = None) -> None:
        """The application asks to send a message (may be queued/frozen)."""

    @abc.abstractmethod
    def on_receive(self, msg: Message) -> None:
        """A message arrived from the fabric while the node is up."""

    def buffer_while_down(self, msg: Message) -> bool:
        """Should this arrival be kept and handled when the node recovers?

        Default: keep everything except intra-cluster application traffic
        (which the post-rollback re-execution regenerates) and checkpoint
        2PC control traffic (the round is aborted by the rollback anyway).
        """
        from repro.network.message import MessageKind

        if msg.kind in (
            MessageKind.CLC_REQUEST,
            MessageKind.CLC_ACK,
            MessageKind.CLC_COMMIT,
            MessageKind.CLC_INITIATE,
            MessageKind.REPLICA,
        ):
            return False
        if msg.kind.is_app and not msg.inter_cluster:
            return False
        return True

    def on_node_failed(self) -> None:
        """Local bookkeeping when this node crashes (fail-stop)."""

    def on_node_recovered(self) -> None:
        """Local bookkeeping when this node is restored after a rollback."""


class BaseProtocol(abc.ABC):
    """A checkpoint/recovery protocol driving a federation."""

    #: registry name; subclasses set it
    name: str = "base"

    def __init__(self, federation: "Federation", options: Optional[dict] = None):
        self.federation = federation
        self.options = dict(options or {})

    # -- construction ---------------------------------------------------
    @abc.abstractmethod
    def make_agent(self, node: "Node") -> NodeAgent:
        """Create the per-node agent (called once per node by the builder)."""

    @abc.abstractmethod
    def start(self) -> None:
        """Schedule protocol activity at t=0 (initial checkpoints, timers)."""

    # -- failure path ---------------------------------------------------
    @abc.abstractmethod
    def on_failure_detected(self, node: "Node") -> None:
        """The failure detector reports a crashed node."""

    # -- introspection ---------------------------------------------------
    def cluster_summary(self, cluster: int) -> dict:
        """Protocol-specific per-cluster numbers for reports (override)."""
        return {}

    @property
    def sim(self):
        return self.federation.sim

    @property
    def stats(self):
        return self.federation.stats

    @property
    def tracer(self):
        return self.federation.tracer


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[..., BaseProtocol]] = {}


def register_protocol(name: str):
    """Class decorator adding a protocol to the by-name registry."""

    def deco(cls):
        if name in _REGISTRY:
            raise ValueError(f"protocol {name!r} registered twice")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def make_protocol(name: str, federation: "Federation", options: Optional[dict] = None) -> BaseProtocol:
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(federation, options)


def protocol_names() -> list:
    return sorted(_REGISTRY)
