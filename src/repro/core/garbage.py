"""Garbage collection of CLCs and logged messages (§3.5).

Centralized collector (the paper's):

1. the initiator asks one node in each cluster for "its list of all the
   DDVs associated with the stored CLCs",
2. it "simulates a failure in each cluster and keeps the smallest SN to
   which the clusters of the federation might rollback"
   (:func:`repro.core.recovery_line.compute_min_sns`),
3. it sends the vector of smallest SNs to one node per cluster, which
   broadcasts it inside its cluster,
4. each node removes CLCs whose own-cluster SN is below the bound, and
   logged messages acknowledged below the receiver cluster's bound.

Per-round network cost (§5.4): N-1 inter-cluster requests, N-1 responses
(carrying the DDV lists), N-1 collect messages, plus one broadcast inside
each cluster -- the fabric counts all of them.

The distributed variant (paper §7: "the garbage collector could be more
distributed") passes a token around the ring of cluster leaders: a first
circulation accumulates the DDV lists, the initiator computes the bounds,
and a second circulation distributes them.  2·N inter-cluster messages
instead of 3·(N-1), and no central memory hotspot.

Safety: a response carries the responding cluster's *rollback epoch*; the
collect message echoes the epoch vector and every cluster cross-checks it
against the alerts it has seen before pruning.  A GC round that raced a
rollback is simply skipped (counted in ``gc/skipped``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.recovery_line import compute_min_sns
from repro.network.message import Message, MessageKind, NodeId
from repro.sim.timers import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.core.hc3i import Hc3iProtocol

__all__ = [
    "CentralizedGarbageCollector",
    "DistributedGarbageCollector",
    "make_garbage_collector",
]


class _GarbageCollectorBase:
    """Shared plumbing: timer, statistics, the prune step."""

    def __init__(self, protocol: "Hc3iProtocol"):
        self.protocol = protocol
        timers = protocol.federation.timers
        self.initiator_cluster = timers.gc_initiator_cluster
        self.timer = PeriodicTimer(
            protocol.sim, timers.gc_period, self._timer_fired, name="gc"
        )
        self.rounds_started = 0
        self.rounds_completed = 0

    def start(self) -> None:
        self.timer.start()

    def _timer_fired(self) -> None:
        self.collect_now()

    def collect_now(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def on_message(self, node: "Node", msg: Message) -> None:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _response_payload(self, cluster: int) -> dict:
        cs = self.protocol.cluster_states[cluster]
        return {
            "cluster": cluster,
            "epoch": cs.rollback_epoch,
            "current_ddv": cs.ddv_tuple(),
            "ddvs": cs.store.ddv_list(),
        }

    def _response_size(self, payload: dict) -> int:
        n = self.protocol.federation.topology.n_clusters
        return self.protocol.options.control_size + 8 * n * (len(payload["ddvs"]) + 1)

    def _compute_min_sns(self, responses: dict) -> list:
        n = self.protocol.federation.topology.n_clusters
        stored = [responses[c]["ddvs"] for c in range(n)]
        current = [responses[c]["current_ddv"] for c in range(n)]
        return compute_min_sns(stored, current)

    def _apply_collect(self, cluster: int, min_sns: list, epochs: list) -> None:
        protocol = self.protocol
        cs = protocol.cluster_states[cluster]
        stats = protocol.stats

        # Epoch cross-check: skip if any cluster rolled back since it
        # contributed its DDV list (its data -- and therefore the bounds --
        # are stale).
        known = list(cs.known_epochs)
        known[cluster] = cs.rollback_epoch
        if list(epochs) != known:
            stats.counter("gc/skipped").inc()
            protocol.tracer.protocol("gc_skipped", cluster=cluster)
            return

        # Intra-cluster fan-out of the bounds (network accounting).
        fed = protocol.federation
        leader = fed.clusters[cluster].leader
        size = protocol.options.control_size + 8 * len(min_sns)
        for node in fed.clusters[cluster].nodes:
            if node.id != leader.id:
                leader.send_raw(node.id, MessageKind.GC_LOCAL, size=size)

        before = len(cs.store)
        removed = cs.store.prune(min_sns[cluster])
        log_removed = cs.sent_log.prune(min_sns)
        after = len(cs.store)
        now = protocol.sim.now
        # "Needed" log entries: those a worst-case failure of their
        # destination would replay right now (unacked, or acked above the
        # destination's smallest reachable SN).  This is the quantity the
        # paper's §5.4 reports as "the maximum number of logged messages"
        # (4 in its sample): entries kept only because the GC prune rule
        # is conservative do not count.
        needed = sum(
            1
            for e in cs.sent_log
            if e.ack_sn is None or e.ack_sn > min_sns[e.dest_cluster]
        )
        stats.series(f"gc/c{cluster}/log_needed").record(now, needed)
        stats.series(f"gc/c{cluster}/before").record(now, before)
        stats.series(f"gc/c{cluster}/after").record(now, after)
        stats.counter("gc/clcs_removed").inc(removed)
        stats.counter("gc/log_entries_removed").inc(log_removed)
        stats.gauge(f"clc/c{cluster}/stored").set(after)
        stats.gauge(f"clc/c{cluster}/stored_bytes").set(cs.store.total_state_bytes())
        protocol.tracer.protocol(
            "gc_prune",
            cluster=cluster,
            before=before,
            after=after,
            min_sn=min_sns[cluster],
            log_removed=log_removed,
        )

    def _leader_id(self, cluster: int) -> NodeId:
        return NodeId(cluster, 0)


class CentralizedGarbageCollector(_GarbageCollectorBase):
    """The paper's centralized collector (initiator node gathers all)."""

    def __init__(self, protocol: "Hc3iProtocol"):
        super().__init__(protocol)
        self._round_id = 0
        self._responses: Optional[dict] = None

    def collect_now(self) -> None:
        """Start a round (periodic, or on demand for memory pressure)."""
        if self._responses is not None:
            return  # previous round still in flight
        cs = self.protocol.cluster_states[self.initiator_cluster]
        if cs.recovering:
            return
        self._round_id += 1
        self.rounds_started += 1
        self._responses = {}
        fed = self.protocol.federation
        leader = fed.clusters[self.initiator_cluster].leader
        self.protocol.tracer.protocol("gc_round", round=self._round_id)
        for d in range(fed.topology.n_clusters):
            if d == self.initiator_cluster:
                self._responses[d] = self._response_payload(d)
            else:
                leader.send_raw(
                    self._leader_id(d),
                    MessageKind.GC_REQUEST,
                    size=self.protocol.options.control_size,
                    payload={"round": self._round_id},
                )
        self._maybe_finish()

    def on_message(self, node: "Node", msg: Message) -> None:
        kind = msg.kind
        if kind is MessageKind.GC_REQUEST:
            payload = self._response_payload(node.id.cluster)
            node.send_raw(
                msg.src,
                MessageKind.GC_RESPONSE,
                size=self._response_size(payload),
                payload={"round": msg.payload["round"], "data": payload},
            )
        elif kind is MessageKind.GC_RESPONSE:
            if self._responses is None or msg.payload["round"] != self._round_id:
                return  # stale response
            data = msg.payload["data"]
            self._responses[data["cluster"]] = data
            self._maybe_finish()
        elif kind is MessageKind.GC_COLLECT:
            self._apply_collect(
                node.id.cluster, msg.payload["min_sns"], msg.payload["epochs"]
            )
        elif kind is MessageKind.GC_LOCAL:
            pass  # intra-cluster fan-out, accounting only

    def _maybe_finish(self) -> None:
        fed = self.protocol.federation
        n = fed.topology.n_clusters
        assert self._responses is not None
        if len(self._responses) < n:
            return
        responses, self._responses = self._responses, None
        min_sns = self._compute_min_sns(responses)
        epochs = [responses[c]["epoch"] for c in range(n)]
        self.rounds_completed += 1
        leader = fed.clusters[self.initiator_cluster].leader
        size = self.protocol.options.control_size + 16 * n
        for d in range(n):
            if d == self.initiator_cluster:
                self._apply_collect(d, min_sns, epochs)
            else:
                leader.send_raw(
                    self._leader_id(d),
                    MessageKind.GC_COLLECT,
                    size=size,
                    payload={"min_sns": min_sns, "epochs": epochs},
                )


class DistributedGarbageCollector(_GarbageCollectorBase):
    """Token-ring collector (§7 future work: "more distributed")."""

    def __init__(self, protocol: "Hc3iProtocol"):
        super().__init__(protocol)
        self._round_id = 0
        self._round_active = False

    def collect_now(self) -> None:
        if self._round_active:
            return
        cs = self.protocol.cluster_states[self.initiator_cluster]
        if cs.recovering:
            return
        self._round_id += 1
        self.rounds_started += 1
        self._round_active = True
        self.protocol.tracer.protocol("gc_round", round=self._round_id)
        data = {self.initiator_cluster: self._response_payload(self.initiator_cluster)}
        self._forward_collect_token(self.initiator_cluster, data)

    def _next_cluster(self, cluster: int) -> int:
        return (cluster + 1) % self.protocol.federation.topology.n_clusters

    def _forward_collect_token(self, cluster: int, data: dict) -> None:
        fed = self.protocol.federation
        nxt = self._next_cluster(cluster)
        leader = fed.clusters[cluster].leader
        size = self.protocol.options.control_size + sum(
            self._response_size(d) for d in data.values()
        )
        leader.send_raw(
            self._leader_id(nxt),
            MessageKind.GC_REQUEST,
            size=size,
            payload={"round": self._round_id, "data": dict(data)},
        )

    def on_message(self, node: "Node", msg: Message) -> None:
        kind = msg.kind
        cluster = node.id.cluster
        if kind is MessageKind.GC_REQUEST:
            data = dict(msg.payload["data"])
            if cluster == self.initiator_cluster:
                # Token completed the first circulation: compute and
                # start the prune circulation.
                n = self.protocol.federation.topology.n_clusters
                min_sns = self._compute_min_sns(data)
                epochs = [data[c]["epoch"] for c in range(n)]
                self.rounds_completed += 1
                self._apply_collect(cluster, min_sns, epochs)
                self._forward_prune_token(cluster, min_sns, epochs)
            else:
                data[cluster] = self._response_payload(cluster)
                self._forward_collect_token(cluster, data)
        elif kind is MessageKind.GC_COLLECT:
            min_sns = msg.payload["min_sns"]
            epochs = msg.payload["epochs"]
            self._apply_collect(cluster, min_sns, epochs)
            self._forward_prune_token(cluster, min_sns, epochs)
        elif kind is MessageKind.GC_LOCAL:
            pass

    def _forward_prune_token(self, cluster: int, min_sns: list, epochs: list) -> None:
        nxt = self._next_cluster(cluster)
        if nxt == self.initiator_cluster:
            self._finish_round()
            return
        fed = self.protocol.federation
        leader = fed.clusters[cluster].leader
        n = fed.topology.n_clusters
        leader.send_raw(
            self._leader_id(nxt),
            MessageKind.GC_COLLECT,
            size=self.protocol.options.control_size + 16 * n,
            payload={"min_sns": min_sns, "epochs": epochs},
        )

    def _finish_round(self) -> None:
        self._round_active = False


def make_garbage_collector(protocol: "Hc3iProtocol") -> _GarbageCollectorBase:
    if protocol.options.gc_mode == "distributed":
        return DistributedGarbageCollector(protocol)
    return CentralizedGarbageCollector(protocol)
