"""Sender-side optimistic message logging (§3.3).

"When a message is sent outside a cluster, the sender logs it
optimistically in its volatile memory (logged messages are used only if the
sender does not rollback).  The message is acknowledged with the receiver's
SN which is logged along with the message itself."

The log is what lets a non-failed sender cluster *replay* messages instead
of rolling back when the receiver's cluster restarts from an older CLC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.network.message import Message

__all__ = ["LogEntry", "MessageLog"]


@dataclass
class LogEntry:
    """One logged inter-cluster application message."""

    msg: Message
    send_sn: int          #: sender cluster's SN at send time (the epoch of the send)
    dest_cluster: int
    ack_sn: Optional[int] = None  #: receiver's ack SN; None until acknowledged
    replays: int = 0      #: how many times this entry has been re-sent

    @property
    def bytes(self) -> int:
        return self.msg.size


class MessageLog:
    """Volatile log of the inter-cluster messages sent by one cluster.

    One instance per cluster; entries remember which node sent them (the
    message's ``src``), so replays originate from the right node.
    """

    def __init__(self, cluster: int):
        self.cluster = cluster
        self._entries: dict[int, LogEntry] = {}   # msg_id -> entry
        #: statistics: entries removed by garbage collection
        self.removed_by_gc = 0
        #: statistics: entries dropped because the sender itself rolled back
        self.dropped_by_rollback = 0
        #: high-water mark of simultaneously stored entries
        self.max_entries = 0

    # ------------------------------------------------------------------
    def add(self, msg: Message, send_sn: int) -> LogEntry:
        if not msg.inter_cluster:
            raise ValueError("only inter-cluster messages are logged")
        if msg.src.cluster != self.cluster:
            raise ValueError(
                f"message from cluster {msg.src.cluster} logged in cluster {self.cluster}"
            )
        entry = LogEntry(msg=msg, send_sn=send_sn, dest_cluster=msg.dst.cluster)
        self._entries[msg.msg_id] = entry
        if len(self._entries) > self.max_entries:
            self.max_entries = len(self._entries)
        return entry

    def ack(self, msg_id: int, ack_sn: int) -> bool:
        """Record the receiver's acknowledgement; False if already GC'ed."""
        entry = self._entries.get(msg_id)
        if entry is None:
            return False
        entry.ack_sn = ack_sn
        return True

    def get(self, msg_id: int) -> Optional[LogEntry]:
        return self._entries.get(msg_id)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(list(self._entries.values()))

    @property
    def bytes(self) -> int:
        return sum(e.bytes for e in self._entries.values())

    # ------------------------------------------------------------------
    def entries_to_replay(self, dest_cluster: int, alert_sn: int) -> list[LogEntry]:
        """Entries to re-send after ``dest_cluster`` rolled back to ``alert_sn``.

        §3.4: "Logged messages sent to nodes in the faulty cluster
        acknowledged with a SN greater than the alert one (or not
        acknowledged at all) will then be resent."
        """
        return [
            e
            for e in self._entries.values()
            if e.dest_cluster == dest_cluster
            and (e.ack_sn is None or e.ack_sn > alert_sn)
        ]

    def drop_sent_after(self, restored_sn: int) -> int:
        """Forget entries whose *send* was erased by our own rollback.

        A send with ``send_sn >= restored_sn`` happened after the restored
        CLC committed, so in the post-rollback timeline it never happened.
        """
        doomed = [mid for mid, e in self._entries.items() if e.send_sn >= restored_sn]
        for mid in doomed:
            del self._entries[mid]
        self.dropped_by_rollback += len(doomed)
        return len(doomed)

    def prune(self, min_sns: list) -> int:
        """Garbage collection (§3.5): drop entries acked below the
        receiver cluster's smallest reachable SN."""
        doomed = [
            mid
            for mid, e in self._entries.items()
            if e.ack_sn is not None and e.ack_sn < min_sns[e.dest_cluster]
        ]
        for mid in doomed:
            del self._entries[mid]
        self.removed_by_gc += len(doomed)
        return len(doomed)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MessageLog c{self.cluster} n={len(self._entries)}>"
