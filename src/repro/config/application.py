"""Application file: the synthetic code-coupling workload description.

Per the paper (§5.1): "The application file contains, for each cluster, the
mean computation time for each node, communication patterns between
computations (represented by probabilities between nodes) and the
application total time."

Each application process loops: *compute* for an exponentially distributed
time, then with probability ``send_probabilities[d]`` send one message to a
uniformly chosen node of cluster ``d`` (possibly its own cluster).  The
probabilities for a source cluster may sum to less than 1 -- the remainder
is "no communication this round".
"""

from __future__ import annotations

from dataclasses import dataclass, field
__all__ = ["ApplicationConfig", "ClusterAppSpec"]

#: Default application payload size in bytes (the paper does not report one;
#: small control-style messages dominate code-coupling exchanges).
DEFAULT_MESSAGE_SIZE = 1024


@dataclass
class ClusterAppSpec:
    """Workload of the processes hosted by one cluster."""

    mean_compute: float
    #: probability that a finished computation sends to cluster ``d``;
    #: indexed by destination cluster; may be shorter than the federation
    #: (missing entries = 0.0).
    send_probabilities: list[float] = field(default_factory=list)
    message_size: int = DEFAULT_MESSAGE_SIZE

    def __post_init__(self) -> None:
        if self.mean_compute <= 0:
            raise ValueError(f"mean_compute must be positive: {self.mean_compute}")
        if self.message_size <= 0:
            raise ValueError(f"message_size must be positive: {self.message_size}")
        total = 0.0
        for p in self.send_probabilities:
            if p < 0:
                raise ValueError(f"negative send probability: {p}")
            total += p
        if total > 1.0 + 1e-9:
            raise ValueError(f"send probabilities sum to {total} > 1")

    def probability_to(self, dst_cluster: int) -> float:
        if 0 <= dst_cluster < len(self.send_probabilities):
            return self.send_probabilities[dst_cluster]
        return 0.0

    def to_dict(self) -> dict:
        return {
            "mean_compute": self.mean_compute,
            "send_probabilities": list(self.send_probabilities),
            "message_size": self.message_size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterAppSpec":
        return cls(
            mean_compute=data["mean_compute"],
            send_probabilities=list(data.get("send_probabilities", [])),
            message_size=data.get("message_size", DEFAULT_MESSAGE_SIZE),
        )


@dataclass
class ApplicationConfig:
    """The whole application: one spec per cluster plus the total duration."""

    clusters: list[ClusterAppSpec]
    total_time: float

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("application needs at least one cluster spec")
        if self.total_time <= 0:
            raise ValueError(f"total_time must be positive: {self.total_time}")

    def spec_for(self, cluster: int) -> ClusterAppSpec:
        return self.clusters[cluster]

    def expected_messages(self, src: int, dst: int, nodes: int) -> float:
        """Analytic expectation of the (src, dst) message count.

        Each of ``nodes`` processes completes ``total_time / mean_compute``
        rounds on average, each sending to ``dst`` with the configured
        probability.  Used to calibrate workloads against Table 1.
        """
        spec = self.clusters[src]
        rounds = self.total_time / spec.mean_compute
        return nodes * rounds * spec.probability_to(dst)

    def to_dict(self) -> dict:
        return {
            "clusters": [c.to_dict() for c in self.clusters],
            "total_time": self.total_time,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ApplicationConfig":
        return cls(
            clusters=[ClusterAppSpec.from_dict(c) for c in data["clusters"]],
            total_time=data["total_time"],
        )
