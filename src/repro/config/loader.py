"""Loading and saving scenario configuration (the three JSON files).

``load_scenario`` reads the paper's three configuration files (topology,
application, timers) and bundles them into a :class:`ScenarioConfig` ready
to hand to :class:`~repro.cluster.federation.Federation`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.config.application import ApplicationConfig
from repro.config.timers import TimersConfig
from repro.network.topology import ClusterSpec, LinkSpec, Topology

__all__ = ["ScenarioConfig", "load_scenario", "topology_from_dict", "topology_to_dict"]

PathLike = Union[str, Path]


def topology_from_dict(data: dict) -> Topology:
    """Build a :class:`Topology` from its JSON form.

    Expected shape::

        {
          "clusters": [{"name": "c0", "nodes": 100,
                        "latency": 1e-5, "bandwidth": 8e7}, ...],
          "inter_links": [{"between": [0, 1],
                           "latency": 1.5e-4, "bandwidth": 1e8}, ...],
          "default_inter_link": {"latency": 1.5e-4, "bandwidth": 1e8},
          "mtbf": 86400.0            # optional; omit for no failures
        }
    """
    clusters = []
    for c in data["clusters"]:
        link = LinkSpec(latency=c.get("latency", 10e-6), bandwidth=c.get("bandwidth", 80e6))
        clusters.append(ClusterSpec(name=c["name"], nodes=c["nodes"], link=link))
    inter = {}
    for entry in data.get("inter_links", []):
        i, j = entry["between"]
        inter[(i, j)] = LinkSpec(latency=entry["latency"], bandwidth=entry["bandwidth"])
    default = data.get("default_inter_link")
    kwargs = {}
    if default is not None:
        kwargs["default_inter_link"] = LinkSpec(
            latency=default["latency"], bandwidth=default["bandwidth"]
        )
    return Topology(clusters=clusters, inter_links=inter, mtbf=data.get("mtbf"), **kwargs)


def topology_to_dict(topology: Topology) -> dict:
    return {
        "clusters": [
            {
                "name": c.name,
                "nodes": c.nodes,
                "latency": c.link.latency,
                "bandwidth": c.link.bandwidth,
            }
            for c in topology.clusters
        ],
        "inter_links": [
            {"between": list(pair), "latency": link.latency, "bandwidth": link.bandwidth}
            for pair, link in sorted(topology.inter_links.items())
        ],
        "default_inter_link": {
            "latency": topology.default_inter_link.latency,
            "bandwidth": topology.default_inter_link.bandwidth,
        },
        "mtbf": topology.mtbf,
    }


@dataclass
class ScenarioConfig:
    """A complete simulation scenario: the three files plus run options."""

    topology: Topology
    application: ApplicationConfig
    timers: TimersConfig
    protocol: str = "hc3i"
    protocol_options: dict = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.application.clusters) != self.topology.n_clusters:
            raise ValueError(
                f"application describes {len(self.application.clusters)} clusters "
                f"but topology has {self.topology.n_clusters}"
            )

    def to_dict(self) -> dict:
        return {
            "topology": topology_to_dict(self.topology),
            "application": self.application.to_dict(),
            "timers": self.timers.to_dict(),
            "protocol": self.protocol,
            "protocol_options": dict(self.protocol_options),
            "seed": self.seed,
        }

    def save(self, path: PathLike) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioConfig":
        return cls(
            topology=topology_from_dict(data["topology"]),
            application=ApplicationConfig.from_dict(data["application"]),
            timers=TimersConfig.from_dict(data["timers"]),
            protocol=data.get("protocol", "hc3i"),
            protocol_options=dict(data.get("protocol_options", {})),
            seed=data.get("seed", 0),
        )


def _read_json(path: PathLike) -> dict:
    with open(path) as fh:
        return json.load(fh)


def load_scenario(
    topology_file: PathLike,
    application_file: PathLike,
    timers_file: PathLike,
    protocol: str = "hc3i",
    protocol_options: Optional[dict] = None,
    seed: int = 0,
) -> ScenarioConfig:
    """Load the three separate config files, as the paper's simulator does.

    A single-file form is also supported: if ``topology_file`` points to a
    JSON document containing all three sections (``topology``,
    ``application``, ``timers``) the other two paths may equal it.
    """
    topo_data = _read_json(topology_file)
    if "topology" in topo_data and "application" in topo_data:
        return ScenarioConfig.from_dict(topo_data)
    return ScenarioConfig(
        topology=topology_from_dict(topo_data),
        application=ApplicationConfig.from_dict(_read_json(application_file)),
        timers=TimersConfig.from_dict(_read_json(timers_file)),
        protocol=protocol,
        protocol_options=dict(protocol_options or {}),
        seed=seed,
    )
