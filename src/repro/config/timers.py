"""Timers file: protocol delays.

Per the paper (§5.1): "the timers file contains the delays for the protocol
timers for each cluster (delays between two CLCs, garbage collection, ...)".

A ``clc_period`` of ``None`` means the timer is "set to infinite" (Fig. 7):
the cluster never takes unforced CLCs.  All delays are in seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["TimersConfig"]

MINUTE = 60.0
HOUR = 3600.0


def _normalize_period(value: Optional[float]) -> Optional[float]:
    if value is None:
        return None
    if isinstance(value, str):
        if value.lower() in ("inf", "infinite", "none"):
            return None
        value = float(value)
    if math.isinf(value):
        return None
    if value <= 0:
        raise ValueError(f"timer period must be positive or infinite: {value}")
    return value


@dataclass
class TimersConfig:
    """All protocol timers and delays.

    :param clc_periods: per-cluster delay between *unforced* CLCs
        (``None`` = infinite = never).
    :param gc_period: delay between garbage collections (``None`` = GC off).
    :param failure_detection_delay: time from a node crash to its detection
        (the paper leaves the detector out of scope; this models it as a
        fixed-latency oracle).
    :param checkpoint_restore_time: local time for a node to reinstall a
        saved state during rollback.
    :param node_repair_time: extra downtime of the crashed node before it can
        host its restored process again.
    :param node_state_size: size in bytes of one node's saved state; drives
        replication (stable storage) traffic and storage-cost accounting.
    :param gc_initiator_cluster: cluster whose leader runs the centralized
        garbage collector.
    :param detector: ``"oracle"`` (fixed-latency, the default) or
        ``"heartbeat"`` (simulated liveness probes whose detection latency
        emerges from the two heartbeat parameters).
    :param heartbeat_period: interval between liveness probes.
    :param heartbeat_timeout: silence needed to suspect a node; must
        exceed the period.
    """

    clc_periods: list = field(default_factory=list)
    gc_period: Optional[float] = None
    #: §3.5 "or when a node memory saturates": trigger a GC whenever a
    #: node's checkpoint storage (own states + replicas) exceeds this many
    #: bytes (None disables the pressure trigger)
    gc_memory_threshold: Optional[int] = None
    failure_detection_delay: float = 1.0
    checkpoint_restore_time: float = 0.5
    node_repair_time: float = 5.0
    node_state_size: int = 1_000_000
    gc_initiator_cluster: int = 0
    detector: str = "oracle"
    heartbeat_period: float = 1.0
    heartbeat_timeout: float = 3.5

    def __post_init__(self) -> None:
        self.clc_periods = [_normalize_period(p) for p in self.clc_periods]
        self.gc_period = _normalize_period(self.gc_period)
        if self.failure_detection_delay < 0:
            raise ValueError("failure_detection_delay must be >= 0")
        if self.checkpoint_restore_time < 0:
            raise ValueError("checkpoint_restore_time must be >= 0")
        if self.node_repair_time < 0:
            raise ValueError("node_repair_time must be >= 0")
        if self.node_state_size <= 0:
            raise ValueError("node_state_size must be positive")
        if self.gc_memory_threshold is not None and self.gc_memory_threshold <= 0:
            raise ValueError("gc_memory_threshold must be positive or None")
        if self.detector not in ("oracle", "heartbeat"):
            raise ValueError(f"unknown detector {self.detector!r}")
        if self.heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive")
        if self.heartbeat_timeout <= self.heartbeat_period:
            raise ValueError("heartbeat_timeout must exceed heartbeat_period")

    def clc_period_for(self, cluster: int) -> Optional[float]:
        """Unforced-CLC delay for a cluster (``None`` = infinite)."""
        if 0 <= cluster < len(self.clc_periods):
            return self.clc_periods[cluster]
        return None

    def to_dict(self) -> dict:
        return {
            "clc_periods": [p if p is not None else "inf" for p in self.clc_periods],
            "gc_period": self.gc_period if self.gc_period is not None else "inf",
            "gc_memory_threshold": self.gc_memory_threshold,
            "failure_detection_delay": self.failure_detection_delay,
            "checkpoint_restore_time": self.checkpoint_restore_time,
            "node_repair_time": self.node_repair_time,
            "node_state_size": self.node_state_size,
            "gc_initiator_cluster": self.gc_initiator_cluster,
            "detector": self.detector,
            "heartbeat_period": self.heartbeat_period,
            "heartbeat_timeout": self.heartbeat_timeout,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimersConfig":
        return cls(
            clc_periods=list(data.get("clc_periods", [])),
            gc_period=data.get("gc_period"),
            gc_memory_threshold=data.get("gc_memory_threshold"),
            failure_detection_delay=data.get("failure_detection_delay", 1.0),
            checkpoint_restore_time=data.get("checkpoint_restore_time", 0.5),
            node_repair_time=data.get("node_repair_time", 5.0),
            node_state_size=data.get("node_state_size", 1_000_000),
            gc_initiator_cluster=data.get("gc_initiator_cluster", 0),
            detector=data.get("detector", "oracle"),
            heartbeat_period=data.get("heartbeat_period", 1.0),
            heartbeat_timeout=data.get("heartbeat_timeout", 3.5),
        )
