"""Simulator configuration: the paper's three input files.

The original simulator is "configurable.  The user has to provide three
files: a topology file, an application file and a timer file" (§5.1).  This
subpackage provides the corresponding dataclasses, JSON/dict (de)serializers
and validation:

* :class:`~repro.network.topology.Topology` -- clusters, per-cluster SAN
  parameters, inter-cluster triangular link matrix, federation MTBF,
* :class:`~repro.config.application.ApplicationConfig` -- per-cluster mean
  computation times, communication-pattern probabilities and total run time,
* :class:`~repro.config.timers.TimersConfig` -- per-cluster delay between
  unforced CLCs, garbage-collection period, failure-detection delay and the
  other protocol delays.
"""

from repro.config.application import ApplicationConfig, ClusterAppSpec
from repro.config.timers import TimersConfig
from repro.config.loader import ScenarioConfig, load_scenario, topology_from_dict, topology_to_dict

__all__ = [
    "ApplicationConfig",
    "ClusterAppSpec",
    "ScenarioConfig",
    "TimersConfig",
    "load_scenario",
    "topology_from_dict",
    "topology_to_dict",
]
