"""Rollback-cost accounting.

Aggregates what a failure actually cost -- the quantity the protocol design
trades checkpoint overhead against:

* how many clusters rolled back per failure (HC3I's logs exist to keep this
  at 1 when possible; the global baseline always pays N; independent
  checkpointing can domino),
* lost work (node-seconds of computation redone),
* checkpoints discarded and messages replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.federation import Federation

__all__ = ["RollbackCostReport", "rollback_costs"]


@dataclass
class RollbackCostReport:
    failures: int = 0
    rollbacks: int = 0
    clusters_rolled_per_failure: list = field(default_factory=list)
    lost_work_node_seconds: float = 0.0
    lost_work_mean: float = 0.0
    clcs_discarded: int = 0
    replays: int = 0
    alerts: int = 0

    @property
    def mean_clusters_per_failure(self) -> float:
        if not self.clusters_rolled_per_failure:
            return 0.0
        return sum(self.clusters_rolled_per_failure) / len(
            self.clusters_rolled_per_failure
        )


def rollback_costs(federation: "Federation") -> RollbackCostReport:
    """Build the cost report from statistics and the protocol trace."""
    stats = federation.stats
    report = RollbackCostReport()

    def counter(name: str) -> int:
        return stats.counter(name).value if name in stats else 0

    report.failures = counter("rollback/failures")
    report.rollbacks = counter("rollback/total")
    report.clcs_discarded = counter("rollback/clcs_discarded")
    report.replays = counter("rollback/replays")
    report.alerts = counter("rollback/alerts_sent")
    if "rollback/lost_work" in stats:
        tally = stats.tally("rollback/lost_work")
        report.lost_work_node_seconds = tally.total
        report.lost_work_mean = tally.mean

    # Group rollbacks into failure episodes using the protocol trace.
    tracer = federation.tracer
    episode: set = set()
    episodes: list = []
    for record in tracer.records:
        if record.kind == "failure_detected":
            if episode:
                episodes.append(len(episode))
            episode = set()
        elif record.kind == "rollback":
            episode.add(record["cluster"])
        elif record.kind == "global_rollback":
            episode.update(range(federation.topology.n_clusters))
    if episode:
        episodes.append(len(episode))
    report.clusters_rolled_per_failure = episodes
    return report
