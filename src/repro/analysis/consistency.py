"""Consistency verification for HC3I federations.

The paper's §2.2 definition: a stored application state is *consistent* iff
there is "neither in-transit messages (sent but not received) nor
ghost-messages (received but not sent) in the set of process states
stored".  HC3I relaxes the in-transit half across clusters by logging at
the sender (a logged in-transit message is re-producible), so the checkable
federation-level invariants on the *surviving timeline* are:

* **no ghost**: every inter-cluster message delivered (and still visible in
  the receiver's surviving state) has a surviving send -- the sender did
  not roll back below the send's epoch;
* **no lost delivery**: every surviving send was delivered, is still
  queued/pending/in flight, or remains replayable from the sender's log;
* **no duplicate**: no message was delivered twice within one surviving
  timeline.

These checks need the sender logs intact, so verification runs are expected
to have garbage collection disabled (``gc_period=None``); with GC on, the
checker degrades gracefully by skipping pruned entries.

:func:`check_invariants` additionally asserts protocol-state invariants
that must hold whenever no 2PC round or recovery is in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.federation import Federation

__all__ = ["ConsistencyReport", "check_invariants", "verify_consistency"]


@dataclass
class ConsistencyReport:
    """Outcome of a federation-wide consistency check."""

    ok: bool = True
    violations: list = field(default_factory=list)
    checked_messages: int = 0
    delivered: int = 0
    pending: int = 0
    in_flight_allowance: int = 0

    def add(self, kind: str, detail: str) -> None:
        self.ok = False
        self.violations.append((kind, detail))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.ok:
            return (
                f"consistent: {self.checked_messages} messages checked, "
                f"{self.delivered} delivered, {self.pending} pending"
            )
        lines = [f"INCONSISTENT ({len(self.violations)} violations):"]
        lines += [f"  [{k}] {d}" for k, d in self.violations]
        return "\n".join(lines)


def verify_consistency(federation: "Federation", allow_in_flight: bool = True) -> ConsistencyReport:
    """Check the surviving timeline of an HC3I federation.

    :param allow_in_flight: treat undelivered-but-unacked messages as "in
        transit" rather than lost (use ``False`` only after the network has
        fully drained).
    """
    protocol = federation.protocol
    states = getattr(protocol, "cluster_states", None)
    if states is None:
        raise TypeError(
            f"consistency checking needs an HC3I-family protocol, got "
            f"{type(protocol).__name__}"
        )
    report = ConsistencyReport()

    # Index surviving sends by destination cluster.
    surviving_sends: dict = {}
    for cs in states:
        for entry in cs.sent_log:
            surviving_sends[entry.msg.msg_id] = entry

    # Receiver-side surviving deliveries / queues.
    for cs in states:
        # ghost check: every delivered id has a surviving send.
        for msg_id in cs.delivered_ids:
            report.checked_messages += 1
            entry = surviving_sends.get(msg_id)
            if entry is None:
                # The send may legitimately be GC-pruned; detect by
                # checking the sender's removal statistics.
                pruned_possible = any(
                    other.sent_log.removed_by_gc for other in states
                )
                if not pruned_possible:
                    report.add(
                        "ghost",
                        f"cluster {cs.index} delivered msg {msg_id} whose "
                        f"send did not survive",
                    )
            else:
                report.delivered += 1

    # Sender-side: every surviving send is accounted for at the receiver.
    for cs in states:
        pending_ids = set()
        deferred_ids = set()
        for node in federation.clusters[cs.index].nodes:
            agent = node.agent
            pending_ids |= {e.msg.msg_id for e in getattr(agent, "pending_force", ())}
            deferred_ids |= {m.msg_id for m in getattr(agent, "deferred_in", ())}
            deferred_ids |= {
                m.msg_id
                for m in getattr(node, "_held", ())
                if m.kind.is_app
            }

    for msg_id, entry in surviving_sends.items():
        dst_cs = states[entry.dest_cluster]
        if msg_id in dst_cs.delivered_ids:
            continue
        # Not delivered (yet): acceptable if still queued at the receiver,
        # in flight, or replayable (entry survives in the log by
        # construction -- it is where we found it).
        queued = False
        for node in federation.clusters[entry.dest_cluster].nodes:
            agent = node.agent
            if any(e.msg.msg_id == msg_id for e in getattr(agent, "pending_force", ())):
                queued = True
            if any(m.msg_id == msg_id for m in getattr(agent, "deferred_in", ())):
                queued = True
            if any(m.msg_id == msg_id for m in getattr(node, "_held", ())):
                queued = True
        if queued:
            report.pending += 1
        elif allow_in_flight:
            report.in_flight_allowance += 1
        else:
            report.add(
                "lost",
                f"msg {msg_id} (cluster {entry.msg.src.cluster} -> "
                f"{entry.dest_cluster}) neither delivered nor queued",
            )
    return report


def check_invariants(federation: "Federation") -> list:
    """Protocol-state invariants outside 2PC/recovery windows.

    Returns a list of violation strings (empty = all good):

    * the cluster's SN equals its DDV own-entry,
    * the newest stored CLC (if the state is clean) carries SN = cluster SN,
    * stored CLC SNs strictly increase and DDVs are entrywise monotone,
    * the DDV never references an SN larger than the peer ever committed.
    """
    protocol = federation.protocol
    states = getattr(protocol, "cluster_states", None)
    if states is None:
        return []
    problems = []
    for cs in states:
        if cs.ddv[cs.index] != cs.sn:
            problems.append(
                f"c{cs.index}: ddv own entry {cs.ddv[cs.index]} != sn {cs.sn}"
            )
        records = list(cs.store)
        for a, b in zip(records, records[1:]):
            if b.sn <= a.sn:
                problems.append(f"c{cs.index}: store SNs not increasing at {b.sn}")
            if not b.ddv.dominates(a.ddv):
                problems.append(
                    f"c{cs.index}: DDV not monotone between sn {a.sn} and {b.sn}"
                )
        if records and not cs.recovering:
            last = records[-1]
            if cs.sn != last.sn:
                problems.append(
                    f"c{cs.index}: sn {cs.sn} != last stored CLC sn {last.sn}"
                )
    return problems
