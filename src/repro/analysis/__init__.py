"""Verification and reporting utilities.

* :mod:`~repro.analysis.consistency` -- checks the paper's §2.2
  consistency definition ("neither in-transit messages ... nor
  ghost-messages") on a finished or paused federation, plus protocol
  invariants (SN/DDV agreement, store monotonicity),
* :mod:`~repro.analysis.rollback_cost` -- lost-work / rollback-depth
  accounting extracted from statistics and traces,
* :mod:`~repro.analysis.reporting` -- renders the paper's tables and
  figure series as text.
"""

from repro.analysis.consistency import (
    ConsistencyReport,
    check_invariants,
    verify_consistency,
)
from repro.analysis.rollback_cost import RollbackCostReport, rollback_costs
from repro.analysis.reporting import format_series, format_table
from repro.analysis.timeline import render_timeline
from repro.analysis.plots import ascii_plot
from repro.analysis.describe import describe_federation

__all__ = [
    "ConsistencyReport",
    "RollbackCostReport",
    "ascii_plot",
    "check_invariants",
    "describe_federation",
    "format_series",
    "format_table",
    "render_timeline",
    "rollback_costs",
    "verify_consistency",
]
