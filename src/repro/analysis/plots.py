"""Dependency-free ASCII plots for the paper's figures.

The benchmarks print the figure *data*; this module draws it, so a
terminal user sees the same shapes as the paper's graphs (decay of
Figure 6, flat forced line, Figure 9's fast growth) without matplotlib.

One character cell per (column, row); multiple series share the canvas
with distinct markers and a legend.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    xs: Sequence[float],
    series: dict,
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    x_label: str = "x",
) -> str:
    """Scatter-plot ``series`` (name -> y values) against ``xs``.

    Values are linearly mapped onto a ``width`` x ``height`` character
    canvas; y axis is labelled with min/max, x axis with first/last.
    """
    if not xs:
        raise ValueError("nothing to plot: xs is empty")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(xs)} xs"
            )
    if width < 8 or height < 4:
        raise ValueError("canvas too small")

    all_y = [float(y) for ys in series.values() for y in ys]
    y_min = min([*all_y, 0.0])
    y_max = max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(min(xs)), float(max(xs))
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return round((x - x_min) / (x_max - x_min) * (width - 1))

    def row(y: float) -> int:
        return (height - 1) - round((y - y_min) / (y_max - y_min) * (height - 1))

    for idx, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in zip(xs, ys):
            r, c = row(float(y)), col(float(x))
            # later series overwrite on collision; acceptable for a sketch
            grid[r][c] = marker

    y_top = f"{y_max:g}"
    y_bot = f"{y_min:g}"
    margin = max(len(y_top), len(y_bot)) + 1
    lines = []
    if title:
        lines.append(title)
    for r, cells in enumerate(grid):
        if r == 0:
            label = y_top
        elif r == height - 1:
            label = y_bot
        else:
            label = ""
        lines.append(f"{label:>{margin}} |" + "".join(cells))
    lines.append(" " * margin + "-+" + "-" * width)
    x_left, x_right = f"{x_min:g}", f"{x_max:g}"
    axis = f"{x_left}{x_label:^{max(1, width - len(x_left) - len(x_right))}}{x_right}"
    lines.append(" " * (margin + 2) + axis[: width + 2])
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)
