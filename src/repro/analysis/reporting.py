"""Text rendering of tables and figure series (paper style).

The benchmark harness prints "the same rows/series the paper reports":
:func:`format_table` renders aligned ASCII tables (Tables 1-3) and
:func:`format_series` renders x/y series the paper plots (Figures 6-9),
one row per x with all series side by side.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["format_series", "format_table"]


def _cell(value) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Aligned ASCII table."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.rjust(w) for v, w in zip(values, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_series(
    x_label: str,
    xs: Sequence,
    series: dict,
    title: Optional[str] = None,
) -> str:
    """Render figure data: one row per x value, one column per series."""
    headers = [x_label, *series]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x, *(series[name][i] for name in series)])
    return format_table(headers, rows, title=title)
