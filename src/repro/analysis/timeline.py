"""ASCII rendering of an execution timeline (Figure 5 style).

The paper's Figure 5 shows per-cluster lanes with CLC boxes (DDVs
embedded), inter-cluster message arrows and the rollback cascade.  This
module reconstructs that picture from the trace: one column per cluster,
one row per event, chronological.

Requires the federation to have run with ``TraceLevel.MESSAGE`` (or
higher) so message sends/deliveries are available; protocol-level events
(CLC commits, rollbacks, alerts, GC) render at ``TraceLevel.PROTOCOL``.

Example output::

         time  C0                    C1                    C2
        0.000  [CLC 1 (1,0,0)]
        0.000                        [CLC 1 (0,1,0)]
       10.000  m#17 ->C1
       10.001                        [CLC 2* (1,2,0)]
       10.001                        deliver m#17
       80.964                        ROLLBACK -> sn 4
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.federation import Federation
    from repro.sim.trace import TraceRecord

__all__ = ["render_timeline"]

_COLUMN_WIDTH = 26


def _cluster_of(record: "TraceRecord") -> Optional[int]:
    if "cluster" in record.fields:
        return record["cluster"]
    if "src" in record.fields:  # send events: attribute to the sender
        return int(str(record["src"]).split("n")[0][1:])
    return None


def _describe(record: "TraceRecord") -> Optional[str]:
    kind = record.kind
    f = record.fields
    if kind == "clc_commit":
        star = "*" if f.get("cause") == "forced" else ""
        ddv = ",".join(str(v) for v in f.get("ddv", ()))
        return f"[CLC {f['sn']}{star} ({ddv})]"
    if kind == "send":
        dst_cluster = str(f["dst"]).split("n")[0]
        src_cluster = str(f["src"]).split("n")[0]
        if dst_cluster == src_cluster:
            return None  # intra-cluster traffic clutters the picture
        return f"m#{f['msg_id']} ->{dst_cluster.upper()}"
    if kind == "inter_delivered":
        return f"deliver m#{f['msg_id']} (ack {f['ack_sn']})"
    if kind == "force_requested":
        return f"m#{f['msg_id']} forces CLC"
    if kind == "rollback":
        return f"ROLLBACK -> sn {f['to_sn']}"
    if kind == "alert_received":
        return f"alert(c{f['faulty']}, sn {f['sn']})"
    if kind == "replayed":
        return f"replay {f['count']} msg(s) ->c{f['dest']}"
    if kind == "failure_detected":
        return f"FAULT node {f['node']}"
    if kind == "gc_prune":
        return f"GC {f['before']}->{f['after']} CLCs"
    if kind == "ghost_dropped":
        return f"drop ghost m#{f['msg_id']}"
    return None


def render_timeline(
    federation: "Federation",
    t0: float = 0.0,
    t1: Optional[float] = None,
    column_width: int = _COLUMN_WIDTH,
) -> str:
    """Render the federation's trace as per-cluster lanes."""
    n = federation.topology.n_clusters
    header = f"{'time':>12}  " + "".join(
        f"C{c}".ljust(column_width) for c in range(n)
    )
    lines = [header, "-" * len(header)]
    for record in federation.tracer.records:
        if record.time < t0 or (t1 is not None and record.time > t1):
            continue
        cluster = _cluster_of(record)
        if cluster is None or not (0 <= cluster < n):
            continue
        text = _describe(record)
        if text is None:
            continue
        cells = [""] * n
        cells[cluster] = text[: column_width - 1]
        lines.append(
            f"{record.time:>12.3f}  "
            + "".join(cell.ljust(column_width) for cell in cells)
        )
    return "\n".join(lines)
