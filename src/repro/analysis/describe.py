"""Human-readable protocol state dumps (debugging / examples).

``describe_federation`` prints what an operator would ask the system:
per-cluster SN, DDV, stored CLCs with their stamps, sender-log occupancy,
incarnation epoch and recovery status.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.reporting import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.federation import Federation

__all__ = ["describe_federation"]


def describe_federation(federation: "Federation", include_clcs: bool = True) -> str:
    """Render the current protocol state of every cluster."""
    protocol = federation.protocol
    states = getattr(protocol, "cluster_states", None)
    lines = [
        f"protocol={federation.protocol_name} "
        f"t={federation.sim.now:g}s "
        f"events={federation.sim.processed}"
    ]
    if states is None:
        for c in range(federation.topology.n_clusters):
            lines.append(f"  cluster {c}: {protocol.cluster_summary(c)}")
        return "\n".join(lines)

    rows = []
    for cs in states:
        rows.append(
            (
                f"c{cs.index}",
                cs.sn,
                str(cs.ddv_tuple()),
                len(cs.store),
                len(cs.sent_log),
                cs.rollback_epoch,
                "recovering" if cs.recovering else "ok",
            )
        )
    lines.append(
        format_table(
            ["cluster", "SN", "DDV", "stored CLCs", "log entries", "epoch", "state"],
            rows,
        )
    )
    if include_clcs:
        for cs in states:
            if not len(cs.store):
                continue
            clc_rows = [
                (
                    r.sn,
                    r.cause.value,
                    str(r.ddv.as_tuple()),
                    f"{r.time:g}",
                    len(r.queued),
                )
                for r in cs.store
            ]
            lines.append(
                format_table(
                    ["SN", "cause", "DDV", "time", "queued msgs"],
                    clc_rows,
                    title=f"-- cluster {cs.index} stored CLCs --",
                )
            )
    return "\n".join(lines)
