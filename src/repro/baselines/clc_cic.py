"""Logical-clock-driven communication-induced checkpointing (CIC).

The index-based CIC family of Garcia, Vieira & Buzato's rollback-history
survey (arXiv:1702.06167): clusters piggyback a Lamport-style checkpoint
index (logical clock) on inter-cluster messages, and the *forced-checkpoint
predicate* decides -- from the piggybacked clock alone -- whether a
checkpoint must be taken before delivery.  Two predicates from the
taxonomy are implemented, selected by ``protocol_options={"predicate": _}``:

``"bcs"``
    Briatico-Ciuffoletti-Simoncini: force a checkpoint (indexed ``m.lc``)
    whenever a message arrives with ``m.lc > lc`` -- the classic, safest
    member of the family.
``"bcs-aftersend"``
    the after-send refinement: force only when ``m.lc > lc`` *and* the
    cluster has sent an inter-cluster message since its last checkpoint;
    otherwise just adopt the larger clock without checkpointing (no
    send since the checkpoint means no Z-pattern can close through us).

Architecture mirrors HC3I's hierarchy -- intra-cluster two-phase commit,
sender-side optimistic logging of inter-cluster messages, rollback epochs
against ghosts -- but the DDV/SN dependency test is replaced by the logical
clock.  Recovery rolls the faulty cluster to its last checkpoint and runs
a *ghost-only* fixpoint (:func:`ghost_line_targets`): receivers of erased
sends roll back to the forced checkpoint the predicate placed just before
the delivery, and in-transit messages are replayed from the sender logs
instead of rolling senders back.  How far that fixpoint descends is
exactly what the predicate controls, which is what the protocol tournament
measures.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.msglog import MessageLog
from repro.core.protocol import BaseProtocol, NodeAgent, register_protocol
from repro.network.message import Message, MessageKind, NodeId
from repro.sim.timers import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["ClcCicProtocol", "ghost_line_targets"]

CONTROL_SIZE = 64
#: piggyback bytes on an inter-cluster application message (lc + ordinal + epoch)
PIGGYBACK_SIZE = 16

PREDICATES = ("bcs", "bcs-aftersend")


def ghost_line_targets(
    checkpoints: Sequence[Sequence[int]],
    edges: Sequence[tuple],
    failed: int,
) -> list:
    """Recovery line under sender-side logging: only ghosts force rollback.

    :param checkpoints: per cluster, the sorted list of stored checkpoint
        ordinals (a delivery at ordinal ``e`` survives a restore to ``s``
        iff ``e < s``).
    :param edges: delivery records ``(src, send_ordinal, dst,
        recv_ordinal)``.
    :param failed: the faulty cluster.
    :returns: per-cluster restored ordinal (``None`` = no rollback).

    Unlike :func:`~repro.baselines.independent.domino_targets`, an
    in-transit message (send kept, receive erased) does not lower the
    sender: the sender log replays it.  Only the ghost direction (receive
    kept, send erased) propagates, so the fixpoint is monotone in the
    placement of forced checkpoints -- the CIC predicate's job.
    """
    n = len(checkpoints)
    INF = float("inf")
    target: list = [INF] * n
    if not checkpoints[failed]:
        raise ValueError(f"faulty cluster {failed} has no checkpoint")
    target[failed] = checkpoints[failed][-1]

    def lower(cluster: int, epoch: int) -> bool:
        best = 0
        for number in checkpoints[cluster]:
            if number <= epoch:
                best = number
            else:
                break
        if target[cluster] == INF or best < target[cluster]:
            target[cluster] = best
            return True
        return False

    changed = True
    while changed:
        changed = False
        for src, send_ord, dst, recv_ord in edges:
            sent_kept = target[src] == INF or send_ord < target[src]
            recv_kept = target[dst] == INF or recv_ord < target[dst]
            if recv_kept and not sent_kept:
                changed |= lower(dst, recv_ord)
    return [None if t == INF else int(t) for t in target]


@dataclass(frozen=True)
class CicPiggyback:
    """(logical clock, checkpoint ordinal, rollback epoch) at send time."""

    lc: int
    ordinal: int
    epoch: int


@dataclass(frozen=True)
class CicCheckpoint:
    """One committed cluster checkpoint."""

    ordinal: int              #: per-cluster count (1, 2, ...)
    index: int                #: BCS logical-clock index (strictly increasing)
    time: float
    cause: str                #: "initial" | "timer" | "forced"
    delivered_ids: frozenset  #: inter-cluster deliveries captured


class _CicClusterState:
    """Shared per-cluster CIC state."""

    def __init__(self, index: int, n_clusters: int):
        self.index = index
        self.n_clusters = n_clusters
        self.lc = 0                       #: logical clock = last checkpoint index
        self.ordinal = 0                  #: checkpoints committed so far
        self.checkpoints: list = []
        self.delivered_ids: set = set()
        self.sent_log = MessageLog(index)
        self.sent_since_ckpt = False
        self.recovering = False
        self.rollback_epoch = 0
        #: per source cluster: [(new_epoch, restored_ordinal)] rollback cuts
        self.ghost_cuts: list = [[] for _ in range(n_clusters)]
        # 2PC round state (the cluster leader coordinates)
        self.phase_collecting = False
        self.acks_pending: set = set()
        self.round_cause = "timer"
        self.round_target = 0
        self.pending_request = False
        self.pending_cause = "timer"
        self.pending_target = 0

    def record_cut(self, src: int, restored_ordinal: int, new_epoch: int) -> None:
        self.ghost_cuts[src].append((new_epoch, restored_ordinal))

    def is_ghost(self, src: int, piggy: CicPiggyback) -> bool:
        for new_epoch, restored_ordinal in self.ghost_cuts[src]:
            if new_epoch > piggy.epoch and restored_ordinal <= piggy.ordinal:
                return True
        return False


@register_protocol("clc-cic")
class ClcCicProtocol(BaseProtocol):
    """Index-based CIC on the hierarchical substrate."""

    def __init__(self, federation, options: Optional[dict] = None):
        super().__init__(federation, options)
        self.predicate = self.options.get("predicate", "bcs")
        if self.predicate not in PREDICATES:
            raise ValueError(
                f"unknown CIC predicate {self.predicate!r}; "
                f"choose from {PREDICATES}"
            )
        n = federation.topology.n_clusters
        self.n_clusters = n
        self.states = [_CicClusterState(i, n) for i in range(n)]
        #: delivery records (src, send_ordinal, dst, recv_ordinal)
        self.edges: list = []
        self.timers_: list = []
        for i in range(n):
            period = federation.timers.clc_period_for(i)
            self.timers_.append(
                PeriodicTimer(
                    self.sim,
                    period,
                    functools.partial(self._timer_fired, i),
                    name=f"cic-c{i}",
                )
            )
        self._agents: dict = {}

    # ------------------------------------------------------------------
    def make_agent(self, node: "Node") -> "CicAgent":
        agent = CicAgent(self, node)
        self._agents[node.id] = agent
        return agent

    def start(self) -> None:
        # Initial checkpoints commit directly at t=0 (nothing was delivered
        # yet), so a recovery line exists before the first 2PC completes.
        for i, st in enumerate(self.states):
            st.ordinal = 1
            st.lc = 1
            st.checkpoints.append(
                CicCheckpoint(1, 1, self.sim.now, "initial", frozenset())
            )
            self.stats.counter(f"clc/c{i}/initial").inc()
            self.stats.counter(f"clc/c{i}/total").inc()
            self.tracer.protocol("clc_commit", cluster=i, sn=1, cause="initial", lc=1)
        for timer in self.timers_:
            timer.start()

    def request_checkpoint(self, cluster: int) -> None:
        """Programmatic basic checkpoint (tests, examples)."""
        self._initiate(cluster, cause="timer")

    # ------------------------------------------------------------------
    # intra-cluster two-phase commit
    # ------------------------------------------------------------------
    def _timer_fired(self, cluster: int) -> None:
        st = self.states[cluster]
        if st.phase_collecting or st.recovering or st.pending_request:
            return
        self._initiate(cluster, cause="timer")

    def _initiate(self, cluster: int, cause: str, target: int = 0) -> None:
        st = self.states[cluster]
        if st.recovering:
            return
        if st.phase_collecting:
            # Accumulate; the immediately following round serves it.
            st.pending_request = True
            st.pending_target = max(st.pending_target, target)
            if cause == "forced":
                st.pending_cause = "forced"
            return
        st.phase_collecting = True
        st.round_cause = cause
        st.round_target = target
        runtime = self.federation.clusters[cluster]
        leader = runtime.leader
        self._agents[leader.id].freeze()
        self._agents[leader.id].save_state()
        st.acks_pending = {n.id for n in runtime.nodes if n.id != leader.id}
        for n in runtime.nodes:
            if n.id != leader.id:
                leader.send_raw(n.id, MessageKind.CLC_REQUEST, size=CONTROL_SIZE)
        if not st.acks_pending:
            self._commit(cluster)

    def on_ack(self, cluster: int, msg: Message) -> None:
        st = self.states[cluster]
        if not st.phase_collecting:
            return  # stale ack from an aborted round
        st.acks_pending.discard(msg.src)
        if not st.acks_pending:
            self._commit(cluster)

    def _commit(self, cluster: int) -> None:
        st = self.states[cluster]
        st.ordinal += 1
        st.lc = max(st.lc + 1, st.round_target)
        record = CicCheckpoint(
            ordinal=st.ordinal,
            index=st.lc,
            time=self.sim.now,
            cause=st.round_cause,
            delivered_ids=frozenset(st.delivered_ids),
        )
        st.checkpoints.append(record)
        st.sent_since_ckpt = False
        st.phase_collecting = False
        cause = st.round_cause
        self.stats.counter(f"clc/c{cluster}/{cause}").inc()
        self.stats.counter(f"clc/c{cluster}/total").inc()
        self.stats.gauge(f"clc/c{cluster}/stored").set(len(st.checkpoints))
        self.tracer.protocol(
            "clc_commit", cluster=cluster, sn=st.ordinal, cause=cause, lc=st.lc
        )
        runtime = self.federation.clusters[cluster]
        leader = runtime.leader
        for n in runtime.nodes:
            if n.id != leader.id:
                leader.send_raw(n.id, MessageKind.CLC_COMMIT, size=CONTROL_SIZE)
        self._agents[leader.id].apply_commit()
        self.timers_[cluster].reset()
        if st.pending_request and not st.recovering:
            st.pending_request = False
            target, st.pending_target = st.pending_target, 0
            cause, st.pending_cause = st.pending_cause, "timer"
            self.sim.schedule(0.0, self._begin_if_pending, cluster, cause, target)

    def _begin_if_pending(self, cluster: int, cause: str, target: int) -> None:
        st = self.states[cluster]
        if not st.phase_collecting and not st.recovering:
            self._initiate(cluster, cause=cause, target=target)

    def _abort_round(self, cluster: int) -> None:
        st = self.states[cluster]
        st.phase_collecting = False
        st.acks_pending = set()
        st.pending_request = False
        st.pending_target = 0
        st.pending_cause = "timer"

    # ------------------------------------------------------------------
    # dependency bookkeeping
    # ------------------------------------------------------------------
    def record_delivery(self, src: int, send_ordinal: int, dst: int) -> None:
        self.edges.append((src, send_ordinal, dst, self.states[dst].ordinal))

    # ------------------------------------------------------------------
    # failure: ghost fixpoint + replay
    # ------------------------------------------------------------------
    def on_failure_detected(self, node: "Node") -> None:
        failed = node.id.cluster
        self.tracer.protocol(
            "failure_detected", cluster=failed, node=node.id.node
        )
        checkpoint_ordinals = [
            [c.ordinal for c in st.checkpoints] for st in self.states
        ]
        targets = ghost_line_targets(checkpoint_ordinals, self.edges, failed)
        fed = self.federation
        rolled = 0
        self.stats.counter("rollback/failures").inc()
        for cluster, target_ord in enumerate(targets):
            if target_ord is None:
                continue
            rolled += 1
            st = self.states[cluster]
            record = next(
                c for c in st.checkpoints if c.ordinal == target_ord
            )
            depth = st.ordinal - target_ord
            self.stats.counter("rollback/total").inc()
            self.stats.tally("cic/rollback_depth").record(depth)
            self._abort_round(cluster)
            st.checkpoints = [
                c for c in st.checkpoints if c.ordinal <= target_ord
            ]
            st.ordinal = target_ord
            st.lc = record.index
            st.delivered_ids = set(record.delivered_ids)
            st.sent_since_ckpt = False
            st.sent_log.drop_sent_after(target_ord)
            st.recovering = True
            st.rollback_epoch += 1
            self.stats.gauge(f"clc/c{cluster}/stored").set(len(st.checkpoints))
            self.tracer.protocol(
                "rollback", cluster=cluster, to_sn=target_ord, cause="ghost-line"
            )
            for other in range(self.n_clusters):
                if other != cluster:
                    self.states[other].record_cut(
                        cluster, target_ord, st.rollback_epoch
                    )
            for agent in (self._agents[n.id] for n in fed.clusters[cluster].nodes):
                agent.reset_volatile()
            fed.on_cluster_rollback(
                cluster,
                record.time,
                node if cluster == failed else None,
            )
        self.stats.counter("rollback/clusters_rolled").inc(rolled)
        # Survivors drop queued input whose sends were just erased.
        for cluster, target_ord in enumerate(targets):
            if target_ord is None:
                for n in fed.clusters[cluster].nodes:
                    self._agents[n.id].drop_ghost_input()
        # Prune delivery records that reference erased events; a replayed
        # message records a fresh edge when it is re-delivered.
        kept = []
        for src, send_ord, dst, recv_ord in self.edges:
            ts, td = targets[src], targets[dst]
            if (ts is None or send_ord < ts) and (td is None or recv_ord < td):
                kept.append((src, send_ord, dst, recv_ord))
        self.edges = kept
        # Replay surviving logged messages the rolled clusters lost.
        for cluster, target_ord in enumerate(targets):
            if target_ord is not None:
                self._replay_into(cluster, target_ord)

        timers = fed.timers
        delay = timers.checkpoint_restore_time + timers.node_repair_time
        delay += fed.topology.delay(node.id, node.id, timers.node_state_size)
        self.sim.schedule(delay, self._complete_recovery, targets, node)

    def _replay_into(self, dest: int, restored_ordinal: int) -> None:
        """Re-send surviving logged messages ``dest`` no longer has."""
        restored_ids = self.states[dest].delivered_ids
        for src_state in self.states:
            if src_state.index == dest:
                continue
            entries = src_state.sent_log.entries_to_replay(dest, restored_ordinal)
            for entry in entries:
                if entry.msg.msg_id in restored_ids:
                    continue
                sender = self.federation.node(entry.msg.src)
                if not sender.up:
                    continue
                entry.replays += 1
                self.stats.counter("rollback/replays").inc()
                self.federation.fabric.send(entry.msg.clone_for_replay())

    def _complete_recovery(self, targets: list, failed_node: "Node") -> None:
        fed = self.federation
        if not failed_node.up:
            failed_node.recover()
        for cluster, target_ord in enumerate(targets):
            if target_ord is None:
                continue
            self.states[cluster].recovering = False
            fed.restart_cluster_apps(cluster)
            fed.notify_recovery_complete(cluster)
            self.timers_[cluster].reset()
        for cluster, target_ord in enumerate(targets):
            if target_ord is not None:
                for n in fed.clusters[cluster].nodes:
                    self._agents[n.id].process_deferred()

    # ------------------------------------------------------------------
    def cluster_summary(self, cluster: int) -> dict:
        st = self.states[cluster]
        stats = self.stats

        def count(name: str) -> int:
            full = f"clc/c{cluster}/{name}"
            return stats.counter(full).value if full in stats else 0

        return {
            "sn": st.ordinal,
            "lc": st.lc,
            "clc_initial": count("initial"),
            "clc_unforced": count("timer"),
            "clc_forced": count("forced"),
            "clc_total": count("total"),
            "clc_stored": len(st.checkpoints),
            "log_entries": len(st.sent_log),
            "log_bytes": st.sent_log.bytes,
            "rollback_epoch": st.rollback_epoch,
        }


class CicAgent(NodeAgent):
    """Per-node endpoint: clock piggyback, forced-CLC predicate, logging."""

    def __init__(self, protocol: ClcCicProtocol, node: "Node"):
        super().__init__(protocol, node)
        self.protocol: ClcCicProtocol = protocol
        self.frozen = False
        self.queued_out: list = []
        self.deferred_in: list = []
        #: messages whose forced checkpoint has not committed yet
        self.pending: list = []

    @property
    def state(self) -> _CicClusterState:
        return self.protocol.states[self.node.id.cluster]

    # -- sending ---------------------------------------------------------
    def app_send(self, dst: NodeId, size: int, payload: Optional[dict] = None) -> None:
        if not self.node.up:
            return
        if self.frozen or self.state.recovering:
            self.queued_out.append((dst, size, payload))
            return
        self._send_now(dst, size, payload)

    def _send_now(self, dst: NodeId, size: int, payload: Optional[dict]) -> None:
        st = self.state
        piggyback = None
        if dst.cluster != st.index:
            piggyback = CicPiggyback(
                lc=st.lc, ordinal=st.ordinal, epoch=st.rollback_epoch
            )
            size += PIGGYBACK_SIZE
        msg = Message(
            src=self.node.id, dst=dst, kind=MessageKind.APP, size=size,
            payload=payload or {}, piggyback=piggyback,
        )
        if piggyback is not None:
            st.sent_log.add(msg, send_sn=st.ordinal)
            st.sent_since_ckpt = True
            self.protocol.stats.gauge(f"cic/c{st.index}/log_entries").set(
                len(st.sent_log)
            )
        self.protocol.federation.fabric.send(msg)

    # -- receiving ---------------------------------------------------------
    def on_receive(self, msg: Message) -> None:
        kind = msg.kind
        cluster = self.node.id.cluster
        if kind is MessageKind.APP or kind is MessageKind.REPLAY:
            if msg.inter_cluster:
                self._on_inter_arrival(msg)
            else:
                self.node.deliver_app(msg)
        elif kind is MessageKind.CLC_REQUEST:
            self.freeze()
            self.save_state()
            leader = self.protocol.federation.clusters[cluster].leader
            self.node.send_raw(leader.id, MessageKind.CLC_ACK, size=CONTROL_SIZE)
        elif kind is MessageKind.CLC_ACK:
            self.protocol.on_ack(cluster, msg)
        elif kind is MessageKind.CLC_COMMIT:
            self.apply_commit()
        elif kind is MessageKind.CLC_INITIATE:
            self.protocol._initiate(
                cluster, cause="forced", target=msg.payload.get("target", 0)
            )
        elif kind is MessageKind.INTER_ACK:
            self.state.sent_log.ack(msg.payload["msg_id"], msg.payload["ack_sn"])
        elif kind is MessageKind.REPLICA:
            pass
        else:  # pragma: no cover - defensive
            raise ValueError(f"clc-cic protocol cannot handle {kind}")

    def _on_inter_arrival(self, msg: Message) -> None:
        st = self.state
        piggy: CicPiggyback = msg.piggyback
        if st.is_ghost(msg.src.cluster, piggy):
            self.protocol.stats.counter("cic/ghosts_dropped").inc()
            return
        if self.frozen or st.recovering:
            self.deferred_in.append(msg)
            return
        if msg.msg_id in st.delivered_ids:
            self.protocol.stats.counter("cic/duplicates").inc()
            self._send_ack(msg)
            return
        if piggy.lc > st.lc:
            if self.protocol.predicate == "bcs-aftersend" and not st.sent_since_ckpt:
                # No send since the last checkpoint: adopting the clock
                # without a checkpoint cannot close a Z-pattern through us.
                st.lc = piggy.lc
                self.protocol.stats.counter("cic/forced_skipped").inc()
                self._deliver(msg)
                return
            # BCS: checkpoint (indexed m.lc) before delivery.
            self.pending.append((msg, piggy.lc))
            self.protocol.stats.counter("cic/forces_requested").inc()
            self._request_force(piggy.lc)
            return
        self._deliver(msg)

    def _request_force(self, target: int) -> None:
        cluster = self.node.id.cluster
        leader = self.protocol.federation.clusters[cluster].leader
        if self.node.id == leader.id:
            self.protocol._initiate(cluster, cause="forced", target=target)
        else:
            self.node.send_raw(
                leader.id,
                MessageKind.CLC_INITIATE,
                size=CONTROL_SIZE,
                payload={"target": target},
            )

    def _deliver(self, msg: Message) -> None:
        st = self.state
        st.delivered_ids.add(msg.msg_id)
        self.protocol.record_delivery(
            msg.src.cluster, msg.piggyback.ordinal, st.index
        )
        self.node.deliver_app(msg)
        self._send_ack(msg)

    def _send_ack(self, msg: Message) -> None:
        # ack_sn = ordinal of the first checkpoint that captures this
        # delivery; the replay filter compares it to the restored ordinal.
        self.node.send_raw(
            msg.src,
            MessageKind.INTER_ACK,
            size=CONTROL_SIZE,
            payload={"msg_id": msg.msg_id, "ack_sn": self.state.ordinal + 1},
        )

    # -- 2PC participant ---------------------------------------------------
    def freeze(self) -> None:
        self.frozen = True

    def save_state(self) -> None:
        cluster = self.protocol.federation.clusters[self.node.id.cluster]
        n = cluster.size
        if n > 1:
            neighbour = cluster.nodes[(self.node.id.node + 1) % n]
            self.node.send_raw(
                neighbour.id,
                MessageKind.REPLICA,
                size=self.protocol.federation.timers.node_state_size,
            )

    def apply_commit(self) -> None:
        self.frozen = False
        queued, self.queued_out = self.queued_out, []
        for dst, size, payload in queued:
            self._send_now(dst, size, payload)
        self.evaluate_pending()
        self.process_deferred()

    def evaluate_pending(self) -> None:
        st = self.state
        still: list = []
        for msg, target in self.pending:
            if st.lc >= target:
                if msg.msg_id not in st.delivered_ids:
                    self._deliver(msg)
            else:
                still.append((msg, target))
        self.pending = still

    def process_deferred(self) -> None:
        while self.deferred_in and not self.frozen and not self.state.recovering:
            self._on_inter_arrival(self.deferred_in.pop(0))

    # -- failure bookkeeping ----------------------------------------------
    def drop_ghost_input(self) -> None:
        st = self.state
        self.pending = [
            (m, t) for m, t in self.pending
            if not st.is_ghost(m.src.cluster, m.piggyback)
        ]
        self.deferred_in = [
            m for m in self.deferred_in
            if not st.is_ghost(m.src.cluster, m.piggyback)
        ]

    def reset_volatile(self) -> None:
        self.frozen = False
        self.queued_out = []
        self.deferred_in = []
        self.pending = []

    def on_node_failed(self) -> None:
        self.queued_out = []
        self.frozen = False
