"""Baseline checkpoint/recovery protocols HC3I is compared against.

The paper positions HC3I against three families (§2.2, §6) and one strawman
(§3.2 / Fig. 4); all four are implemented on the same substrate so the
benchmark harness can swap them by name:

* ``global-coordinated`` -- one federation-wide two-phase commit ("The
  large number of nodes and network performance between clusters do not
  allow a global synchronization"): every checkpoint freezes the whole
  federation across WAN latencies, and any failure rolls every cluster
  back.
* ``independent`` -- fully uncoordinated cluster checkpoints with
  dependency tracking and recovery-line computation at rollback time:
  exhibits the domino effect the paper warns about.
* ``pessimistic-log`` -- MPICH-V-style "log all communications" under the
  piecewise-deterministic assumption: only the crashed node rolls back, at
  the price of logging every message.
* ``cic-always`` -- HC3I without the SN/DDV test: a CLC is forced on
  *every* inter-cluster message, including Fig. 4's useless CLC3.

Transitive dependency tracking (``hc3i-transitive``) is HC3I with the whole
DDV piggybacked instead of the SN (§7 future work).

Two post-paper families extend the tournament beyond the paper's baselines:

* ``min-process`` -- Tuli & Kumar-style minimum-process coordinated
  checkpointing: each round synchronizes only the transitive closure of
  clusters that communicated since their last checkpoint, instead of the
  whole federation.
* ``clc-cic`` -- index-based communication-induced checkpointing with a
  pluggable forced-checkpoint predicate (``bcs`` or ``bcs-aftersend``)
  from the Garcia/Vieira/Buzato taxonomy.
"""

from repro.baselines.cic_always import CicAlwaysProtocol, Hc3iTransitiveProtocol
from repro.baselines.clc_cic import ClcCicProtocol, ghost_line_targets
from repro.baselines.global_coordinated import GlobalCoordinatedProtocol
from repro.baselines.independent import IndependentProtocol, domino_targets
from repro.baselines.min_process_coordinated import MinProcessCoordinatedProtocol
from repro.baselines.pessimistic_log import PessimisticLogProtocol

__all__ = [
    "CicAlwaysProtocol",
    "ClcCicProtocol",
    "GlobalCoordinatedProtocol",
    "Hc3iTransitiveProtocol",
    "IndependentProtocol",
    "MinProcessCoordinatedProtocol",
    "PessimisticLogProtocol",
    "domino_targets",
    "ghost_line_targets",
]
