"""HC3I variants obtained by changing the forced-CLC policy.

``cic-always`` is the strawman the paper rejects in §3.2: "Forcing a CLC in
the receiver's cluster for each inter-cluster application message would
work but the overhead would be huge as it would force useless checkpoints"
(Fig. 4's CLC3).  Benchmarked against real HC3I it quantifies exactly how
many checkpoints the SN/DDV test saves.

``hc3i-transitive`` is the §7 extension: "The dependency tracking mechanism
can be improved by adding some transitivity (by sending the whole DDV
instead of the SN) in order to take less forced checkpoints."  Dependencies
learned through an intermediate cluster no longer force a CLC when the
direct message finally arrives.
"""

from __future__ import annotations

from typing import Optional

from repro.core.hc3i import Hc3iProtocol
from repro.core.protocol import register_protocol

__all__ = ["CicAlwaysProtocol", "Hc3iTransitiveProtocol"]


@register_protocol("cic-always")
class CicAlwaysProtocol(Hc3iProtocol):
    """Force a CLC on every inter-cluster message reception."""

    def __init__(self, federation, options: Optional[dict] = None):
        opts = dict(options or {})
        opts["mode"] = "always"
        super().__init__(federation, opts)


@register_protocol("hc3i-transitive")
class Hc3iTransitiveProtocol(Hc3iProtocol):
    """Piggyback the whole DDV: transitive dependency tracking."""

    def __init__(self, federation, options: Optional[dict] = None):
        opts = dict(options or {})
        opts["mode"] = "ddv"
        super().__init__(federation, opts)
