"""Independent checkpointing baseline (domino effect).

Each cluster takes coordinated checkpoints on its own timer -- exactly
HC3I's cluster level -- but nothing happens at the federation level: no
piggybacked SNs trigger forced CLCs, and nothing is logged.  Dependencies
are only *recorded* (sender checkpoint-interval stamped on each
inter-cluster message) so that the recovery line can be computed at
rollback time, which is precisely the scheme §2.2 warns about: "tracking
dependencies to compute the recovery line at rollback time would be very
hard and nodes may rollback to very old checkpoints (domino effect)".

Consistency is the paper's strict definition (no ghost *and* no in-transit
messages), giving the textbook bidirectional domino:

* a **ghost** (receive kept, send erased) forces the receiver back before
  the receive,
* an **in-transit** message (send kept, receive erased) forces the sender
  back before the send, since without logs nobody can re-produce it.

:func:`domino_targets` is the pure fixpoint; benchmarks use it to report
rollback depths, and property tests verify it against brute force.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.protocol import BaseProtocol, NodeAgent, register_protocol
from repro.network.message import Message, MessageKind, NodeId
from repro.sim.timers import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["IndependentProtocol", "domino_targets"]

CONTROL_SIZE = 64


def domino_targets(
    checkpoints: Sequence[Sequence[int]],
    edges: Sequence[tuple],
    failed: int,
) -> list:
    """Recovery line for independent checkpointing.

    :param checkpoints: per cluster, the sorted list of available
        checkpoint numbers (interval k spans from checkpoint k to k+1).
    :param edges: message records ``(src_cluster, send_epoch, dst_cluster,
        recv_epoch)`` -- epochs are the checkpoint count at the event.
    :param failed: the faulty cluster.
    :returns: per-cluster restored checkpoint number (``None`` = cluster
        does not roll back, ``0`` = restart from the very beginning of the
        application -- the domino ran past the oldest checkpoint).  A
        send/receive in epoch ``e`` survives a restore to ``s`` iff
        ``e < s``.

    Fixpoint: start from the faulty cluster's last checkpoint; while some
    message violates "send kept iff receive kept", lower the offending
    side to the newest checkpoint at or below the event's epoch (or to the
    initial state when none exists).
    """
    n = len(checkpoints)
    INF = float("inf")
    target: list = [INF] * n  # INF = live (no rollback)
    if not checkpoints[failed]:
        raise ValueError(f"faulty cluster {failed} has no checkpoint")
    target[failed] = checkpoints[failed][-1]

    def lower(cluster: int, epoch: int) -> bool:
        """Restore ``cluster`` to the newest checkpoint <= ``epoch``.

        When no stored checkpoint is old enough the cluster restarts from
        the beginning of the application (target 0) -- the unbounded
        domino the paper warns about.
        """
        best = 0
        for number in checkpoints[cluster]:
            if number <= epoch:
                best = number
            else:
                break
        if target[cluster] == INF or best < target[cluster]:
            target[cluster] = best
            return True
        return False

    changed = True
    while changed:
        changed = False
        for src, send_epoch, dst, recv_epoch in edges:
            sent_kept = send_epoch < target[src]
            recv_kept = recv_epoch < target[dst]
            if recv_kept and not sent_kept:
                changed |= lower(dst, recv_epoch)  # ghost
            elif sent_kept and not recv_kept:
                changed |= lower(src, send_epoch)  # in-transit, no logs
    return [None if t == INF else int(t) for t in target]


@dataclass(frozen=True)
class ClusterCheckpoint:
    number: int
    time: float


class _IndependentClusterState:
    """Per-cluster state: checkpoint history + the intra 2PC machinery."""

    def __init__(self, index: int):
        self.index = index
        self.sn = 0
        self.checkpoints: list = []
        self.phase_collecting = False
        self.acks_pending: set = set()
        self.recovering = False


@register_protocol("independent")
class IndependentProtocol(BaseProtocol):
    """Uncoordinated cluster checkpoints + rollback-time recovery line."""

    def __init__(self, federation, options: Optional[dict] = None):
        super().__init__(federation, options)
        n = federation.topology.n_clusters
        self.states = [_IndependentClusterState(i) for i in range(n)]
        #: message dependency records (src, send_epoch, dst, recv_epoch)
        self.edges: list = []
        #: per cluster: [(erased_from, erased_until)] time windows of its
        #: rollbacks, used to drop in-flight messages whose send a rollback
        #: erased while they were on the wire (channel incarnation check)
        self.ghost_windows: list = [[] for _ in range(n)]
        self.timers_: list = []
        for i in range(n):
            period = federation.timers.clc_period_for(i)
            self.timers_.append(
                PeriodicTimer(
                    self.sim,
                    period,
                    functools.partial(self._initiate, i),
                    name=f"ind-c{i}",
                )
            )
        self._agents: dict = {}

    # ------------------------------------------------------------------
    def make_agent(self, node: "Node") -> "IndependentAgent":
        agent = IndependentAgent(self, node)
        self._agents[node.id] = agent
        return agent

    def start(self) -> None:
        for i, timer in enumerate(self.timers_):
            self._initiate(i)
            timer.start()

    # -- intra-cluster coordinated checkpoint (same 2PC as HC3I) ---------
    def _initiate(self, cluster: int) -> None:
        st = self.states[cluster]
        if st.phase_collecting or st.recovering:
            return
        st.phase_collecting = True
        runtime = self.federation.clusters[cluster]
        leader = runtime.leader
        self._agents[leader.id].freeze()
        self._agents[leader.id].save_state()
        st.acks_pending = {n.id for n in runtime.nodes if n.id != leader.id}
        for n in runtime.nodes:
            if n.id != leader.id:
                leader.send_raw(n.id, MessageKind.CLC_REQUEST, size=CONTROL_SIZE)
        if not st.acks_pending:
            self._commit(cluster)

    def on_ack(self, cluster: int, msg: Message) -> None:
        st = self.states[cluster]
        if not st.phase_collecting:
            return
        st.acks_pending.discard(msg.src)
        if not st.acks_pending:
            self._commit(cluster)

    def _commit(self, cluster: int) -> None:
        st = self.states[cluster]
        st.sn += 1
        st.checkpoints.append(ClusterCheckpoint(st.sn, self.sim.now))
        st.phase_collecting = False
        self.stats.counter(f"clc/c{cluster}/timer").inc()
        self.stats.counter(f"clc/c{cluster}/total").inc()
        self.stats.gauge(f"clc/c{cluster}/stored").set(len(st.checkpoints))
        self.tracer.protocol("clc_commit", cluster=cluster, sn=st.sn, cause="timer")
        runtime = self.federation.clusters[cluster]
        leader = runtime.leader
        for n in runtime.nodes:
            if n.id != leader.id:
                leader.send_raw(n.id, MessageKind.CLC_COMMIT, size=CONTROL_SIZE)
        self._agents[leader.id].unfreeze()
        self.timers_[cluster].reset()

    # -- failure: domino ---------------------------------------------------
    def on_failure_detected(self, node: "Node") -> None:
        failed = node.id.cluster
        checkpoint_numbers = [
            [c.number for c in st.checkpoints] for st in self.states
        ]
        targets = domino_targets(checkpoint_numbers, self.edges, failed)
        fed = self.federation
        rolled = 0
        self.stats.counter("rollback/failures").inc()
        for cluster, target_sn in enumerate(targets):
            if target_sn is None:
                continue
            rolled += 1
            st = self.states[cluster]
            if target_sn == 0:
                # Domino past every checkpoint: restart from the initial
                # one, which captures the application's starting state.
                target_sn = st.checkpoints[0].number
            depth = st.sn - target_sn
            self.stats.counter("rollback/total").inc()
            self.stats.tally("independent/rollback_depth").record(depth)
            record = next(c for c in st.checkpoints if c.number == target_sn)
            self.ghost_windows[cluster].append((record.time, self.sim.now))
            st.checkpoints = [c for c in st.checkpoints if c.number <= target_sn]
            st.sn = target_sn
            st.phase_collecting = False
            st.acks_pending = set()
            st.recovering = True
            self.stats.gauge(f"clc/c{cluster}/stored").set(len(st.checkpoints))
            self.tracer.protocol(
                "rollback", cluster=cluster, to_sn=target_sn, cause="domino"
            )
            for agent in (self._agents[n.id] for n in fed.clusters[cluster].nodes):
                agent.reset_volatile()
            fed.on_cluster_rollback(
                cluster,
                record.time,
                node if cluster == failed else None,
            )
        self.stats.counter("rollback/clusters_rolled").inc(rolled)
        # Drop dependency records that reference erased epochs.
        kept = []
        for src, send_epoch, dst, recv_epoch in self.edges:
            ts, td = targets[src], targets[dst]
            if (ts is None or send_epoch < ts) and (td is None or recv_epoch < td):
                kept.append((src, send_epoch, dst, recv_epoch))
        self.edges = kept

        timers = fed.timers
        delay = timers.checkpoint_restore_time + timers.node_repair_time
        delay += fed.topology.delay(node.id, node.id, timers.node_state_size)
        self.sim.schedule(delay, self._complete_recovery, targets, node)

    def _complete_recovery(self, targets: list, failed_node: "Node") -> None:
        fed = self.federation
        if not failed_node.up:
            failed_node.recover()
        for cluster, target_sn in enumerate(targets):
            if target_sn is None:
                continue
            self.states[cluster].recovering = False
            fed.restart_cluster_apps(cluster)
            fed.notify_recovery_complete(cluster)
            self.timers_[cluster].reset()

    # ------------------------------------------------------------------
    def record_edge(self, src: int, send_epoch: int, dst: int, recv_epoch: int) -> None:
        self.edges.append((src, send_epoch, dst, recv_epoch))

    def send_erased(self, msg: Message) -> bool:
        """Was this in-flight message's send erased by a sender rollback?

        The fabric stamps every message with its send time; a rollback of
        the sender to checkpoint time ``T`` at instant ``R`` erases sends
        in ``[T, R]`` (closed on the left: the restored state is fixed at
        the checkpoint commit).  Real systems detect such stale messages
        with channel incarnation numbers; the simulator can use the send
        timestamp directly.
        """
        return any(
            erased_from <= msg.send_time <= erased_until
            for erased_from, erased_until in self.ghost_windows[msg.src.cluster]
        )

    def cluster_summary(self, cluster: int) -> dict:
        st = self.states[cluster]
        total = self.stats.counter(f"clc/c{cluster}/total").value \
            if f"clc/c{cluster}/total" in self.stats else 0
        return {
            "sn": st.sn,
            "clc_total": total,
            "clc_unforced": max(0, total - 1),
            "clc_forced": 0,
            "clc_initial": 1 if total else 0,
            "clc_stored": len(st.checkpoints),
            "dependency_edges": sum(
                1 for e in self.edges if e[0] == cluster or e[2] == cluster
            ),
        }


class IndependentAgent(NodeAgent):
    """Per-node endpoint: freeze windows + dependency stamping."""

    def __init__(self, protocol: IndependentProtocol, node: "Node"):
        super().__init__(protocol, node)
        self.protocol: IndependentProtocol = protocol
        self.frozen = False
        self.queued_out: list = []

    @property
    def state(self) -> _IndependentClusterState:
        return self.protocol.states[self.node.id.cluster]

    # -- sending ---------------------------------------------------------
    def app_send(self, dst: NodeId, size: int, payload: Optional[dict] = None) -> None:
        if not self.node.up:
            return
        if self.frozen or self.state.recovering:
            self.queued_out.append((dst, size, payload))
            return
        self._send_now(dst, size, payload)

    def _send_now(self, dst: NodeId, size: int, payload: Optional[dict]) -> None:
        piggyback = None
        if dst.cluster != self.node.id.cluster:
            piggyback = self.state.sn  # dependency stamp, never forces
            size += 8
        msg = Message(
            src=self.node.id, dst=dst, kind=MessageKind.APP, size=size,
            payload=payload or {}, piggyback=piggyback,
        )
        self.protocol.federation.fabric.send(msg)

    # -- receiving ---------------------------------------------------------
    def on_receive(self, msg: Message) -> None:
        kind = msg.kind
        cluster = self.node.id.cluster
        if kind.is_app:
            if msg.inter_cluster:
                if self.protocol.send_erased(msg):
                    # Ghost: the send was erased while the message was on
                    # the wire.  Delivering it would poison the edge set
                    # AND the application state with unsent data.
                    self.protocol.stats.counter("independent/ghosts_dropped").inc()
                    self.protocol.tracer.protocol(
                        "ghost_dropped", cluster=cluster, msg_id=msg.msg_id,
                        src=msg.src.cluster,
                    )
                    return
                self.protocol.record_edge(
                    msg.src.cluster, msg.piggyback, cluster, self.state.sn
                )
            self.node.deliver_app(msg)
        elif kind is MessageKind.CLC_REQUEST:
            self.freeze()
            self.save_state()
            leader = self.protocol.federation.clusters[cluster].leader
            self.node.send_raw(leader.id, MessageKind.CLC_ACK, size=CONTROL_SIZE)
        elif kind is MessageKind.CLC_ACK:
            self.protocol.on_ack(cluster, msg)
        elif kind is MessageKind.CLC_COMMIT:
            self.unfreeze()
        elif kind is MessageKind.REPLICA:
            pass
        else:  # pragma: no cover - defensive
            raise ValueError(f"independent protocol cannot handle {kind}")

    # -- freeze ------------------------------------------------------------
    def freeze(self) -> None:
        self.frozen = True

    def save_state(self) -> None:
        cluster = self.protocol.federation.clusters[self.node.id.cluster]
        n = cluster.size
        if n > 1:
            neighbour = cluster.nodes[(self.node.id.node + 1) % n]
            self.node.send_raw(
                neighbour.id,
                MessageKind.REPLICA,
                size=self.protocol.federation.timers.node_state_size,
            )

    def unfreeze(self) -> None:
        self.frozen = False
        queued, self.queued_out = self.queued_out, []
        for dst, size, payload in queued:
            self._send_now(dst, size, payload)

    def reset_volatile(self) -> None:
        self.frozen = False
        self.queued_out = []
