"""Minimum-process coordinated checkpointing baseline.

Tuli & Kumar's family (arXiv:1111.2208): coordinated checkpointing where a
round initiated by one process synchronizes only the *minimum set* of
processes that are causally entangled with the initiator -- everyone else
keeps computing.  Mapped onto the federation substrate at cluster
granularity:

* each cluster runs a periodic initiation timer (like ``independent``),
* when cluster *c*'s timer fires, the round's participant set is the
  transitive closure of "communicated since its last checkpoint" starting
  from *c*; only those clusters freeze, save and commit together,
* the participants of one round share a mutually consistent cut by
  construction (they froze together), so the rollback-time recovery line
  -- the same :func:`~repro.baselines.independent.domino_targets` fixpoint
  -- is bounded by round membership instead of cascading to t=0.

Dependency discovery piggybacks the sender cluster's SN on inter-cluster
messages (8 bytes, exactly like ``independent``); the initiator's
request/reply dependency probe of the original algorithm is abstracted
into the shared protocol state, the way the other baselines centralize
their recovery-line computation.

Rollback epochs guard against messages from an erased timeline: every
rollback increments the cluster's epoch, and an arrival whose piggybacked
(sn, epoch) falls behind a recorded rollback cut is dropped as a ghost --
the same incarnation-number technique HC3I uses.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.baselines.independent import domino_targets
from repro.core.protocol import BaseProtocol, NodeAgent, register_protocol
from repro.network.message import Message, MessageKind, NodeId
from repro.sim.timers import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["MinProcessCoordinatedProtocol"]

CONTROL_SIZE = 64
#: piggyback bytes on an inter-cluster application message (sn + epoch)
PIGGYBACK_SIZE = 12


@dataclass(frozen=True)
class MinProcPiggyback:
    """Sender cluster's (sn, epoch) stamped on inter-cluster messages."""

    sn: int
    epoch: int


@dataclass(frozen=True)
class MinProcCheckpoint:
    number: int
    time: float


class _MinProcClusterState:
    """Per-cluster state: checkpoint history, dependencies, 2PC flags."""

    def __init__(self, index: int, n_clusters: int):
        self.index = index
        self.sn = 0
        self.checkpoints: list = []
        #: newest send-SN delivered here per source cluster; ``upstream[j]
        #: >= states[j].sn`` means j communicated with us since j's last
        #: checkpoint, so j belongs in our minimum participant set
        self.upstream: dict = {}
        self.recovering = False
        self.rollback_epoch = 0
        #: per source cluster: [(new_epoch, restored_sn)] rollback cuts,
        #: used to recognize ghost messages from erased timelines
        self.ghost_cuts: list = [[] for _ in range(n_clusters)]

    def record_cut(self, src: int, restored_sn: int, new_epoch: int) -> None:
        self.ghost_cuts[src].append((new_epoch, restored_sn))

    def is_ghost(self, src: int, piggy: MinProcPiggyback) -> bool:
        for new_epoch, restored_sn in self.ghost_cuts[src]:
            if new_epoch > piggy.epoch and restored_sn <= piggy.sn:
                return True
        return False


@register_protocol("min-process")
class MinProcessCoordinatedProtocol(BaseProtocol):
    """Coordinated rounds over the minimum causally-dependent cluster set."""

    def __init__(self, federation, options: Optional[dict] = None):
        super().__init__(federation, options)
        n = federation.topology.n_clusters
        self.n_clusters = n
        self.states = [_MinProcClusterState(i, n) for i in range(n)]
        #: message dependency records (src, send_sn, dst, recv_sn) for the
        #: rollback-time recovery line (same encoding as ``independent``)
        self.edges: list = []
        #: one round at a time across the federation
        self.round_active = False
        self.round_initiator = 0
        self.round_participants: list = []
        self._acks_pending: set = set()
        self.timers_: list = []
        for i in range(n):
            period = federation.timers.clc_period_for(i)
            self.timers_.append(
                PeriodicTimer(
                    self.sim,
                    period,
                    functools.partial(self._timer_fired, i),
                    name=f"minproc-c{i}",
                )
            )
        self._agents: dict = {}

    # ------------------------------------------------------------------
    def make_agent(self, node: "Node") -> "MinProcAgent":
        agent = MinProcAgent(self, node)
        self._agents[node.id] = agent
        return agent

    def start(self) -> None:
        # §4-style initial checkpoints: commit one per cluster directly at
        # t=0 (no dependencies exist yet, so every minimum set is {c}).
        for i, st in enumerate(self.states):
            st.sn = 1
            st.checkpoints.append(MinProcCheckpoint(1, self.sim.now))
            self.stats.counter(f"clc/c{i}/initial").inc()
            self.stats.counter(f"clc/c{i}/total").inc()
            self.tracer.protocol("clc_commit", cluster=i, sn=1, cause="initial")
        for timer in self.timers_:
            timer.start()

    # ------------------------------------------------------------------
    # dependency bookkeeping
    # ------------------------------------------------------------------
    def record_delivery(self, src: int, send_sn: int, dst: int) -> None:
        st = self.states[dst]
        if send_sn > st.upstream.get(src, -1):
            st.upstream[src] = send_sn
        self.edges.append((src, send_sn, dst, st.sn))

    def participants_for(self, initiator: int) -> list:
        """Transitive closure of "communicated since its last checkpoint".

        Cluster ``b`` is entangled with ``a`` when either delivered a
        message the other sent after that other's last checkpoint; the
        closure over this symmetric relation is the round's minimum set.
        """

        def related(a: int, b: int) -> bool:
            return (
                self.states[a].upstream.get(b, -1) >= self.states[b].sn
                or self.states[b].upstream.get(a, -1) >= self.states[a].sn
            )

        members = {initiator}
        frontier = [initiator]
        while frontier:
            a = frontier.pop()
            for b in range(self.n_clusters):
                if b not in members and related(a, b):
                    members.add(b)
                    frontier.append(b)
        return sorted(members)

    # ------------------------------------------------------------------
    # the coordinated round
    # ------------------------------------------------------------------
    def _timer_fired(self, cluster: int) -> None:
        if self.round_active or any(st.recovering for st in self.states):
            self.stats.counter("minproc/rounds_skipped").inc()
            return
        self._initiate(cluster)

    def _initiate(self, initiator: int) -> None:
        participants = self.participants_for(initiator)
        self.round_active = True
        self.round_initiator = initiator
        self.round_participants = participants
        self.stats.counter("minproc/rounds").inc()
        self.stats.tally("minproc/participants").record(len(participants))
        self.tracer.protocol(
            "minproc_round", initiator=initiator, participants=len(participants)
        )
        fed = self.federation
        leader = fed.clusters[initiator].leader
        leader_agent = self._agents[leader.id]
        leader_agent.freeze()
        leader_agent.save_state()
        self._acks_pending = set()
        for c in participants:
            for node in fed.clusters[c].nodes:
                if node.id == leader.id:
                    continue
                self._acks_pending.add(node.id)
                leader.send_raw(node.id, MessageKind.CLC_REQUEST, size=CONTROL_SIZE)
        if not self._acks_pending:
            self._commit()

    def on_ack(self, msg: Message) -> None:
        if not self.round_active:
            return  # stale ack from an aborted round
        self._acks_pending.discard(msg.src)
        if not self._acks_pending:
            self._commit()

    def _commit(self) -> None:
        fed = self.federation
        now = self.sim.now
        for c in self.round_participants:
            st = self.states[c]
            st.sn += 1
            st.checkpoints.append(MinProcCheckpoint(st.sn, now))
            self.stats.counter(f"clc/c{c}/timer").inc()
            self.stats.counter(f"clc/c{c}/total").inc()
            self.stats.gauge(f"clc/c{c}/stored").set(len(st.checkpoints))
            self.tracer.protocol("clc_commit", cluster=c, sn=st.sn, cause="timer")
        leader = fed.clusters[self.round_initiator].leader
        for c in self.round_participants:
            for node in fed.clusters[c].nodes:
                if node.id == leader.id:
                    continue
                leader.send_raw(node.id, MessageKind.CLC_COMMIT, size=CONTROL_SIZE)
        self._agents[leader.id].unfreeze()
        for c in self.round_participants:
            self.timers_[c].reset()
        self.round_active = False
        self.round_participants = []

    def _abort_round(self, targets: list) -> None:
        """Cancel an in-flight round when a failure interrupts it.

        Participants that will *not* roll back flush their freeze queues
        (their timeline survives, so their queued sends must happen);
        participants about to roll back are reset by the rollback loop.
        """
        if not self.round_active:
            return
        self.round_active = False
        self._acks_pending = set()
        for c in self.round_participants:
            if targets[c] is None:
                for node in self.federation.clusters[c].nodes:
                    self._agents[node.id].unfreeze()
        self.round_participants = []

    # ------------------------------------------------------------------
    # failure: bounded domino over the recorded edges
    # ------------------------------------------------------------------
    def on_failure_detected(self, node: "Node") -> None:
        failed = node.id.cluster
        self.tracer.protocol(
            "failure_detected", cluster=failed, node=node.id.node
        )
        checkpoint_numbers = [
            [c.number for c in st.checkpoints] for st in self.states
        ]
        targets = domino_targets(checkpoint_numbers, self.edges, failed)
        self._abort_round(targets)
        fed = self.federation
        rolled = 0
        self.stats.counter("rollback/failures").inc()
        for cluster, target_sn in enumerate(targets):
            if target_sn is None:
                continue
            rolled += 1
            st = self.states[cluster]
            if target_sn == 0:
                target_sn = st.checkpoints[0].number
            depth = st.sn - target_sn
            self.stats.counter("rollback/total").inc()
            self.stats.tally("minproc/rollback_depth").record(depth)
            record = next(c for c in st.checkpoints if c.number == target_sn)
            st.checkpoints = [c for c in st.checkpoints if c.number <= target_sn]
            st.sn = target_sn
            st.recovering = True
            st.rollback_epoch += 1
            # Deliveries above the restored SN are erased with the state.
            st.upstream = {
                src: sn for src, sn in st.upstream.items() if sn < target_sn
            }
            self.stats.gauge(f"clc/c{cluster}/stored").set(len(st.checkpoints))
            self.tracer.protocol(
                "rollback", cluster=cluster, to_sn=target_sn, cause="domino"
            )
            for other in range(self.n_clusters):
                if other != cluster:
                    self.states[other].record_cut(
                        cluster, target_sn, st.rollback_epoch
                    )
            for agent in (self._agents[n.id] for n in fed.clusters[cluster].nodes):
                agent.reset_volatile()
            fed.on_cluster_rollback(
                cluster,
                record.time,
                node if cluster == failed else None,
            )
        self.stats.counter("rollback/clusters_rolled").inc(rolled)
        # Drop dependency records referencing erased epochs; surviving
        # upstream marks referencing rolled senders were pruned above.
        kept = []
        for src, send_sn, dst, recv_sn in self.edges:
            ts, td = targets[src], targets[dst]
            if (ts is None or send_sn < ts) and (td is None or recv_sn < td):
                kept.append((src, send_sn, dst, recv_sn))
        self.edges = kept
        for st in self.states:
            if targets[st.index] is None:
                st.upstream = {
                    src: sn
                    for src, sn in st.upstream.items()
                    if targets[src] is None or sn < targets[src]
                }

        timers = fed.timers
        delay = timers.checkpoint_restore_time + timers.node_repair_time
        delay += fed.topology.delay(node.id, node.id, timers.node_state_size)
        self.sim.schedule(delay, self._complete_recovery, targets, node)

    def _complete_recovery(self, targets: list, failed_node: "Node") -> None:
        fed = self.federation
        if not failed_node.up:
            failed_node.recover()
        for cluster, target_sn in enumerate(targets):
            if target_sn is None:
                continue
            self.states[cluster].recovering = False
            fed.restart_cluster_apps(cluster)
            fed.notify_recovery_complete(cluster)
            self.timers_[cluster].reset()
        for cluster, target_sn in enumerate(targets):
            if target_sn is not None:
                for n in fed.clusters[cluster].nodes:
                    self._agents[n.id].process_deferred()

    # ------------------------------------------------------------------
    def cluster_summary(self, cluster: int) -> dict:
        st = self.states[cluster]
        stats = self.stats

        def count(name: str) -> int:
            full = f"clc/c{cluster}/{name}"
            return stats.counter(full).value if full in stats else 0

        return {
            "sn": st.sn,
            "clc_initial": count("initial"),
            "clc_unforced": count("timer"),
            "clc_forced": 0,
            "clc_total": count("total"),
            "clc_stored": len(st.checkpoints),
            "dependency_edges": sum(
                1 for e in self.edges if e[0] == cluster or e[2] == cluster
            ),
            "rollback_epoch": st.rollback_epoch,
        }


class MinProcAgent(NodeAgent):
    """Per-node endpoint: freeze windows, (sn, epoch) piggyback, deferral."""

    def __init__(self, protocol: MinProcessCoordinatedProtocol, node: "Node"):
        super().__init__(protocol, node)
        self.protocol: MinProcessCoordinatedProtocol = protocol
        self.frozen = False
        self.queued_out: list = []
        self.deferred_in: list = []

    @property
    def state(self) -> _MinProcClusterState:
        return self.protocol.states[self.node.id.cluster]

    # -- sending ---------------------------------------------------------
    def app_send(self, dst: NodeId, size: int, payload: Optional[dict] = None) -> None:
        if not self.node.up:
            return
        if self.frozen or self.state.recovering:
            self.queued_out.append((dst, size, payload))
            return
        self._send_now(dst, size, payload)

    def _send_now(self, dst: NodeId, size: int, payload: Optional[dict]) -> None:
        piggyback = None
        if dst.cluster != self.node.id.cluster:
            st = self.state
            piggyback = MinProcPiggyback(sn=st.sn, epoch=st.rollback_epoch)
            size += PIGGYBACK_SIZE
        msg = Message(
            src=self.node.id, dst=dst, kind=MessageKind.APP, size=size,
            payload=payload or {}, piggyback=piggyback,
        )
        self.protocol.federation.fabric.send(msg)

    # -- receiving ---------------------------------------------------------
    def on_receive(self, msg: Message) -> None:
        kind = msg.kind
        if kind.is_app:
            if msg.inter_cluster:
                self._on_inter_arrival(msg)
            else:
                self.node.deliver_app(msg)
        elif kind is MessageKind.CLC_REQUEST:
            self.freeze()
            self.save_state()
            initiator = self.protocol.round_initiator
            leader = self.protocol.federation.clusters[initiator].leader
            self.node.send_raw(leader.id, MessageKind.CLC_ACK, size=CONTROL_SIZE)
        elif kind is MessageKind.CLC_ACK:
            self.protocol.on_ack(msg)
        elif kind is MessageKind.CLC_COMMIT:
            self.unfreeze()
        elif kind is MessageKind.REPLICA:
            pass
        else:  # pragma: no cover - defensive
            raise ValueError(f"min-process protocol cannot handle {kind}")

    def _on_inter_arrival(self, msg: Message) -> None:
        st = self.state
        piggy: MinProcPiggyback = msg.piggyback
        if st.is_ghost(msg.src.cluster, piggy):
            self.protocol.stats.counter("minproc/ghosts_dropped").inc()
            return
        if self.frozen or st.recovering:
            # Deliveries during a freeze window would land *inside* the
            # checkpoint being taken while the participant set was already
            # fixed; deferring them keeps every round's cut clean.
            self.deferred_in.append(msg)
            return
        self.protocol.record_delivery(msg.src.cluster, piggy.sn, st.index)
        self.node.deliver_app(msg)

    def process_deferred(self) -> None:
        while self.deferred_in and not self.frozen and not self.state.recovering:
            self._on_inter_arrival(self.deferred_in.pop(0))

    # -- freeze ------------------------------------------------------------
    def freeze(self) -> None:
        self.frozen = True

    def save_state(self) -> None:
        cluster = self.protocol.federation.clusters[self.node.id.cluster]
        n = cluster.size
        if n > 1:
            neighbour = cluster.nodes[(self.node.id.node + 1) % n]
            self.node.send_raw(
                neighbour.id,
                MessageKind.REPLICA,
                size=self.protocol.federation.timers.node_state_size,
            )

    def unfreeze(self) -> None:
        self.frozen = False
        queued, self.queued_out = self.queued_out, []
        for dst, size, payload in queued:
            self._send_now(dst, size, payload)
        self.process_deferred()

    def reset_volatile(self) -> None:
        self.frozen = False
        self.queued_out = []
        st = self.state
        self.deferred_in = [
            m
            for m in self.deferred_in
            if not st.is_ghost(m.src.cluster, m.piggyback)
        ]

    def on_node_failed(self) -> None:
        self.queued_out = []
        self.frozen = False
