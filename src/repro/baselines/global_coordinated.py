"""Federation-wide coordinated checkpointing baseline.

One initiator (the leader of cluster 0) runs the classic two-phase commit
over *every node of the federation*: request broadcast, acknowledgements,
commit broadcast, with application messages frozen in between.  This is the
approach the paper rules out at federation scale: "The large number of
nodes and network performance between clusters do not allow a global
synchronization" (§2.2).

What the benchmarks measure against HC3I:

* **freeze time** -- the request->commit window now spans WAN round trips,
  and every node in the federation pays it at every checkpoint
  (``global/freeze_time`` tally),
* **rollback scope** -- any single failure rolls back *all* clusters to the
  last global checkpoint (``rollback/clusters_rolled``),
* **control traffic** crossing the inter-cluster links for every round.

Inter-cluster application messages need no piggyback, no logging and no
forced checkpoints: the global commit line is consistent by construction.
In-transit messages at request time are handled like HC3I's intra-cluster
ones: delivery during the window amends the receiver's saved state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.protocol import BaseProtocol, NodeAgent, register_protocol
from repro.network.message import Message, MessageKind, NodeId
from repro.sim.timers import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["GlobalCoordinatedProtocol"]

CONTROL_SIZE = 64


@dataclass(frozen=True)
class GlobalCheckpoint:
    """One committed federation-wide checkpoint."""

    number: int
    time: float


@register_protocol("global-coordinated")
class GlobalCoordinatedProtocol(BaseProtocol):
    """Single 2PC across the whole federation."""

    IDLE = "idle"
    COLLECTING = "collecting"

    def __init__(self, federation, options: Optional[dict] = None):
        super().__init__(federation, options)
        self.checkpoint_number = 0
        self.checkpoints: list = []
        self.phase = self.IDLE
        self._acks_pending: set = set()
        self.state_size = federation.timers.node_state_size
        period = federation.timers.clc_period_for(0)
        self.timer = PeriodicTimer(self.sim, period, self._timer_fired, name="global-clc")
        self.recovering = False
        self._agents: dict = {}
        #: [(erased_from, erased_until)] -- every cluster rolls together, so
        #: one shared list of erased send windows suffices (used to drop
        #: in-flight messages whose send a rollback just erased)
        self.ghost_windows: list = []

    # ------------------------------------------------------------------
    def make_agent(self, node: "Node") -> "GlobalAgent":
        agent = GlobalAgent(self, node)
        self._agents[node.id] = agent
        return agent

    def start(self) -> None:
        self._initiate()  # initial global checkpoint at t=0
        self.timer.start()

    @property
    def initiator(self) -> "Node":
        return self.federation.clusters[0].leader

    def _timer_fired(self) -> None:
        if self.phase == self.IDLE and not self.recovering:
            self._initiate()

    # ------------------------------------------------------------------
    # the global two-phase commit
    # ------------------------------------------------------------------
    def _initiate(self) -> None:
        self.phase = self.COLLECTING
        initiator = self.initiator
        init_agent = self._agents[initiator.id]
        init_agent.freeze()
        init_agent._save_state()
        self._acks_pending = set()
        for cluster in self.federation.clusters:
            for node in cluster.nodes:
                if node.id == initiator.id:
                    continue
                self._acks_pending.add(node.id)
                initiator.send_raw(node.id, MessageKind.CLC_REQUEST, size=CONTROL_SIZE)
        if not self._acks_pending:
            self._commit()

    def on_ack(self, msg: Message) -> None:
        if self.phase != self.COLLECTING:
            return
        self._acks_pending.discard(msg.src)
        if not self._acks_pending:
            self._commit()

    def _commit(self) -> None:
        self.checkpoint_number += 1
        self.checkpoints.append(GlobalCheckpoint(self.checkpoint_number, self.sim.now))
        self.phase = self.IDLE
        self.stats.counter("global/checkpoints").inc()
        self.stats.gauge("global/stored").set(len(self.checkpoints))
        self.tracer.protocol("global_commit", number=self.checkpoint_number)
        initiator = self.initiator
        for cluster in self.federation.clusters:
            for node in cluster.nodes:
                if node.id == initiator.id:
                    continue
                initiator.send_raw(node.id, MessageKind.CLC_COMMIT, size=CONTROL_SIZE)
        self._agents[initiator.id].unfreeze()
        self.timer.reset()

    def abort_round(self) -> None:
        self.phase = self.IDLE
        self._acks_pending = set()

    def send_erased(self, msg: Message) -> bool:
        """Was this in-flight message's send erased by a global rollback?

        A rollback to checkpoint time ``T`` at instant ``R`` erases sends
        in ``[T, R]`` (closed on the left: the restored state is fixed at
        the commit).  The fabric's send timestamp stands in for the
        channel incarnation number a real system would use.
        """
        return any(
            erased_from <= msg.send_time <= erased_until
            for erased_from, erased_until in self.ghost_windows
        )

    # ------------------------------------------------------------------
    # failure: everybody rolls back
    # ------------------------------------------------------------------
    def on_failure_detected(self, node: "Node") -> None:
        if not self.checkpoints:
            raise RuntimeError("failure before the initial global checkpoint")
        target = self.checkpoints[-1]
        self.abort_round()
        fed = self.federation
        n_clusters = fed.topology.n_clusters
        self.stats.counter("rollback/failures").inc()
        self.stats.counter("rollback/total").inc(n_clusters)
        self.stats.counter("rollback/clusters_rolled").inc(n_clusters)
        self.tracer.protocol(
            "global_rollback", number=target.number, failed=str(node.id)
        )
        self.recovering = True
        self.ghost_windows.append((target.time, self.sim.now))
        for agent in self._agents.values():
            agent.reset_volatile()
        for cluster in fed.clusters:
            fed.on_cluster_rollback(cluster.index, target.time, node if node.id.cluster == cluster.index else None)
        timers = fed.timers
        delay = timers.checkpoint_restore_time + timers.node_repair_time
        delay += fed.topology.delay(node.id, node.id, timers.node_state_size)
        self.sim.schedule(delay, self._complete_recovery, node)

    def _complete_recovery(self, failed_node: "Node") -> None:
        self.recovering = False
        fed = self.federation
        if not failed_node.up:
            failed_node.recover()
        for cluster in fed.clusters:
            fed.restart_cluster_apps(cluster.index)
            fed.notify_recovery_complete(cluster.index)
        self.timer.reset()
        self.tracer.protocol("global_recovery_complete", number=self.checkpoints[-1].number)

    def cluster_summary(self, cluster: int) -> dict:
        return {
            "clc_total": self.checkpoint_number,
            "clc_unforced": self.checkpoint_number - 1,
            "clc_forced": 0,
            "clc_initial": 1 if self.checkpoint_number else 0,
            "clc_stored": len(self.checkpoints),
        }


class GlobalAgent(NodeAgent):
    """Per-node endpoint of the global protocol."""

    def __init__(self, protocol: GlobalCoordinatedProtocol, node: "Node"):
        super().__init__(protocol, node)
        self.protocol: GlobalCoordinatedProtocol = protocol
        self.frozen = False
        self.queued_out: list = []
        self._freeze_started = 0.0

    # -- sending ---------------------------------------------------------
    def app_send(self, dst: NodeId, size: int, payload: Optional[dict] = None) -> None:
        if not self.node.up:
            return
        if self.frozen or self.protocol.recovering:
            self.queued_out.append((dst, size, payload))
            return
        self._send_now(dst, size, payload)

    def _send_now(self, dst: NodeId, size: int, payload: Optional[dict]) -> None:
        msg = Message(
            src=self.node.id, dst=dst, kind=MessageKind.APP, size=size,
            payload=payload or {},
        )
        self.protocol.federation.fabric.send(msg)

    # -- receiving ---------------------------------------------------------
    def on_receive(self, msg: Message) -> None:
        kind = msg.kind
        if kind.is_app:
            if msg.inter_cluster and self.protocol.send_erased(msg):
                # Ghost: the send was erased while the message crossed the
                # WAN -- everybody already rolled behind its send point.
                self.protocol.stats.counter("global/ghosts_dropped").inc()
                self.protocol.tracer.protocol(
                    "ghost_dropped", cluster=self.node.id.cluster,
                    msg_id=msg.msg_id, src=msg.src.cluster,
                )
                return
            # Deliveries during the freeze window amend the saved state
            # (same convention as HC3I's intra-cluster handling).
            self.node.deliver_app(msg)
        elif kind is MessageKind.CLC_REQUEST:
            self.freeze()
            self._save_state()
            self.node.send_raw(
                self.protocol.initiator.id, MessageKind.CLC_ACK, size=CONTROL_SIZE
            )
        elif kind is MessageKind.CLC_ACK:
            self.protocol.on_ack(msg)
        elif kind is MessageKind.CLC_COMMIT:
            self.unfreeze()
        elif kind is MessageKind.REPLICA:
            pass
        else:  # pragma: no cover - defensive
            raise ValueError(f"global-coordinated cannot handle {kind}")

    # -- freeze machinery ---------------------------------------------------
    def freeze(self) -> None:
        if not self.frozen:
            self.frozen = True
            self._freeze_started = self.node.sim.now

    def _save_state(self) -> None:
        # Stable storage: one neighbour replica inside the node's cluster.
        cluster = self.protocol.federation.clusters[self.node.id.cluster]
        n = cluster.size
        if n > 1:
            neighbour = cluster.nodes[(self.node.id.node + 1) % n]
            self.node.send_raw(
                neighbour.id, MessageKind.REPLICA, size=self.protocol.state_size
            )

    def unfreeze(self) -> None:
        if self.frozen:
            self.frozen = False
            self.protocol.stats.tally("global/freeze_time").record(
                self.node.sim.now - self._freeze_started
            )
        queued, self.queued_out = self.queued_out, []
        for dst, size, payload in queued:
            self._send_now(dst, size, payload)

    def reset_volatile(self) -> None:
        self.frozen = False
        self.queued_out = []
