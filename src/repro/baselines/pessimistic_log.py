"""Pessimistic message-logging baseline (MPICH-V style).

§6: "MPICH-V ... All the communications are logged and can be replayed.
This avoids all dependencies so that a faulty node will rollback, but not
the others.  But this means that strong assumptions upon determinism have
to be made."

The model grants the piecewise-deterministic (PWD) assumption by fiat --
the paper's point is the *cost* of this approach, not its feasibility:

* every application message (intra- and inter-cluster) is copied to a log
  (``pessimistic/log_bytes``, ``pessimistic/log_messages``); the paper's
  MPICH-V uses remote "channel memories", modelled here as one extra copy
  hop to the receiver node's logging neighbour,
* nodes checkpoint *individually* (no coordination at all) on the cluster
  period, staggered per node,
* on a failure only the crashed node rolls back to its own last local
  checkpoint and replays its logged input
  (``rollback/nodes_rolled`` = 1 per failure; compare HC3I's whole-cluster
  rollback and the baselines' whole-federation/domino rollbacks).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.protocol import BaseProtocol, NodeAgent, register_protocol
from repro.network.message import Message, MessageKind, NodeId
from repro.sim.timers import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["PessimisticLogProtocol"]

CONTROL_SIZE = 64


@register_protocol("pessimistic-log")
class PessimisticLogProtocol(BaseProtocol):
    """Log everything; roll back only the crashed node."""

    def __init__(self, federation, options: Optional[dict] = None):
        super().__init__(federation, options)
        self._agents: dict = {}
        #: per-node replay cost in seconds per logged message
        self.replay_cost = float(self.options.get("replay_cost", 1e-4))

    def make_agent(self, node: "Node") -> "PessimisticAgent":
        agent = PessimisticAgent(self, node)
        self._agents[node.id] = agent
        return agent

    def start(self) -> None:
        for agent in self._agents.values():
            agent.start()

    def on_failure_detected(self, node: "Node") -> None:
        agent = self._agents[node.id]
        fed = self.federation
        self.stats.counter("rollback/failures").inc()
        self.stats.counter("rollback/total").inc()
        self.stats.counter("rollback/nodes_rolled").inc()
        lost = fed.sim.now - agent.last_checkpoint_time
        self.stats.tally("rollback/lost_work").record(lost)
        self.tracer.protocol(
            "node_rollback",
            cluster=node.id.cluster,
            node=node.id.node,
            replayed=agent.received_since_checkpoint,
        )
        timers = fed.timers
        delay = timers.checkpoint_restore_time + timers.node_repair_time
        delay += fed.topology.delay(node.id, node.id, timers.node_state_size)
        delay += agent.received_since_checkpoint * self.replay_cost
        self.sim.schedule(delay, self._complete_recovery, node)

    def _complete_recovery(self, node: "Node") -> None:
        fed = self.federation
        agent = self._agents[node.id]
        agent.received_since_checkpoint = 0
        if not node.up:
            node.recover()
        # Only the failed node re-executes; everyone else kept running.
        if node.app_process is None or not node.app_process.alive:
            if fed.sim.now < fed.application.total_time:
                fed._start_app(node)
        fed.notify_recovery_complete(node.id.cluster)
        self.tracer.protocol("node_recovery_complete", node=str(node.id))

    def cluster_summary(self, cluster: int) -> dict:
        fed = self.federation
        agents = [
            self._agents[n.id] for n in fed.clusters[cluster].nodes
        ]
        return {
            "clc_total": sum(a.checkpoints for a in agents),
            "clc_forced": 0,
            "clc_unforced": sum(max(0, a.checkpoints - 1) for a in agents),
            "clc_initial": len(agents),
            "clc_stored": len(agents),  # each node keeps its last checkpoint
            "log_messages": sum(a.logged_messages for a in agents),
            "log_bytes": sum(a.logged_bytes for a in agents),
        }


class PessimisticAgent(NodeAgent):
    """Per-node endpoint: uncoordinated checkpoints + receiver-side log."""

    def __init__(self, protocol: PessimisticLogProtocol, node: "Node"):
        super().__init__(protocol, node)
        self.protocol: PessimisticLogProtocol = protocol
        self.checkpoints = 0
        self.last_checkpoint_time = 0.0
        self.received_since_checkpoint = 0
        self.logged_messages = 0
        self.logged_bytes = 0
        period = protocol.federation.timers.clc_period_for(node.id.cluster)
        self.timer = PeriodicTimer(
            protocol.sim, period, self._checkpoint, name=f"pess-{node.id}"
        )

    def start(self) -> None:
        self._checkpoint()  # initial local checkpoint at t=0
        if self.timer.enabled:
            # Stagger nodes so the cluster never checkpoints in lockstep.
            stream = self.protocol.federation.streams.stream(f"pess/{self.node.id}")
            assert self.timer.period is not None
            offset = stream.uniform(0, self.timer.period)
            self.protocol.sim.schedule(offset, self.timer.start)

    def _checkpoint(self) -> None:
        if not self.node.up:
            return
        self.checkpoints += 1
        self.last_checkpoint_time = self.protocol.sim.now
        self.received_since_checkpoint = 0
        self.protocol.stats.counter(
            f"clc/c{self.node.id.cluster}/total"
        ).inc()
        # Stable storage: the local state goes to the ring successor.
        cluster = self.protocol.federation.clusters[self.node.id.cluster]
        if cluster.size > 1:
            neighbour = cluster.nodes[(self.node.id.node + 1) % cluster.size]
            self.node.send_raw(
                neighbour.id,
                MessageKind.REPLICA,
                size=self.protocol.federation.timers.node_state_size,
            )

    # -- traffic -----------------------------------------------------------
    def app_send(self, dst: NodeId, size: int, payload: Optional[dict] = None) -> None:
        if not self.node.up:
            return
        msg = Message(
            src=self.node.id, dst=dst, kind=MessageKind.APP, size=size,
            payload=payload or {},
        )
        self.protocol.federation.fabric.send(msg)

    def on_receive(self, msg: Message) -> None:
        kind = msg.kind
        if kind.is_app:
            # Channel-memory logging: every received message is persisted
            # before delivery (pessimistic: the send blocks on the log in
            # real MPICH-V; the copy itself is local here).
            self.logged_messages += 1
            self.logged_bytes += msg.size
            self.received_since_checkpoint += 1
            self.protocol.stats.counter("pessimistic/log_messages").inc()
            self.protocol.stats.counter("pessimistic/log_bytes").inc(msg.size)
            self.node.deliver_app(msg)
        elif kind is MessageKind.REPLICA:
            pass
        else:  # pragma: no cover - defensive
            raise ValueError(f"pessimistic-log cannot handle {kind}")
