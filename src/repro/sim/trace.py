"""Levelled structured tracing.

The paper's simulator "can be compiled with different trace levels.  With the
higher trace level, we can observe each node time-stamped action (sends,
receives, timer interruptions, log searches...)" (§5.1).  We reproduce that
as a runtime trace level instead of a compile-time one.

Trace records are structured (kind + field dict), so tests can assert on
protocol behaviour ("cluster 2 rolled back to SN 3") instead of parsing text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["TraceLevel", "TraceRecord", "Tracer"]


class TraceLevel(enum.IntEnum):
    """How much detail to record.  Higher records strictly more."""

    NONE = 0      #: record nothing (fastest; statistics still collected)
    PROTOCOL = 1  #: checkpoint/rollback/GC protocol actions
    MESSAGE = 2   #: plus every application message send/receive
    DEBUG = 3     #: plus internal details (timer firings, log searches, ...)


@dataclass(frozen=True)
class TraceRecord:
    """One time-stamped action of one node (or of the federation)."""

    time: float
    level: TraceLevel
    kind: str
    fields: dict = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class Tracer:
    """Collects :class:`TraceRecord` objects up to a configured level."""

    def __init__(self, clock: Callable[[], float], level: TraceLevel = TraceLevel.NONE):
        self._clock = clock
        self.level = level
        self.records: list[TraceRecord] = []

    def enabled(self, level: TraceLevel) -> bool:
        return self.level >= level

    def record(self, level: TraceLevel, kind: str, **fields: Any) -> None:
        """Record an action if the configured level admits it."""
        if self.level >= level:
            self.records.append(TraceRecord(self._clock(), level, kind, fields))

    # convenience wrappers -------------------------------------------------
    def protocol(self, kind: str, **fields: Any) -> None:
        self.record(TraceLevel.PROTOCOL, kind, **fields)

    def message(self, kind: str, **fields: Any) -> None:
        self.record(TraceLevel.MESSAGE, kind, **fields)

    def debug(self, kind: str, **fields: Any) -> None:
        self.record(TraceLevel.DEBUG, kind, **fields)

    # queries ---------------------------------------------------------------
    def find(self, kind: str, **match: Any) -> Iterator[TraceRecord]:
        """Iterate records of the given kind whose fields match ``match``."""
        for rec in self.records:
            if rec.kind != kind:
                continue
            if all(rec.fields.get(k) == v for k, v in match.items()):
                yield rec

    def first(self, kind: str, **match: Any) -> Optional[TraceRecord]:
        return next(self.find(kind, **match), None)

    def count(self, kind: str, **match: Any) -> int:
        return sum(1 for _ in self.find(kind, **match))

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    # persistence -------------------------------------------------------
    def save_jsonl(self, path) -> int:
        """Dump the trace as JSON Lines for offline analysis.

        Non-JSON field values are stringified.  Returns the record count.
        """
        import json

        def default(obj: Any) -> str:
            return str(obj)

        with open(path, "w") as fh:
            for rec in self.records:
                fh.write(
                    json.dumps(
                        {
                            "time": rec.time,
                            "level": int(rec.level),
                            "kind": rec.kind,
                            "fields": rec.fields,
                        },
                        default=default,
                    )
                )
                fh.write("\n")
        return len(self.records)

    @staticmethod
    def load_jsonl(path) -> list:
        """Read records written by :meth:`save_jsonl`."""
        import json

        records = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                records.append(
                    TraceRecord(
                        time=data["time"],
                        level=TraceLevel(data["level"]),
                        kind=data["kind"],
                        fields=data["fields"],
                    )
                )
        return records
