"""Core event loop of the discrete-event simulator.

The kernel is a priority queue of timestamped callbacks.  Ties are broken by
insertion order (a monotonically increasing sequence number), which makes the
whole simulation deterministic: two events scheduled for the same instant
always fire in the order they were scheduled.

Time is a ``float`` in *seconds* of simulated time.  Nothing in the kernel
depends on wall-clock time.

Hot-path representation
-----------------------

Every paper experiment ultimately spins this loop, so it is written for
throughput:

* A scheduled event is a plain 4-slot list ``[time, seq, fn, args]`` -- the
  heap entry *is* the handle :meth:`Simulator.schedule` returns.  ``heapq``
  compares entries with C-level list comparison on the ``(time, seq)``
  prefix (``seq`` is unique, so ``fn``/``args`` are never compared and no
  Python ``__lt__`` ever runs).
* The entry's state is encoded in its ``fn``/``args`` slots: live entries
  have a callable ``fn`` and a tuple ``args``; cancellation clears ``fn``
  in place (the entry stays queued until it surfaces, or until cancelled
  entries exceed half the queue and one O(n) in-place compaction sweeps
  them); leaving the heap -- by dispatch or by a cancelled entry being
  popped/swept -- sets ``args`` to ``None``, which is the single hot-path
  store that marks the entry fired and safe for
  :meth:`Simulator.reschedule` to reuse.
* :attr:`Simulator.pending` is O(1) by construction:
  ``len(queue) - cancelled_in_heap``, where the cancelled counter moves
  only on the cold paths (cancel, cancelled-entry pop, compaction) --
  dispatching a live event costs no accounting at all beyond the pop.
* :meth:`Simulator.run` pops and dispatches inline -- no per-event
  ``peek()``/``step()`` double scan, ``until`` normalized to ``+inf`` so
  the horizon test is a single float comparison, and the digest hook
  specialized out of the loop when disabled.
* :meth:`Simulator.schedule_many` batches a burst of schedules through one
  call, and :meth:`Simulator.reschedule` re-arms a fired entry in place
  (a one-slot timer wheel: periodic timers reuse their heap entry instead
  of allocating a fresh one every period).

Determinism contract
--------------------

The observable dispatch stream -- which callback fires, at what simulated
time, with which kernel sequence number -- is part of the kernel's
contract, protected bit-for-bit by the golden trace-equivalence suite
(:mod:`repro.sim.trace_digest`, ``tests/test_trace_golden.py``).  Any
change to this file must reproduce the committed digests exactly; the
representation above is free to change, the stream is not.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = ["Event", "Simulator", "SimulationError", "event_pending"]

#: heap-entry slot indices
_TIME, _SEQ, _FN, _ARGS = 0, 1, 2, 3

#: compaction is considered once the heap holds more entries than this
_COMPACT_MIN = 64

#: An event handle: the heap entry itself, ``[time, seq, fn, args]``.
#: Opaque to callers -- hold it to :meth:`Simulator.cancel` the callback.
Event = list

#: module-level dispatch-digest sink installed by
#: :func:`repro.sim.trace_digest.capture`; picked up by simulators at
#: construction time
_digest_sink = None


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, re-running, ...)."""


def event_pending(event: Event) -> bool:
    """True while the event is scheduled and not cancelled/fired."""
    return event[_FN] is not None and event[_ARGS] is not None


class Simulator:
    """Deterministic discrete-event simulation loop.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.run(until=10.0)

    The loop pops the earliest event, advances :attr:`now` to its timestamp
    and invokes its callback.  Callbacks may schedule further events.
    """

    __slots__ = (
        "now",
        "_queue",
        "_seq",
        "_cancelled_in_heap",
        "_running",
        "_stopped",
        "_processed",
        "_digest",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq: int = 0
        self._cancelled_in_heap: int = 0
        self._running = False
        self._stopped = False
        self._processed: int = 0
        self._digest = _digest_sink

    def attach_digest(self, digest) -> None:
        """Record every dispatched event into ``digest`` (a TraceDigest).

        Takes effect for the next :meth:`run`/:meth:`step` call; a ``run``
        already in progress keeps the digest it started with.
        """
        self._digest = digest

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        entry = [self.now + delay, self._seq, fn, args]
        self._seq += 1
        heapq.heappush(self._queue, entry)
        return entry

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self.now}"
            )
        entry = [time, self._seq, fn, args]
        self._seq += 1
        heapq.heappush(self._queue, entry)
        return entry

    def schedule_many(self, items: Iterable[Sequence]) -> list:
        """Batch-schedule ``(delay, fn)`` or ``(delay, fn, args)`` items.

        Equivalent to calling :meth:`schedule` per item (identical sequence
        numbers are assigned, in iteration order, so the dispatch stream is
        the same), but with the per-call overhead paid once.  Returns the
        new event handles in order.  A negative delay raises after the
        earlier items were already scheduled, exactly as a loop of
        :meth:`schedule` calls would.
        """
        queue = self._queue
        push = heapq.heappush
        now = self.now
        seq = self._seq
        entries = []
        try:
            for item in items:
                delay = item[0]
                if delay < 0:
                    raise SimulationError(
                        f"cannot schedule into the past (delay={delay})"
                    )
                entry = [now + delay, seq, item[1], item[2] if len(item) > 2 else ()]
                seq += 1
                push(queue, entry)
                entries.append(entry)
        finally:
            self._seq = seq
        return entries

    def reschedule(
        self, event: Optional[Event], delay: float, fn: Callable[..., Any], *args: Any
    ) -> Event:
        """Arm a timer, reusing ``event``'s heap entry when possible.

        The one-slot timer-wheel fast path: a periodic timer's entry is
        re-armed in place right after it fires, instead of allocating a
        fresh list every period.  Reuse is only safe once the entry has
        actually left the heap (fired, or a cancelled entry that was
        popped/compacted away); a still-enqueued entry -- live or
        cancelled -- falls back to a fresh :meth:`schedule`.  Sequence
        numbers are allocated exactly as :meth:`schedule` would, so the
        dispatch stream is unchanged.
        """
        if event is None or event[_ARGS] is not None:
            return self.schedule(delay, fn, *args)
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event[_TIME] = self.now + delay
        event[_SEQ] = self._seq
        event[_FN] = fn
        event[_ARGS] = args
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Cancelling twice (or after it fired) is
        a no-op.

        The entry is cleared in place and left in the heap; when cancelled
        entries outnumber live ones the whole queue is compacted (one
        O(n) heapify), so mass-cancelling workloads cannot leak memory.
        """
        if event[_FN] is None or event[_ARGS] is None:
            return
        event[_FN] = None  # break callback/args references; stays in the heap
        event[_ARGS] = ()  # () not None: the entry has not left the heap yet
        self._cancelled_in_heap += 1
        n = len(self._queue)
        if n > _COMPACT_MIN and self._cancelled_in_heap * 2 > n:
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry and re-heapify.

        Mutates the queue list *in place*: :meth:`run` (and any caller of
        :meth:`step`/:meth:`peek`) may hold a local alias to it, so the
        list's identity must survive compaction.
        """
        queue = self._queue
        live = []
        for entry in queue:
            if entry[_FN] is not None:
                live.append(entry)
            else:
                entry[_ARGS] = None  # out of the heap: reusable
        queue[:] = live
        heapq.heapify(queue)
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if empty."""
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[_FN] is not None:
                return entry[_TIME]
            heapq.heappop(queue)
            entry[_ARGS] = None
            self._cancelled_in_heap -= 1
        return None

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` if the queue is empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            fn = entry[_FN]
            if fn is None:
                entry[_ARGS] = None
                self._cancelled_in_heap -= 1
                continue
            args = entry[_ARGS]
            entry[_ARGS] = None
            self.now = entry[_TIME]
            self._processed += 1
            if self._digest is not None:
                self._digest.update(entry[_TIME], entry[_SEQ], fn)
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue empties or simulated time reaches ``until``.

        Returns the simulation time at which the run stopped.  When ``until``
        is given the clock is advanced to exactly ``until`` even if the last
        event fired earlier (matching how the paper reports a fixed
        application duration).

        :attr:`processed` is refreshed when ``run`` returns (or raises);
        a callback reading it mid-run sees the value as of the last
        ``run``/``step`` boundary.  :attr:`pending` is exact at all times.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        self._stopped = False
        queue = self._queue
        pop = heapq.heappop
        digest = self._digest
        horizon = inf if until is None else until
        done = 0
        # The two loops below are identical except for the digest call:
        # the no-digest loop is the production hot path and must not pay
        # even the per-event None test.  stop() can only be called from
        # inside a callback, so testing _stopped after fn() is exact.
        # Slot indices appear as literals below (not the _TIME/_SEQ/_FN/_ARGS
        # module constants): a LOAD_CONST per access instead of a cached
        # global lookup, measurable at millions of events per second.
        try:
            if digest is None:
                while queue:
                    entry = pop(queue)
                    fn = entry[2]  # _FN
                    if fn is None:
                        entry[3] = None  # _ARGS
                        self._cancelled_in_heap -= 1
                        continue
                    time = entry[0]  # _TIME
                    if time > horizon:
                        heapq.heappush(queue, entry)  # once per run at most
                        break
                    args = entry[3]
                    entry[3] = None
                    self.now = time
                    done += 1
                    # plain calls take CPython's specialized CALL path;
                    # only splat when there genuinely are arguments
                    if args:
                        fn(*args)
                    else:
                        fn()
                    if self._stopped:
                        break
            else:
                while queue:
                    entry = pop(queue)
                    fn = entry[2]  # _FN
                    if fn is None:
                        entry[3] = None  # _ARGS
                        self._cancelled_in_heap -= 1
                        continue
                    time = entry[0]  # _TIME
                    if time > horizon:
                        heapq.heappush(queue, entry)
                        break
                    args = entry[3]
                    entry[3] = None
                    self.now = time
                    done += 1
                    digest.update(time, entry[1], fn)  # _SEQ
                    fn(*args)
                    if self._stopped:
                        break
            if until is not None and not self._stopped and self.now < until:
                self.now = until
            return self.now
        finally:
            self._processed += done
            self._running = False

    def stop(self) -> None:
        """Request the current :meth:`run` to return after this event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # snapshot support (see repro.sim.snapshot)
    # ------------------------------------------------------------------
    def __getstate__(self):
        if self._running:
            raise SimulationError("cannot snapshot a simulator mid-run()")
        digest = self._digest
        if digest is not None and not getattr(digest, "snapshot_safe", False):
            # Streaming digests (and ad-hoc sinks) cannot round-trip a
            # pickle; drop them rather than producing an unrestorable blob.
            digest = None
        return {
            "now": self.now,
            "queue": self._queue,
            "seq": self._seq,
            "cancelled": self._cancelled_in_heap,
            "stopped": self._stopped,
            "processed": self._processed,
            "digest": digest,
        }

    def __setstate__(self, state) -> None:
        self.now = state["now"]
        self._queue = state["queue"]
        self._seq = state["seq"]
        self._cancelled_in_heap = state["cancelled"]
        self._running = False
        self._stopped = state["stopped"]
        self._processed = state["processed"]
        self._digest = state["digest"]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of pending (non-cancelled) events.  O(1)."""
        return len(self._queue) - self._cancelled_in_heap

    @property
    def processed(self) -> int:
        """Total number of events executed so far (see :meth:`run`)."""
        return self._processed
