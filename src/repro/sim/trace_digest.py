"""Order-sensitive digests of the kernel's dispatch stream.

The simulator is deterministic: two runs of the same model with the same
seed dispatch exactly the same events, in the same order, at the same
simulated times.  That makes correctness of kernel optimizations checkable
*exactly* -- not "the summary statistics look the same" but "every single
event fired at the same instant, in the same order, into the same
callback".  A :class:`TraceDigest` folds the whole dispatch stream into one
hash: the kernel feeds it ``(time, seq, callback)`` for every event it
executes, and two runs are trace-equivalent iff their digests match.

What goes into the hash per event:

* ``time`` -- the dispatch timestamp, as its exact IEEE-754 bits (so even a
  1-ulp drift in a delay computation is caught),
* ``seq`` -- the kernel sequence number, which encodes *scheduling* order
  (ties at one instant, but also the global order in which model code asked
  for events),
* ``callback id`` -- a hash-seed-independent name for the callback
  (``module.qualname``), so "the right time but the wrong handler" cannot
  collide.

Callback *arguments* are deliberately excluded: they may hold model objects
whose reprs embed memory addresses.  ``seq`` already pins the scheduling
call site uniquely within a run, so argument drift surfaces as a
downstream ordering drift anyway.

Usage -- explicit attachment::

    sim = Simulator()
    digest = TraceDigest()
    sim.attach_digest(digest)
    sim.run()
    digest.hexdigest()

or capture every simulator built inside a block (this is what the golden
trace-equivalence suite uses; experiments construct their federations --
and therefore their simulators -- internally)::

    with trace_digest.capture() as digest:
        experiment.point(params)
    digest.hexdigest()

The golden digests for all registered experiments live in
``tests/golden/trace_digests.json`` (see ``tests/test_trace_golden.py``)
and were recorded with the pre-rewrite kernel; the optimized substrate must
reproduce them bit-for-bit.
"""

from __future__ import annotations

import hashlib
import struct
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = ["ChainedTraceDigest", "TraceDigest", "callback_id", "capture"]

_pack = struct.Struct("<dQ").pack


def callback_id(fn: Callable[..., Any]) -> str:
    """A stable, hash-seed-independent identifier for a kernel callback.

    ``module.qualname`` for functions, bound methods and lambdas (lambda
    qualnames include their defining scope, which is stable source-level
    information).  ``functools.partial`` unwraps to the inner callable;
    anything without a qualname (callable instances) falls back to its
    type's name.  Never uses ``id()``/``repr()`` -- those embed addresses.
    """
    qual = getattr(fn, "__qualname__", None)
    if qual is None:
        inner = getattr(fn, "func", None)  # functools.partial and friends
        if inner is not None and callable(inner):
            return "partial:" + callback_id(inner)
        cls = type(fn)
        return f"{cls.__module__}.{cls.__qualname__}"
    return f"{getattr(fn, '__module__', '?')}.{qual}"


class TraceDigest:
    """Accumulates an order-sensitive hash of every dispatched event."""

    __slots__ = ("_hash", "events")

    def __init__(self) -> None:
        self._hash = hashlib.blake2b(digest_size=16)
        self.events = 0

    def update(self, time: float, seq: int, fn: Callable[..., Any]) -> None:
        """Fold one dispatched event into the digest (called by the kernel)."""
        update = self._hash.update
        update(_pack(time, seq))
        update(callback_id(fn).encode("utf-8", "replace"))
        update(b"\x00")
        self.events += 1

    def hexdigest(self) -> str:
        return self._hash.hexdigest()

    def summary(self) -> dict:
        """Plain-data form, as stored in the golden files."""
        return {"digest": self.hexdigest(), "events": self.events}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceDigest events={self.events} {self.hexdigest()[:12]}...>"


class ChainedTraceDigest:
    """An order-sensitive dispatch digest that survives pickling.

    :class:`TraceDigest` streams into one ``blake2b`` object, which cannot
    be pickled mid-stream -- so a checkpointed run could not carry its
    digest across a snapshot.  This variant hash-chains instead: the state
    is a plain 16-byte value, folded per event as
    ``state = blake2b(state || time || seq || callback_id)``.  Same
    sensitivity (any event changed, dropped, or reordered changes the
    final value), different digest values for the same stream -- so
    chained digests are only ever compared against other chained digests.

    ``snapshot_safe`` marks it as keepable by ``Simulator.__getstate__``:
    a restored run continues the chain exactly where the snapshot left it,
    which is what makes kill-and-resume digest comparisons possible.
    """

    __slots__ = ("state", "events")

    snapshot_safe = True

    def __init__(self) -> None:
        self.state = bytes(16)
        self.events = 0

    def update(self, time: float, seq: int, fn: Callable[..., Any]) -> None:
        self.state = hashlib.blake2b(
            self.state
            + _pack(time, seq)
            + callback_id(fn).encode("utf-8", "replace")
            + b"\x00",
            digest_size=16,
        ).digest()
        self.events += 1

    def hexdigest(self) -> str:
        return self.state.hex()

    def summary(self) -> dict:
        return {"digest": self.hexdigest(), "events": self.events}

    def __getstate__(self):
        return (self.state, self.events)

    def __setstate__(self, state) -> None:
        self.state, self.events = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChainedTraceDigest events={self.events} {self.hexdigest()[:12]}...>"


@contextmanager
def capture() -> Iterator[TraceDigest]:
    """Attach one digest to every :class:`Simulator` built in this block.

    Simulators created *before* entering the block are unaffected.  Nested
    captures stack: the innermost capture wins for simulators built inside
    it.
    """
    from repro.sim import kernel

    digest = TraceDigest()
    previous = kernel._digest_sink
    kernel._digest_sink = digest
    try:
        yield digest
    finally:
        kernel._digest_sink = previous
