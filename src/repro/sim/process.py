"""Generator-based simulated processes.

The paper's simulator maps every node to a C++SIM thread.  Here each node
(and each protocol activity) is a Python generator driven by the kernel: the
generator *yields* a waitable and is resumed when the waitable completes.

Supported yield targets:

``Timeout(delay)``
    resume after ``delay`` simulated seconds,
``Process``
    resume when the target process terminates (join); the ``yield``
    expression evaluates to the process's return value,
``Signal``
    resume when the signal is triggered; the ``yield`` expression evaluates
    to the value passed to :meth:`Signal.trigger`.

A process may be interrupted with :meth:`Process.interrupt`, which raises
:class:`Interrupt` inside the generator at its current wait point.  This is
how node failures preempt application computation.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.kernel import Event, SimulationError, Simulator

__all__ = ["Interrupt", "Process", "Signal", "Timeout"]

ProcessGen = Generator[Any, Any, Any]

#: set to a list by :func:`repro.sim.snapshot.loads` while a snapshot is
#: being unpickled; every restored :class:`Process` appends itself so the
#: loader can rebuild generators once the object graph is complete.
#: ``None`` outside a restore -- unpickling a Process any other way fails.
_restore_batch: Optional[list] = None


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    :param cause: arbitrary object describing why (e.g. a failure record).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Timeout:
    """Yield target: resume the process after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.delay})"


class Signal:
    """A one-shot level-triggered event processes can wait on.

    Multiple processes may wait on the same signal; all are resumed (in wait
    order) when it is triggered.  Waiting on an already-triggered signal
    resumes immediately with the stored value.  :meth:`reset` re-arms it.
    """

    __slots__ = ("_sim", "_waiters", "_triggered", "_value", "name")

    def __init__(self, sim: Simulator, name: str = ""):
        self._sim = sim
        self._waiters: list[Process] = []
        self._triggered = False
        self._value: Any = None
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the signal, waking all waiters in FIFO order."""
        if self._triggered:
            return
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        if waiters:
            self._sim.schedule_many(
                [(0.0, proc._resume, (value,)) for proc in waiters]
            )

    def reset(self) -> None:
        """Re-arm the signal so it can be waited on and triggered again."""
        self._triggered = False
        self._value = None

    def _add_waiter(self, proc: "Process") -> None:
        if self._triggered:
            self._sim.schedule(0.0, proc._resume, self._value)
        else:
            self._waiters.append(proc)

    def _remove_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        state = "triggered" if self._triggered else "armed"
        # id() only labels an anonymous Signal in debug repr output; the
        # string never reaches a digest, ordering decision, or file.
        return f"<Signal {self.name or id(self)} {state}>"  # repro-lint: ignore[DET002] -- debug repr label only


class Process:
    """A simulated process wrapping a generator.

    Create with ``Process(sim, gen_fn(args...), name=...)``; the first step
    of the generator runs at the current simulation time via a zero-delay
    event (so construction itself never executes model code).
    """

    __slots__ = (
        "sim",
        "name",
        "_gen",
        "_alive",
        "_result",
        "_failure",
        "_pending_event",
        "_waiting_on",
        "_joiners",
        "_interrupt_pending",
        "_gen_spec",
    )

    def __init__(
        self, sim: Simulator, gen: ProcessGen, name: str = "", gen_spec: Any = None
    ):
        if not hasattr(gen, "send"):
            raise TypeError(
                "Process expects a generator (did you forget to call the "
                f"generator function?): got {gen!r}"
            )
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._gen_spec = gen_spec
        self._alive = True
        self._result: Any = None
        self._failure: Optional[BaseException] = None
        self._pending_event: Optional[Event] = None
        self._waiting_on: Any = None
        self._joiners: list[Process] = []
        self._interrupt_pending: Optional[Interrupt] = None
        # First resume: kick the generator with None.
        self._pending_event = sim.schedule(0.0, self._resume, None)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True until the generator returns or raises."""
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator (``None`` until it terminates)."""
        return self._result

    @property
    def failure(self) -> Optional[BaseException]:
        """Exception that killed the process, if any."""
        return self._failure

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its wait point.

        Interrupting a dead process is a no-op.  The interrupt is delivered
        through a zero-delay event, preserving deterministic ordering.
        """
        if not self._alive:
            return
        self._detach_wait()
        self._interrupt_pending = Interrupt(cause)
        self._pending_event = self.sim.schedule(0.0, self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        exc, self._interrupt_pending = self._interrupt_pending, None
        if exc is None or not self._alive:  # raced with termination
            return
        self._pending_event = None
        self._advance(lambda: self._gen.throw(exc))

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        # The app-loop hot path: inlined (no closure allocation, no
        # _advance/_wait_on frames) with the dominant Timeout target
        # dispatched directly.  Must stay behaviorally identical to
        # _advance() + _wait_on().
        if not self._alive:
            return
        self._pending_event = None
        self._waiting_on = None
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            self._terminate(result=stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as a clean kill.
            self._terminate(result=None)
            return
        except BaseException as exc:
            self._terminate(failure=exc)
            raise
        if type(target) is Timeout:
            self._waiting_on = target
            self._pending_event = self.sim.schedule(target.delay, self._resume, None)
        else:
            self._wait_on(target)

    def _advance(self, step: Callable[[], Any]) -> None:
        try:
            target = step()
        except StopIteration as stop:
            self._terminate(result=stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as a clean kill.
            self._terminate(result=None)
            return
        except BaseException as exc:
            self._terminate(failure=exc)
            raise
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Timeout):
            self._waiting_on = target
            self._pending_event = self.sim.schedule(target.delay, self._resume, None)
        elif isinstance(target, Signal):
            self._waiting_on = target
            target._add_waiter(self)
        elif isinstance(target, Process):
            if not target._alive:
                self._pending_event = self.sim.schedule(0.0, self._resume, target._result)
            else:
                self._waiting_on = target
                target._joiners.append(self)
        else:
            err = SimulationError(
                f"process {self.name!r} yielded unsupported target {target!r}"
            )
            self._terminate(failure=err)
            raise err

    def _detach_wait(self) -> None:
        """Withdraw from whatever we are currently waiting on."""
        if self._pending_event is not None:
            self.sim.cancel(self._pending_event)
            self._pending_event = None
        if isinstance(self._waiting_on, Signal):
            self._waiting_on._remove_waiter(self)
        elif isinstance(self._waiting_on, Process):
            try:
                self._waiting_on._joiners.remove(self)
            except ValueError:
                pass
        self._waiting_on = None

    def _terminate(self, result: Any = None, failure: Optional[BaseException] = None) -> None:
        self._alive = False
        self._result = result
        self._failure = failure
        self._gen.close()
        joiners, self._joiners = self._joiners, []
        if joiners:
            self.sim.schedule_many(
                [(0.0, proc._resume, (result,)) for proc in joiners]
            )

    # ------------------------------------------------------------------
    # snapshot support (see repro.sim.snapshot)
    # ------------------------------------------------------------------
    def __getstate__(self):
        if self._alive and self._gen_spec is None:
            raise SimulationError(
                f"process {self.name!r} was not built from a GenSpec and "
                "cannot be snapshotted while alive"
            )
        # Everything except the live generator, which is rebuilt on restore.
        return {
            "sim": self.sim,
            "name": self.name,
            "_alive": self._alive,
            "_result": self._result,
            "_failure": self._failure,
            "_pending_event": self._pending_event,
            "_waiting_on": self._waiting_on,
            "_joiners": self._joiners,
            "_interrupt_pending": self._interrupt_pending,
            "_gen_spec": self._gen_spec,
        }

    def __setstate__(self, state) -> None:
        if _restore_batch is None:
            raise SimulationError(
                "a Process can only be unpickled through repro.sim.snapshot"
            )
        for key, value in state.items():
            setattr(self, key, value)
        self._gen = None
        # Generator rebuild is deferred to snapshot.loads(): priming may
        # touch other restored objects, so the graph must be complete first.
        _restore_batch.append(self)

    def __repr__(self) -> str:  # pragma: no cover
        state = "alive" if self._alive else "dead"
        return f"<Process {self.name} {state}>"


def all_of(sim: Simulator, processes: Iterable[Process], name: str = "all_of") -> Process:
    """Return a process that terminates once every given process has."""

    procs = list(processes)

    def waiter() -> ProcessGen:
        results = []
        for p in procs:
            res = yield p
            results.append(res)
        return results

    return Process(sim, waiter(), name=name)
