"""Statistics collection for simulation runs.

The paper's simulator reports "statistical data, as messages count in
clusters and between each cluster, number of stored CLCs, number of protocol
messages" (§5.1).  This module provides the collectors those reports are
built from:

* :class:`Counter` -- monotonically increasing event counts,
* :class:`Tally` -- streaming mean/variance/min/max of observed values
  (Welford's algorithm, numerically stable),
* :class:`TimeWeighted` -- a gauge integrated over simulated time (e.g.
  number of CLCs currently stored, averaged over the run),
* :class:`Series` -- raw (time, value) samples for plotting figures,
* :class:`StatsRegistry` -- a namespace of the above, snapshotable to a
  plain dict for reporting.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Union

__all__ = ["Counter", "Series", "StatsRegistry", "Tally", "TimeWeighted"]


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter can only increase; use a Tally for deltas")
        self.value += amount

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.value}>"


class Tally:
    """Streaming statistics over observed values (Welford's algorithm)."""

    __slots__ = ("name", "count", "_mean", "_m2", "min", "max", "total")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 for fewer than 2 samples."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Tally {self.name} n={self.count} mean={self.mean:.4g}>"


class TimeWeighted:
    """A gauge whose value is integrated over simulated time.

    ``clock`` is a zero-argument callable returning the current simulated
    time (normally ``lambda: sim.now``), so the collector never holds a
    reference to the whole simulator.
    """

    __slots__ = ("name", "_clock", "_value", "_last_t", "_start_t", "_integral", "max")

    def __init__(self, name: str, clock: Callable[[], float], initial: float = 0.0):
        self.name = name
        self._clock = clock
        self._value = initial
        self._last_t = clock()
        self._start_t = self._last_t
        self._integral = 0.0
        self.max = initial

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self._clock()
        self._integral += self._value * (now - self._last_t)
        self._last_t = now
        self._value = value
        if value > self.max:
            self.max = value

    def adjust(self, delta: float) -> None:
        self.set(self._value + delta)

    def time_average(self, now: Optional[float] = None) -> float:
        """Average value over [start, now]."""
        if now is None:
            now = self._clock()
        span = now - self._start_t
        if span <= 0:
            return self._value
        return (self._integral + self._value * (now - self._last_t)) / span

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TimeWeighted {self.name}={self._value}>"


class Series:
    """Raw (time, value) samples, e.g. one point per garbage collection."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"Series {self.name!r}: non-monotonic time {time} < {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Series {self.name} n={len(self)}>"


Metric = Union[Counter, Tally, TimeWeighted, Series]


class StatsRegistry:
    """Namespace of metrics, keyed by hierarchical name.

    Accessors are create-on-first-use so model code never needs to
    pre-declare its metrics::

        stats.counter("net/inter/c0->c1").inc()
        stats.gauge("cluster0/stored_clcs").adjust(+1)
    """

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, factory: Callable[[], Metric], kind: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), Counter)  # type: ignore[return-value]

    def tally(self, name: str) -> Tally:
        return self._get(name, lambda: Tally(name), Tally)  # type: ignore[return-value]

    def gauge(self, name: str, initial: float = 0.0) -> TimeWeighted:
        return self._get(
            name, lambda: TimeWeighted(name, self._clock, initial), TimeWeighted
        )  # type: ignore[return-value]

    def series(self, name: str) -> Series:
        return self._get(name, lambda: Series(name), Series)  # type: ignore[return-value]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict:
        """Flatten every metric into plain Python values for reporting."""
        out: dict[str, object] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Tally):
                out[name] = {
                    "count": metric.count,
                    "mean": metric.mean,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                    "total": metric.total,
                }
            elif isinstance(metric, TimeWeighted):
                out[name] = {
                    "value": metric.value,
                    "max": metric.max,
                    "time_average": metric.time_average(),
                }
            elif isinstance(metric, Series):
                out[name] = list(zip(metric.times, metric.values))
        return out
