"""Deterministic discrete-event simulation kernel.

This subpackage replaces the C++SIM library used by the paper's original
simulator.  It provides:

* :class:`~repro.sim.kernel.Simulator` -- the event loop (schedule / cancel /
  run) with deterministic tie-breaking,
* :class:`~repro.sim.process.Process` -- generator-based simulated processes
  with timeouts, joins, signals and interrupts,
* :class:`~repro.sim.random.RandomStreams` -- named, independently seeded
  random streams so that components draw from decoupled sequences,
* :mod:`~repro.sim.stats` -- counters, tallies, time-weighted gauges and
  series recorders,
* :class:`~repro.sim.timers.PeriodicTimer` -- restartable periodic timers
  (the protocol resets its CLC timer whenever a forced CLC commits),
* :mod:`~repro.sim.trace` -- levelled, timestamped structured tracing,
* :mod:`~repro.sim.trace_digest` -- order-sensitive digests of the kernel
  dispatch stream (the golden trace-equivalence mechanism).

Everything is single-threaded and deterministic: running the same model with
the same seed produces the same trace, event order and statistics.
"""

from repro.sim.kernel import Event, Simulator, SimulationError, event_pending
from repro.sim.process import Interrupt, Process, Signal, Timeout
from repro.sim.random import RandomStreams, Stream
from repro.sim.stats import Counter, Series, StatsRegistry, Tally, TimeWeighted
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceLevel, TraceRecord, Tracer
from repro.sim.trace_digest import TraceDigest

__all__ = [
    "Counter",
    "Event",
    "TraceDigest",
    "event_pending",
    "Interrupt",
    "PeriodicTimer",
    "Process",
    "RandomStreams",
    "Series",
    "Signal",
    "SimulationError",
    "Simulator",
    "StatsRegistry",
    "Stream",
    "Tally",
    "TimeWeighted",
    "Timeout",
    "TraceLevel",
    "TraceRecord",
    "Tracer",
]
