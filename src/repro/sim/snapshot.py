"""Simulator snapshot/restore: serialize a live federation mid-run.

The paper's whole subject is checkpointing long-running parallel work so
it survives failures -- this module applies that medicine to the
simulator itself.  A snapshot captures the *entire* simulation state --
the kernel's event queue, every process, the protocol and RNG state, the
statistics registry and the trace-digest accumulator -- as one pickle,
so an evicted sweep point can resume on another worker instead of
re-running from zero (see :mod:`repro.experiments.checkpoint` for the
sweep-side policy).

Three things make a live simulation picklable, and all three live here:

* **Event-queue entries hold bound methods.**  A heap entry is
  ``[time, seq, fn, args]`` where ``fn`` is typically
  ``proc._resume`` or ``timer._fire``.  Bound methods pickle by
  reference (object + attribute name), and the pickle memo preserves
  aliasing, so the restored queue entries point at the restored
  processes -- including the identity between an entry and the
  ``Process._pending_event`` / ``PeriodicTimer._event`` that holds it.
* **Generators do not pickle.**  Every resumable process generator is
  built from a :class:`GenSpec` -- the generator function, its
  arguments, and a mutable *phase* dict the generator labels before
  every yield.  On restore the generator is rebuilt from the spec and
  primed: run forward to a bare re-entry ``yield`` selected by the
  phase label, with no side effects and no RNG draws, so the pending
  ``_resume`` event in the restored queue continues it exactly where
  the original was suspended.
* **Global message-id state.**  ``Message`` ids come from a module-level
  counter; the snapshot records the next id and restore advances the
  live counter to at least that value, so a resumed run allocates the
  same relative id sequence without colliding with ids already issued
  in this process.

Snapshots are written as *envelopes*: one JSON header line (format,
payload checksum, provenance) followed by the raw pickle, written
atomically (temp file + rename) so a killed writer never leaves a
truncated snapshot that parses.  :func:`read_envelope` verifies the
checksum and raises :class:`CorruptSnapshotError` on any damage --
callers treat that as "no snapshot" and fall back to running from zero.

The determinism contract (see :mod:`repro.sim.trace_digest`) extends
through snapshots: restoring a snapshot and running on must dispatch
exactly the events the uninterrupted run would have -- same times, same
sequence numbers, same callbacks.  ``tests/test_checkpoint_resume.py``
pins this bit-for-bit for every registered experiment.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Optional, Tuple

__all__ = [
    "CorruptSnapshotError",
    "GenSpec",
    "SimClock",
    "SnapshotError",
    "StaleSnapshotError",
    "dumps",
    "loads",
    "read_envelope",
    "write_envelope",
]

#: envelope/payload format version; bump on incompatible layout changes
FORMAT = 1

#: installed by :func:`repro.experiments.checkpoint.activate`; when set,
#: ``Federation.run`` hands the run loop to ``hook(federation, horizon)``
#: instead of calling ``sim.run(until=horizon)`` itself (module-level so
#: the sim layer never imports the experiments layer)
_drive_hook: Optional[Callable[..., Any]] = None


class SnapshotError(RuntimeError):
    """A snapshot could not be taken or restored."""


class CorruptSnapshotError(SnapshotError):
    """The snapshot envelope is damaged (truncated, garbled, bad checksum)."""


class StaleSnapshotError(SnapshotError):
    """The snapshot was taken by different ``repro`` sources.

    Resuming state produced by other code could silently diverge from the
    from-zero run (and poison the result cache), so stale snapshots are
    refused exactly as federation cache sync refuses mismatched entries.
    """


class SimClock:
    """Picklable ``() -> sim.now`` callable (replaces a closure over ``sim``)."""

    __slots__ = ("sim",)

    def __init__(self, sim) -> None:
        self.sim = sim

    def __call__(self) -> float:
        return self.sim.now

    def __getstate__(self):
        return self.sim

    def __setstate__(self, state) -> None:
        self.sim = state


class GenSpec:
    """How to rebuild one process generator after a restore.

    ``fn`` must be a picklable generator function (module-level function
    or bound method) taking a trailing ``_phase`` keyword: a mutable dict
    the generator assigns ``phase["at"] = "<label>"`` to before every
    yield it can be resumed at.  On restore the generator is rebuilt with
    the *restored* phase dict; reading the label, it jumps to a bare
    re-entry ``yield`` with no side effects, ready for the pending
    ``_resume`` event to continue it.
    """

    __slots__ = ("fn", "args", "phase")

    def __init__(self, fn: Callable[..., Any], *args: Any) -> None:
        self.fn = fn
        self.args = args
        self.phase: dict = {}

    def make(self):
        """Build the generator (fresh, or positioned for priming)."""
        return self.fn(*self.args, _phase=self.phase)

    def __getstate__(self):
        return (self.fn, self.args, self.phase)

    def __setstate__(self, state) -> None:
        self.fn, self.args, self.phase = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<GenSpec {name} at={self.phase.get('at')!r}>"


# ---------------------------------------------------------------------------
# pickle payload


def _msg_id_next() -> int:
    """The next ``Message.msg_id`` the live counter would hand out.

    Parsed from the counter's repr (``count(42)``) so reading it never
    consumes an id.
    """
    from repro.network import message

    rep = repr(message._msg_ids)
    inside = rep[rep.index("(") + 1 : rep.rindex(")")]
    return int(inside.split(",")[0])


def dumps(root: Any) -> bytes:
    """Serialize ``root`` (typically a Federation) plus global counters."""
    payload = {"format": FORMAT, "msg_id_next": _msg_id_next(), "root": root}
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(f"state is not snapshottable: {exc}") from exc


def loads(blob: bytes) -> Any:
    """Restore a :func:`dumps` payload; returns the root object.

    Process generators are rebuilt and primed in a post-pass (the object
    graph must be complete before any generator function can run), and
    the global message-id counter is advanced so resumed allocation
    cannot collide with ids already issued in this process.
    """
    from repro.network import message
    from repro.sim import process as process_mod

    if process_mod._restore_batch is not None:
        raise SnapshotError("snapshot.loads() does not nest")
    process_mod._restore_batch = []
    try:
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            raise CorruptSnapshotError(
                f"snapshot payload does not unpickle: {exc}"
            ) from exc
        if not isinstance(payload, dict) or payload.get("format") != FORMAT:
            raise CorruptSnapshotError("unrecognized snapshot payload format")
        message._msg_ids = itertools.count(
            max(_msg_id_next(), int(payload.get("msg_id_next", 1)))
        )
        for proc in process_mod._restore_batch:
            _rebuild_generator(proc)
        return payload["root"]
    finally:
        process_mod._restore_batch = None


def _rebuild_generator(proc) -> None:
    """Rebuild (and, for a started process, prime) one restored process."""
    if not proc._alive:
        proc._gen = None
        return
    spec = proc._gen_spec
    gen = spec.make()
    proc._gen = gen
    if "at" in spec.phase:
        # The process was suspended mid-generator: run the rebuilt one to
        # its bare re-entry yield.  By the GenSpec contract this executes
        # no model side effects and draws no randomness.
        try:
            next(gen)
        except SnapshotError:
            raise
        except Exception as exc:
            raise SnapshotError(
                f"cannot prime restored process {proc.name!r}: {exc}"
            ) from exc


# ---------------------------------------------------------------------------
# envelope I/O


def write_envelope(path, meta: dict, payload: bytes) -> Path:
    """Atomically write header-line + payload; returns the final path.

    The header is ``meta`` plus ``format`` and ``payload_sha256``.
    Write-then-rename (the result-cache idiom): a reader either sees the
    previous complete snapshot or this one, never a torn mix.
    """
    path = Path(path)
    header = dict(meta)
    header["format"] = FORMAT
    header["payload_sha256"] = hashlib.sha256(payload).hexdigest()
    line = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n"
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        fh = os.fdopen(fd, "wb")
    except BaseException:
        # fdopen never took ownership: close the raw fd ourselves
        os.close(fd)
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        with fh:
            fh.write(line)
            fh.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_envelope(path) -> Tuple[dict, bytes]:
    """Parse and verify one envelope; returns ``(header, payload)``.

    Any damage -- unreadable file, missing header line, bad JSON, format
    skew, checksum mismatch -- raises :class:`CorruptSnapshotError`.
    """
    try:
        blob = Path(path).read_bytes()
    except OSError as exc:
        raise CorruptSnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    newline = blob.find(b"\n")
    if newline < 0:
        raise CorruptSnapshotError(f"snapshot {path} has no header line")
    try:
        header = json.loads(blob[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptSnapshotError(
            f"snapshot {path} header is not JSON: {exc}"
        ) from exc
    if not isinstance(header, dict) or header.get("format") != FORMAT:
        raise CorruptSnapshotError(f"snapshot {path} has an unsupported format")
    payload = blob[newline + 1 :]
    if hashlib.sha256(payload).hexdigest() != header.get("payload_sha256"):
        raise CorruptSnapshotError(
            f"snapshot {path} payload checksum mismatch (truncated write?)"
        )
    return header, payload
