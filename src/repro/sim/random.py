"""Named, independently seeded random streams.

A simulation draws randomness for many unrelated purposes (per-node compute
times, communication destinations, failure times...).  Using a single RNG
couples them: adding one draw anywhere shifts every subsequent draw, making
experiments impossible to compare across configurations.  C++SIM's "random
flows" solve this with one stream per purpose; we do the same.

Streams are derived deterministically from a root seed and the stream name
via SHA-256, so stream independence does not depend on creation order.
"""

from __future__ import annotations

import hashlib
import math
import random as _stdlib_random
from typing import Any, Optional, Sequence

__all__ = ["RandomStreams", "Stream"]


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class Stream:
    """A single random stream with the distributions the simulator needs."""

    __slots__ = ("name", "_rng", "_seed")

    def __init__(self, name: str, seed: int):
        self.name = name
        self._seed = seed
        self._rng = _stdlib_random.Random(seed)

    # -- distributions --------------------------------------------------
    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given *mean* (not rate).

        Used for compute phases and MTBF-driven failure inter-arrival times.
        """
        if mean <= 0:
            raise ValueError(f"exponential mean must be > 0, got {mean}")
        # Inverse-CDF with guard against log(0).
        u = self._rng.random()
        while u <= 0.0:  # pragma: no cover - probability ~0
            u = self._rng.random()
        return -mean * math.log(u)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def choice(self, seq: Sequence[Any], weights: Optional[Sequence[float]] = None) -> Any:
        """Pick one element, optionally with relative weights."""
        if not seq:
            raise IndexError("choice from empty sequence")
        if weights is None:
            return seq[self._rng.randrange(len(seq))]
        if len(weights) != len(seq):
            raise ValueError("weights length must match sequence length")
        return self._rng.choices(seq, weights=weights, k=1)[0]

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0,1], got {p}")
        return self._rng.random() < p

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(items)

    def fork(self, name: str) -> "Stream":
        """Derive a deterministic child stream independent of this one."""
        return Stream(f"{self.name}/{name}", _derive_seed(self._seed, name))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Stream {self.name!r} seed={self._seed}>"


class RandomStreams:
    """Factory and registry of named random streams.

    ``streams.stream("cluster0/node3/compute")`` always returns the same
    object for the same name, seeded independently of every other name.
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        st = self._streams.get(name)
        if st is None:
            st = Stream(name, _derive_seed(self.root_seed, name))
            self._streams[name] = st
        return st

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RandomStreams root_seed={self.root_seed} n={len(self._streams)}>"
