"""Restartable periodic timers.

The protocol's "delay between unforced CLCs" timer has one subtle behaviour
the paper calls out explicitly (§5.2): *"the timer is reset when a forced CLC
is established"* -- which is why the total number of stored CLCs is smaller
than ``total_time / delay + forced``.  :class:`PeriodicTimer.reset` models
exactly that.

A period of ``None`` (or ``math.inf``) means the timer never fires, matching
the paper's "timer set to infinite" configurations (Fig. 7).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from repro.sim.kernel import Event, Simulator, event_pending

__all__ = ["PeriodicTimer"]


class PeriodicTimer:
    """Fires ``action()`` every ``period`` simulated seconds until stopped.

    * :meth:`start` arms the timer (first firing one full period from now),
    * :meth:`reset` re-arms it so the *next* firing is one full period from
      the current instant (used when a forced CLC commits),
    * :meth:`stop` disarms it.

    The timer re-arms itself after each firing, so ``action`` runs at most
    once per period even if it itself takes simulated time.
    """

    def __init__(
        self,
        sim: Simulator,
        period: Optional[float],
        action: Callable[[], Any],
        name: str = "timer",
    ):
        if period is not None and period <= 0:
            raise ValueError(f"timer period must be positive, got {period}")
        self.sim = sim
        self.period = period
        self.action = action
        self.name = name
        self._event: Optional[Event] = None
        self._running = False
        self.firings = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when a finite period is configured (even if not started)."""
        return self.period is not None and not math.isinf(self.period)

    @property
    def armed(self) -> bool:
        """True when a firing is currently scheduled."""
        return self._event is not None and event_pending(self._event)

    def start(self) -> None:
        """Arm the timer.  No-op for an infinite/disabled period."""
        self._disarm()
        if not self.enabled:
            self._running = False
            return
        self._running = True
        assert self.period is not None
        # _disarm() cleared self._event, so this is always a fresh entry;
        # the timer-wheel reuse happens in _fire(), which re-arms the
        # just-popped entry via sim.reschedule().
        self._event = self.sim.schedule(self.period, self._fire)

    def reset(self) -> None:
        """Restart the full period from the current instant."""
        self.start()

    def stop(self) -> None:
        """Disarm the timer; it will not fire until started again.

        Safe to call from within the timer's own action: the post-action
        re-arm honours it.
        """
        self._running = False
        self._disarm()

    def set_period(self, period: Optional[float]) -> None:
        """Change the period; re-arms from now if currently running.

        Setting ``None``/infinite disarms immediately.
        """
        if period is not None and period <= 0:
            raise ValueError(f"timer period must be positive, got {period}")
        was_running = self._running
        self.period = period
        if not self.enabled:
            self._running = False
            self._disarm()
        elif was_running:
            self.start()

    # ------------------------------------------------------------------
    def _fire(self) -> None:
        fired = self._event  # just popped by the kernel: safe to reuse
        self._event = None
        self.firings += 1
        self.action()
        # The action may itself have re-armed (reset) or stopped the timer.
        if self._running and self._event is None and self.enabled:
            assert self.period is not None
            self._event = self.sim.reschedule(fired, self.period, self._fire)

    def _disarm(self) -> None:
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PeriodicTimer {self.name} period={self.period} armed={self.armed}>"
