"""Static import graph over a lint :class:`~repro.lint.engine.Project`.

SNAP001 needs to know which modules can contribute objects to a
simulator snapshot: anything transitively imported from the snapshot
module, the federation (whose object graph *is* the pickled payload),
and the protocol families the federation instantiates by name.  The
closure is computed from the ASTs alone -- including imports nested
inside functions, because the restore path uses exactly such lazy
imports -- so the linter never has to execute repository code.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import Module, Project

__all__ = ["module_imports", "transitive_closure"]


def _resolve_relative(module: "Module", node: ast.ImportFrom) -> str:
    """Absolute dotted prefix for a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    parts = module.name.split(".")
    # level 1 = the containing package; each extra level climbs one more
    anchor = parts[: len(parts) - node.level]
    if node.module:
        anchor.append(node.module)
    return ".".join(anchor)


def module_imports(module: "Module") -> Set[str]:
    """Every dotted name ``module`` imports, at any nesting depth.

    ``from pkg import name`` contributes both ``pkg`` and ``pkg.name``:
    whether ``name`` is a submodule or an attribute is resolved later
    against the project (unknown names simply match nothing).
    """
    names: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(module, node)
            if base:
                names.add(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(f"{base}.{alias.name}" if base else alias.name)
    return names


def _project_matches(project: "Project", dotted: str) -> Set[str]:
    """Project modules a dotted import name refers to.

    An exact module match wins; a package name also pulls in the
    package's ``__init__`` module (registered under the package name
    itself), which is how ``import repro.baselines`` reaches every
    protocol family the package re-exports.
    """
    matches: Set[str] = set()
    if dotted in project.by_name:
        matches.add(dotted)
    return matches


def transitive_closure(project: "Project", roots: Sequence[str]) -> Set[str]:
    """Names of project modules reachable from ``roots`` via imports."""
    queue = [root for root in roots if root in project.by_name]
    closure: Set[str] = set(queue)
    while queue:
        current = project.by_name[queue.pop()]
        for imported in module_imports(current):
            for match in _project_matches(project, imported):
                if match not in closure:
                    closure.add(match)
                    queue.append(match)
    return closure
