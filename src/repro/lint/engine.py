"""The ``repro lint`` engine: parse, scope, run rules, apply suppressions.

The engine is deliberately small: it discovers Python files, parses each
one once with :mod:`ast`, wraps the tree in a :class:`Module` (source
lines, dotted module name, parent links, suppression comments), bundles
the modules into a :class:`Project` (so cross-file rules like SNAP001's
import closure can see the whole tree), and runs every selected rule
over every module.  All policy lives in the rules
(:mod:`repro.lint.rules`) and in :class:`LintConfig`; the engine knows
nothing about determinism or locking.

Suppressions are per-line comments::

    value = hash(key)  # repro-lint: ignore[DET002] -- process-local dict key

A suppression names the rule ids it silences (comma-separated inside the
brackets) and applies to findings reported *on that physical line*.
Blanket suppressions are deliberately impossible: every ignore names its
rule, so a grep for ``repro-lint: ignore`` enumerates every waived
finding in the tree, with its stated justification next to it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintConfig",
    "LintError",
    "LintReport",
    "Module",
    "Project",
    "load_project",
    "run_lint",
]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


class LintError(RuntimeError):
    """A file could not be linted (unreadable, unparsable)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  #: display path (relative to the invocation cwd when possible)
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def baseline_key(self) -> tuple:
        """Line-insensitive identity used for baseline matching.

        Baselines must survive unrelated edits shifting code up or down,
        so the key is (rule, path, message) -- not the line number.
        """
        return (self.rule, self.path, self.message)


@dataclass(frozen=True)
class LintConfig:
    """Where each scoped rule applies (dotted module-name prefixes).

    The defaults describe *this* repository; fixture tests substitute
    their own scopes so every rule can be exercised against seeded
    violations without touching the real tree.
    """

    #: DET001/DET002: modules whose behavior feeds dispatch digests
    determinism_scopes: Tuple[str, ...] = (
        "repro.sim",
        "repro.core",
        "repro.baselines",
        "repro.network",
    )
    #: SNAP001: roots of the snapshot/restore import closure.  Anything
    #: transitively imported from these can hold state that crosses a
    #: pickle boundary, where ``is`` on interned literals breaks (PR 6).
    snapshot_roots: Tuple[str, ...] = (
        "repro.sim.snapshot",
        "repro.cluster.federation",
        "repro.baselines",
    )
    #: ASYNC001: modules whose ``async def`` bodies share an event loop
    async_scopes: Tuple[str, ...] = ("repro.serve",)
    #: WIRE001: modules that register experiment grids
    wire_scopes: Tuple[str, ...] = ("repro.experiments",)

    @staticmethod
    def in_scope(name: str, scopes: Sequence[str]) -> bool:
        return any(name == s or name.startswith(s + ".") for s in scopes)


class Module:
    """One parsed source file plus the lookups rules keep needing."""

    def __init__(self, path: Path, display_path: str, name: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.name = name
        self.source = source
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintError(f"{display_path}: cannot parse: {exc}") from None
        self.suppressions = self._parse_suppressions(self.lines)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._str_sentinels: Optional[Set[str]] = None

    @staticmethod
    def _parse_suppressions(lines: List[str]) -> Dict[int, Set[str]]:
        out: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(lines, 1):
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                out[lineno] = {r for r in rules if r}
        return out

    def suppressed(self, finding: Finding) -> bool:
        return finding.rule in self.suppressions.get(finding.line, ())

    # ------------------------------------------------------------- lookups

    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child -> parent links for the whole tree (built on first use)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    @property
    def str_sentinels(self) -> Set[str]:
        """Module-level names bound to string constants (``_IDLE = "idle"``)."""
        if self._str_sentinels is None:
            sentinels: Set[str] = set()
            for stmt in self.tree.body:
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                if (
                    value is not None
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    for target in targets:
                        if isinstance(target, ast.Name):
                            sentinels.add(target.id)
            self._str_sentinels = sentinels
        return self._str_sentinels

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class Project:
    """Every module in one lint run, addressable by dotted name."""

    def __init__(self, modules: List[Module], config: LintConfig) -> None:
        self.modules = modules
        self.config = config
        self.by_name: Dict[str, Module] = {m.name: m for m in modules}
        self._snapshot_closure: Optional[Set[str]] = None

    def snapshot_closure(self) -> Set[str]:
        """Module names transitively imported from ``config.snapshot_roots``."""
        if self._snapshot_closure is None:
            from repro.lint.imports import transitive_closure

            self._snapshot_closure = transitive_closure(
                self, self.config.snapshot_roots
            )
        return self._snapshot_closure


# --------------------------------------------------------------- discovery


def _module_name(path: Path) -> str:
    """Dotted module name, climbing enclosing packages via ``__init__.py``."""
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) or path.stem


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def discover(paths: Sequence) -> List[Path]:
    """Every ``*.py`` under ``paths`` (files pass through), sorted, deduped."""
    found: List[Path] = []
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                found.append(candidate)
    return found


def load_project(paths: Sequence, config: Optional[LintConfig] = None) -> Project:
    config = config if config is not None else LintConfig()
    modules = []
    for path in discover(paths):
        source = path.read_text(encoding="utf-8")
        modules.append(Module(path, _display_path(path), _module_name(path), source))
    return Project(modules, config)


# ------------------------------------------------------------------ running


@dataclass
class LintReport:
    """Outcome of one lint run, before any baseline filtering."""

    findings: List[Finding] = field(default_factory=list)  #: unsuppressed
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()

    def as_dict(self) -> dict:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
        }


def run_lint(
    paths: Sequence,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint ``paths`` and return every finding, split by suppression state.

    ``rules`` restricts the run to the named rule ids (default: all
    registered rules).  Unknown rule ids raise :class:`LintError` --
    a typo in ``--rule`` must never silently lint nothing.
    """
    from repro.lint.rules import all_rules

    registry = all_rules()
    if rules is not None:
        unknown = sorted(set(rules) - set(registry))
        if unknown:
            raise LintError(
                f"unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(registry))})"
            )
        selected = {rid: registry[rid] for rid in rules}
    else:
        selected = registry

    project = load_project(paths, config)
    report = LintReport(
        files_checked=len(project.modules), rules_run=tuple(sorted(selected))
    )
    for module in project.modules:
        for rule in selected.values():
            for finding in rule.check(module, project):
                if module.suppressed(finding):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
