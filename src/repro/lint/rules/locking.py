"""LOCK001: exclusive flocks must unlock *and* close in a ``finally``.

The PR 8 incident: ``journal_append`` took an exclusive ``flock`` on a
*buffered* appender, wrote, and released the lock in a ``finally`` -- but
the ``with open(...)`` close ran after the unlock, so on a partial-write
error Python's buffered layer flushed the remaining bytes *outside* the
lock, tearing a concurrent appender's record mid-line.  The fix (still in
``repro/experiments/cache.py:_locked_append``) is the shape this rule
demands: raw fd, unlock in one ``finally``, ``os.close`` in a ``finally``
as well, so no buffered byte can ever trail the unlock and no exception
path can leak the fd (a leaked flocked fd wedges every later appender
for the life of the process).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.lint.rules import Rule, dotted_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import Finding, Module, Project

__all__ = ["Lock001FlockDiscipline"]

_LOCK_FNS = ("flock", "lockf")


def _mode_names(node: ast.expr) -> List[str]:
    """Flag-ish names mentioned in a lock-mode expression (handles ``|``)."""
    names = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            names.append(sub.attr)
        elif isinstance(sub, ast.Name):
            names.append(sub.id)
    return names


def _lock_call(node: ast.AST) -> Optional[str]:
    """``"EX"``/``"UN"`` if ``node`` is an flock/lockf call, else ``None``."""
    if not (isinstance(node, ast.Call) and len(node.args) >= 2):
        return None
    chain = dotted_chain(node.func)
    if not chain or chain[-1] not in _LOCK_FNS:
        return None
    modes = _mode_names(node.args[1])
    if "LOCK_EX" in modes:
        return "EX"
    if "LOCK_UN" in modes:
        return "UN"
    return None


def _fd_token(node: ast.expr) -> str:
    """Canonical text for the locked fd; ``fh.fileno()`` collapses to ``fh``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "fileno"
        and not node.args
    ):
        node = node.func.value
    return ast.dump(node)


def _closes_fd(node: ast.AST, fd_token: str) -> bool:
    """True for ``os.close(fd)`` / ``fd.close()`` on the same fd expression."""
    if not isinstance(node, ast.Call):
        return False
    chain = dotted_chain(node.func)
    if chain and chain[-1] == "close" and len(chain) >= 2 and node.args == []:
        # fd.close(): the receiver is everything but the final ".close"
        receiver = node.func
        if isinstance(receiver, ast.Attribute):
            return _fd_token(receiver.value) == fd_token
    if chain == ("os", "close") or (len(chain) == 1 and chain[0] == "close"):
        return bool(node.args) and _fd_token(node.args[0]) == fd_token
    return False


def _unlocks_fd(node: ast.AST, fd_token: str) -> bool:
    if _lock_call(node) != "UN":
        return False
    assert isinstance(node, ast.Call)
    return _fd_token(node.args[0]) == fd_token


class Lock001FlockDiscipline(Rule):
    id = "LOCK001"
    title = "flock(LOCK_EX) without unlock+close in a finally"
    incident = (
        "PR 8: journal_append released its exclusive flock in a finally "
        "but closed the buffered appender via `with` *after* the unlock; "
        "a partial-write error made the close flush buffered bytes "
        "outside the lock, tearing concurrent journal records.  Fixed by "
        "raw-fd appends with unlock and os.close both in finally blocks."
    )

    def check(self, module: "Module", project: "Project") -> Iterator["Finding"]:
        for node in ast.walk(module.tree):
            if _lock_call(node) != "EX":
                continue
            assert isinstance(node, ast.Call)
            fd_token = _fd_token(node.args[0])
            # The unlock often lives in a *sibling* nested try (lock, then
            # try/finally around the writes), so search every `finally`
            # in the enclosing function, not just ancestor tries.
            scope = module.enclosing_function(node) or module.tree
            finally_bodies: List[ast.stmt] = []
            for sub in ast.walk(scope):
                if isinstance(sub, ast.Try):
                    finally_bodies.extend(sub.finalbody)
            unlock_seen = close_seen = False
            for stmt in finally_bodies:
                for sub in ast.walk(stmt):
                    unlock_seen = unlock_seen or _unlocks_fd(sub, fd_token)
                    close_seen = close_seen or _closes_fd(sub, fd_token)
            if not unlock_seen:
                yield module.finding(
                    self.id,
                    node,
                    "exclusive flock is never released in a `finally`: any "
                    "exception between lock and unlock wedges every later "
                    "locker of this file for the life of the process",
                )
            elif not close_seen:
                yield module.finding(
                    self.id,
                    node,
                    "locked fd is not closed in a `finally`: a close that "
                    "runs after the unlock (e.g. leaving a `with open(...)` "
                    "block) can flush buffered bytes outside the lock -- the "
                    "PR 8 torn-journal bug.  Close (os.close) in a finally, "
                    "or write through an unbuffered fd",
                )
