"""WIRE001: experiment grids must survive the canonical JSON round-trip.

Grid points are cache keys *and* wire jobs: ``canonical_params``
(``repro/experiments/registry.py``) JSON-encodes every point, and the
encoded form travels over SSH pipes and scheduler spool files to remote
workers.  A value that cannot round-trip -- a set, ``bytes``, a
``range``, a non-string dict key, a non-finite float -- either crashes
at grid-build time or (worse, for ``{1: ...}`` -> ``{"1": ...}``) decodes
*differently* than it was written, so the remote worker computes a
different point than the submit side cached.  ``canonical_params``
rejects these dynamically at run time; this rule rejects them statically
at the line that writes them, including grids only exercised at
``--scale full`` which no CI lane ever builds.

The rule inspects functions registered as ``grid=`` in an
``Experiment(...)`` call (plus anything named ``grid``/``_grid`` in
scope), checking parameter defaults and every dict display reachable
from a ``return``/``yield``.  Values it cannot see statically (names,
call results) are skipped -- ``canonical_params`` remains the runtime
backstop.  Tuples are fine: the canonical form normalizes them to lists.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Set

from repro.lint.rules import Rule, dotted_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import Finding, Module, Project

__all__ = ["Wire001GridJsonSafety"]

_BAD_CONSTRUCTORS = frozenset({"set", "frozenset", "bytes", "bytearray", "range"})
_NONFINITE_LITERALS = frozenset({"inf", "-inf", "infinity", "-infinity", "nan"})


def _grid_function_names(tree: ast.Module) -> Set[str]:
    names = {"grid", "_grid"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            chain = dotted_chain(node.func)
            if chain and chain[-1] == "Experiment":
                for keyword in node.keywords:
                    if keyword.arg == "grid" and isinstance(keyword.value, ast.Name):
                        names.add(keyword.value.id)
    return names


def _bad_value_reason(node: ast.expr) -> Optional[str]:
    """Why this expression cannot survive the JSON round-trip, if visible."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set is not JSON-serializable (and iterates in hash order)"
    if isinstance(node, ast.Constant) and isinstance(node.value, bytes):
        return "bytes are not JSON-serializable"
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        if node.value != node.value or node.value in (float("inf"), float("-inf")):
            return "non-finite floats are rejected by canonical_params"
    if isinstance(node, ast.Call):
        chain = dotted_chain(node.func)
        if len(chain) == 1 and chain[0] in _BAD_CONSTRUCTORS:
            return f"{chain[0]}() is not JSON-serializable"
        if (
            len(chain) == 1
            and chain[0] == "float"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.lower() in _NONFINITE_LITERALS
        ):
            return "non-finite floats are rejected by canonical_params"
    chain = dotted_chain(node)
    if len(chain) == 2 and chain[0] == "math" and chain[1] in ("inf", "nan"):
        return "non-finite floats are rejected by canonical_params"
    return None


def _walk_values(node: ast.expr) -> Iterator[ast.expr]:
    """The expression plus every nested display element it contains."""
    yield node
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        for elt in node.elts:
            yield from _walk_values(elt)
    elif isinstance(node, ast.Dict):
        for value in node.values:
            yield from _walk_values(value)
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        yield from _walk_values(node.elt)
    elif isinstance(node, ast.DictComp):
        yield from _walk_values(node.value)


class Wire001GridJsonSafety(Rule):
    id = "WIRE001"
    title = "grid values that cannot survive the canonical JSON round-trip"
    incident = (
        "Preventive, from the PR 2 wire-safety work: canonical_params "
        "rejects non-round-trippable grid points at run time precisely "
        "because a {1: ...} key decoding as {'1': ...} once meant the "
        "remote worker and the cache disagreed about which point was "
        "being computed.  Full-scale grids that CI never builds deserve "
        "the same check statically."
    )

    def check(self, module: "Module", project: "Project") -> Iterator["Finding"]:
        config = project.config
        if not config.in_scope(module.name, config.wire_scopes):
            return
        grid_names = _grid_function_names(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef) and node.name in grid_names:
                yield from self._check_grid_function(module, node)

    def _check_grid_function(
        self, module: "Module", func: ast.FunctionDef
    ) -> Iterator["Finding"]:
        defaults = list(func.args.defaults) + [
            d for d in func.args.kw_defaults if d is not None
        ]
        for default in defaults:
            yield from self._check_expr(module, default, "parameter default")
        for node in ast.walk(func):
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Return):
                value = node.value
            elif isinstance(node, ast.Yield):
                value = node.value
            if value is not None:
                yield from self._check_expr(module, value, "grid point")

    def _check_expr(
        self, module: "Module", expr: ast.expr, where: str
    ) -> Iterator["Finding"]:
        for node in _walk_values(expr):
            reason = _bad_value_reason(node)
            if reason is not None:
                yield module.finding(
                    self.id,
                    node,
                    f"{where} cannot travel as a wire job: {reason}; grid "
                    "points must round-trip through canonical_params JSON",
                )
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if (
                        isinstance(key, ast.Constant)
                        and not isinstance(key.value, str)
                    ):
                        yield module.finding(
                            self.id,
                            key,
                            f"dict key {key.value!r} in a {where} becomes the "
                            f"string {str(key.value)!r} after the JSON "
                            "round-trip, so the remote worker computes a "
                            "different point than was cached; use string keys",
                        )
