"""Rule registry for ``repro lint``.

Every rule is a tiny class with an ``id``, a one-line ``title``, the
``incident`` that motivated it (each rule here exists because a real
bug shipped, or nearly shipped, in this repository), and a
``check(module, project)`` generator yielding
:class:`~repro.lint.engine.Finding` objects.

Adding a rule: create it in a module under ``repro/lint/rules/``,
list it in :data:`_RULE_CLASSES`, document it in
``docs/static-analysis.md``, and give it a positive (fires) and a
negative (silent) fixture under ``tests/fixtures/lint/`` --
``tests/test_lint.py`` refuses rules without a non-vacuity fixture,
mirroring the consistency oracle's seeded-violation tests.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import Finding, Module, Project

__all__ = ["Rule", "all_rules", "dotted_chain"]


class Rule:
    """Base class: subclasses set ``id``/``title``/``incident`` and ``check``."""

    id: str = "?"
    title: str = "?"
    #: the shipped (or seeded) bug this rule would have caught
    incident: str = "?"

    def check(
        self, module: "Module", project: "Project"
    ) -> Iterator["Finding"]:  # pragma: no cover - abstract
        raise NotImplementedError
        yield  # makes every override a generator by contract


def dotted_chain(node: ast.expr) -> Tuple[str, ...]:
    """``a.b.c`` -> ``("a", "b", "c")``; empty tuple for anything fancier."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def all_rules() -> Dict[str, Rule]:
    """Fresh ``{rule_id: rule_instance}`` registry, ordered by id."""
    from repro.lint.rules.async_blocking import Async001BlockingInAsync
    from repro.lint.rules.determinism import (
        Det001UnseededNondeterminism,
        Det002HashSeedDependence,
    )
    from repro.lint.rules.locking import Lock001FlockDiscipline
    from repro.lint.rules.snapshot import Snap001IsLiteralAcrossPickle
    from repro.lint.rules.wire import Wire001GridJsonSafety

    rules = [
        Async001BlockingInAsync(),
        Det001UnseededNondeterminism(),
        Det002HashSeedDependence(),
        Lock001FlockDiscipline(),
        Snap001IsLiteralAcrossPickle(),
        Wire001GridJsonSafety(),
    ]
    return {rule.id: rule for rule in sorted(rules, key=lambda r: r.id)}
