"""ASYNC001: blocking calls on the serving event loop.

``repro serve`` is one asyncio loop handling every client; a single
synchronous ``time.sleep``, subprocess wait, file read, or -- worst --
inline ``run_experiment`` freezes *all* connections for its duration
(and trips keep-alive clients into timeouts long before the work
finishes).  The serving layer's contract is that anything slower than a
dict lookup runs on the executor (``loop.run_in_executor`` /
``asyncio.to_thread``) -- see ``ServeApp._fetch_point``'s compute tier.
This rule flags known-blocking calls lexically inside ``async def``
bodies; passing the same functions *by reference* to the executor stays
legal because no call happens on the loop.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.lint.rules import Rule, dotted_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import Finding, Module, Project

__all__ = ["Async001BlockingInAsync"]

#: attribute/function names that block wherever they appear
_BLOCKING_ATTRS = frozenset({"read_text", "write_text", "read_bytes", "write_bytes"})
_EXECUTOR_FNS = frozenset({"to_thread", "run_in_executor"})


def _blocking_reason(node: ast.Call) -> Optional[str]:
    chain = dotted_chain(node.func)
    if not chain:
        # a method on a computed receiver -- Path(p).read_text() -- has no
        # dotted chain, but the method name alone is enough to flag
        if isinstance(node.func, ast.Attribute):
            chain = (node.func.attr,)
        else:
            return None
    head, tail = chain[0], chain[-1]
    if chain in (("time", "sleep"), ("sleep",)):
        return "time.sleep() stalls the whole event loop; use asyncio.sleep()"
    if head == "subprocess":
        return (
            f"subprocess.{tail}() blocks the loop on a child process; run it "
            "on the executor"
        )
    if chain in (("open",), ("io", "open"), ("os", "open")):
        return (
            "synchronous file IO on the event loop; read/write on the "
            "executor (loop.run_in_executor / asyncio.to_thread)"
        )
    if tail in _BLOCKING_ATTRS:
        return (
            f".{tail}() is synchronous file IO on the event loop; move it to "
            "the executor"
        )
    if tail == "run_experiment":
        return (
            "run_experiment() can run for minutes; it must go through the "
            "executor/worker-thread path, never inline on the loop"
        )
    return None


class Async001BlockingInAsync(Rule):
    id = "ASYNC001"
    title = "blocking call inside an async def body"
    incident = (
        "Preventive, from the PR 8 serve design: the compute tier exists "
        "precisely because one inline run_experiment() (or any sync "
        "sleep/subprocess/file IO) freezes every connection the "
        "single-loop server is handling."
    )

    def check(self, module: "Module", project: "Project") -> Iterator["Finding"]:
        config = project.config
        if not config.in_scope(module.name, config.async_scopes):
            return
        for func in ast.walk(module.tree):
            if isinstance(func, ast.AsyncFunctionDef):
                yield from self._check_async_body(module, func)

    def _check_async_body(
        self, module: "Module", func: ast.AsyncFunctionDef
    ) -> Iterator["Finding"]:
        for node in self._walk_same_frame(func):
            if not isinstance(node, ast.Call):
                continue
            reason = _blocking_reason(node)
            if reason is None:
                continue
            if self._inside_executor_dispatch(module, node, func):
                continue
            yield module.finding(self.id, node, reason)

    @staticmethod
    def _walk_same_frame(func: ast.AsyncFunctionDef):
        """Walk ``func``'s body without entering nested def/lambda frames.

        A nested ``def`` handed to the executor runs on a worker thread;
        judging its body by event-loop rules would force suppressions on
        exactly the code that did the right thing.
        """
        stack = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _inside_executor_dispatch(
        module: "Module", node: ast.Call, func: ast.AsyncFunctionDef
    ) -> bool:
        """True if ``node`` sits in the arguments of an executor dispatch."""
        current: ast.AST = node
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.Call):
                chain = dotted_chain(ancestor.func)
                if chain and chain[-1] in _EXECUTOR_FNS and current is not ancestor.func:
                    return True
            if ancestor is func:
                break
            current = ancestor
        return False
