"""SNAP001: ``is`` against interned literals across a pickle boundary.

The PR 6 incident, verbatim: ``ClcCoordinator`` and ``GlobalCoordinated``
tracked their two-phase-commit phase as module-level string sentinels and
compared with ``is``.  In a single process CPython interns those strings,
so the identity test works -- until the object crosses a pickle boundary.
A restored snapshot carries *equal but not identical* strings, every
``phase is _COMMITTING`` went quietly false, and each post-restore forced
CLC was dropped without an error.  The bug only surfaced as a trace-digest
mismatch in the resume-equivalence suite, far from its cause.

The rule flags ``is`` / ``is not`` comparisons where either operand is a
``str``/``int`` literal or a module-level name bound to a string constant,
in any module of the snapshot import closure (everything transitively
imported from the snapshot module, the federation, and the protocol
families -- i.e. everything whose instances can be pickled into a
checkpoint).  ``x is None`` / ``x is True`` stay legal: singletons
survive pickling by construction.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.lint.rules import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import Finding, Module, Project

__all__ = ["Snap001IsLiteralAcrossPickle"]


def _sentinel_description(module: "Module", node: ast.expr) -> Optional[str]:
    """Why this operand is unsafe under ``is``, or ``None`` if it is fine."""
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, bool) or value is None:
            return None  # real singletons: identity survives pickling
        if isinstance(value, str):
            return f"the string literal {value!r}"
        if isinstance(value, int):
            return f"the int literal {value!r}"
        return None
    if isinstance(node, ast.Name) and node.id in module.str_sentinels:
        return f"the module-level string sentinel {node.id}"
    return None


class Snap001IsLiteralAcrossPickle(Rule):
    id = "SNAP001"
    title = "is/is not against str/int literals on the snapshot restore path"
    incident = (
        "PR 6: ClcCoordinator/GlobalCoordinated compared their 2PC phase "
        "against module-level string sentinels with `is`; unpickled "
        "(non-interned) strings made the test false after every "
        "checkpoint restore, silently wedging post-restore forced CLCs "
        "until the resume-equivalence digests caught it."
    )

    def check(self, module: "Module", project: "Project") -> Iterator["Finding"]:
        if module.name not in project.snapshot_closure():
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Is, ast.IsNot)):
                    continue
                lhs = node.left if index == 0 else node.comparators[index - 1]
                rhs = node.comparators[index]
                described = _sentinel_description(module, lhs) or _sentinel_description(
                    module, rhs
                )
                if described is None:
                    continue
                verb = "is not" if isinstance(op, ast.IsNot) else "is"
                yield module.finding(
                    self.id,
                    node,
                    f"`{verb}` against {described}: identity does not survive "
                    "the snapshot pickle boundary (unpickled strings/ints are "
                    "equal, not identical) -- use ==/!= (the PR 6 restore "
                    "divergence)",
                )
