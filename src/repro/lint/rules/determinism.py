"""DET001/DET002: unseeded nondeterminism in the simulation substrate.

The repository's correctness story is *per-seed byte-identical replay*:
golden dispatch-trace digests, cross-backend equivalence, and
checkpoint/resume all assert that the same seed produces the same event
stream, bit for bit.  Any read of process-global entropy inside the
modules that feed that stream -- the global :mod:`random` PRNG,
wall-clock time, the process environment, hash-randomized set order --
silently breaks the contract for some future edit, and the failure shows
up as a golden-digest mismatch pages away from its cause.  These rules
make the hazard a lint error at the line that introduces it.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, Set

from repro.lint.rules import Rule, dotted_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import Finding, Module, Project

#: module-level functions of :mod:`random` that draw from (or reseed) the
#: shared global PRNG; ``random.Random(seed)`` instances are the sanctioned
#: alternative (see ``repro/sim/random.py``)
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: wall-clock reads; simulated time lives on the kernel, never the host
_WALL_CLOCK_FNS = frozenset(
    {
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "time",
        "time_ns",
    }
)

_DATETIME_NOW_FNS = frozenset({"now", "today", "utcnow"})


def _import_aliases(tree: ast.Module) -> Dict[str, Set[str]]:
    """Names bound in this module to the hazardous stdlib modules/functions."""
    aliases: Dict[str, Set[str]] = {
        "random_mod": set(),
        "time_mod": set(),
        "datetime_mod": set(),
        "datetime_cls": set(),
        "os_mod": set(),
        "environ": set(),
        "getenv": set(),
        "random_fn": set(),  # from random import shuffle [as s]
        "time_fn": set(),  # from time import time [as t]
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "random":
                    aliases["random_mod"].add(bound)
                elif alias.name == "time":
                    aliases["time_mod"].add(bound)
                elif alias.name == "datetime":
                    aliases["datetime_mod"].add(bound)
                elif alias.name == "os":
                    aliases["os_mod"].add(bound)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            for alias in node.names:
                bound = alias.asname or alias.name
                if node.module == "random" and alias.name in _GLOBAL_RANDOM_FNS:
                    aliases["random_fn"].add(bound)
                elif node.module == "time" and alias.name in _WALL_CLOCK_FNS:
                    aliases["time_fn"].add(bound)
                elif node.module == "datetime" and alias.name in ("datetime", "date"):
                    aliases["datetime_cls"].add(bound)
                elif node.module == "os" and alias.name == "environ":
                    aliases["environ"].add(bound)
                elif node.module == "os" and alias.name == "getenv":
                    aliases["getenv"].add(bound)
    return aliases


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class Det001UnseededNondeterminism(Rule):
    id = "DET001"
    title = "unseeded nondeterminism in simulation-facing code"
    incident = (
        "Preventive: golden trace digests (PR 4) and checkpoint/resume "
        "equivalence (PR 6) both assume sim/, core/, baselines/ and "
        "network/ draw entropy only from per-run seeded streams.  One "
        "module-level random.random(), wall-clock read, os.environ "
        "lookup, or hash-ordered set iteration silently breaks per-seed "
        "byte-identical replay."
    )

    def check(self, module: "Module", project: "Project") -> Iterator["Finding"]:
        config = project.config
        if not config.in_scope(module.name, config.determinism_scopes):
            return
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, aliases)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield module.finding(
                        self.id,
                        node.iter,
                        "iteration over a bare set: element order depends on "
                        "PYTHONHASHSEED; sort it (or use a list/dict) before "
                        "it can feed scheduling or digests",
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield module.finding(
                            self.id,
                            gen.iter,
                            "comprehension over a bare set: element order "
                            "depends on PYTHONHASHSEED; sort it first",
                        )
        # os.environ reads (any expression context, not just calls)
        for node in ast.walk(module.tree):
            chain = dotted_chain(node) if isinstance(node, ast.Attribute) else ()
            if (
                len(chain) == 2
                and chain[0] in aliases["os_mod"]
                and chain[1] == "environ"
            ):
                yield module.finding(
                    self.id,
                    node,
                    "os.environ read in simulation-facing code: behavior "
                    "must be a function of explicit parameters and the seed, "
                    "not of the worker's environment",
                )
            elif isinstance(node, ast.Name) and node.id in aliases["environ"]:
                if isinstance(node.ctx, ast.Load):
                    yield module.finding(
                        self.id,
                        node,
                        "os.environ read in simulation-facing code: behavior "
                        "must be a function of explicit parameters and the "
                        "seed, not of the worker's environment",
                    )

    def _check_call(
        self, module: "Module", node: ast.Call, aliases: Dict[str, Set[str]]
    ) -> Iterator["Finding"]:
        chain = dotted_chain(node.func)
        if not chain:
            return
        head, tail = chain[0], chain[-1]
        if len(chain) == 2 and head in aliases["random_mod"] and tail in _GLOBAL_RANDOM_FNS:
            yield module.finding(
                self.id,
                node,
                f"random.{tail}() uses the process-global PRNG; draw from a "
                "seeded random.Random stream (see repro.sim.random) instead",
            )
        elif len(chain) == 1 and head in aliases["random_fn"]:
            yield module.finding(
                self.id,
                node,
                f"{head}() draws from the process-global PRNG; use a seeded "
                "random.Random stream (see repro.sim.random) instead",
            )
        elif len(chain) == 2 and head in aliases["time_mod"] and tail in _WALL_CLOCK_FNS:
            yield module.finding(
                self.id,
                node,
                f"time.{tail}() reads the wall clock inside the simulation "
                "substrate; simulated time lives on the kernel (sim.now)",
            )
        elif len(chain) == 1 and head in aliases["time_fn"]:
            yield module.finding(
                self.id,
                node,
                f"{head}() reads the wall clock inside the simulation "
                "substrate; simulated time lives on the kernel (sim.now)",
            )
        elif tail in _DATETIME_NOW_FNS and (
            (len(chain) == 3 and head in aliases["datetime_mod"])
            or (len(chain) == 2 and head in aliases["datetime_cls"])
        ):
            yield module.finding(
                self.id,
                node,
                f"datetime {tail}() reads the wall clock inside the "
                "simulation substrate; results must not depend on when "
                "the run happened",
            )
        elif len(chain) == 2 and head in aliases["os_mod"] and tail == "getenv":
            yield module.finding(
                self.id,
                node,
                "os.getenv() in simulation-facing code: behavior must be a "
                "function of explicit parameters and the seed",
            )
        elif len(chain) == 1 and head in aliases["getenv"]:
            yield module.finding(
                self.id,
                node,
                "getenv() in simulation-facing code: behavior must be a "
                "function of explicit parameters and the seed",
            )
        elif (
            len(chain) == 1
            and head in ("list", "tuple", "enumerate")
            and node.args
            and _is_set_expr(node.args[0])
        ):
            yield module.finding(
                self.id,
                node,
                f"{head}() over a bare set materializes hash-seed-dependent "
                "order; wrap the set in sorted() first",
            )


class Det002HashSeedDependence(Rule):
    id = "DET002"
    title = "hash()/id() values can reach ordering or persisted output"
    incident = (
        "Preventive: str hash() is PYTHONHASHSEED-randomized per process "
        "and id() is an address -- either one feeding a sort key, a "
        "digest, or a rendered result diverges across the workers of one "
        "sweep.  sim/trace_digest.py documents the same ban for its "
        "callback fingerprints."
    )

    def check(self, module: "Module", project: "Project") -> Iterator["Finding"]:
        config = project.config
        if not config.in_scope(module.name, config.determinism_scopes):
            return
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("hash", "id")
                and node.args
            ):
                continue
            enclosing = module.enclosing_function(node)
            if enclosing is not None and enclosing.name == "__hash__":
                # the one place hash() is the point; dict/set placement is
                # process-local by construction
                continue
            yield module.finding(
                self.id,
                node,
                f"{node.func.id}() is process-specific (PYTHONHASHSEED / "
                "addresses): its value must never influence event ordering "
                "or persisted output; derive a stable key instead",
            )
