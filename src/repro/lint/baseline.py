"""Baseline file support: the committed zero-findings state.

A baseline freezes a set of *accepted* findings so the lint gate can be
turned on before every legacy finding is fixed, then ratcheted: CI runs
``repro lint --baseline``, which fails only on findings **not** in the
committed file.  This repository's committed baseline
(``tools/lint_baseline.json``) is empty -- every finding the initial
rule set surfaced was fixed or explicitly suppressed in source -- and
the intent is that it stays empty: regenerate it only to *shrink* an
interim baseline, never to absorb new findings.

Matching is line-insensitive (rule, path, message): unrelated edits that
shift a baselined finding up or down must not un-baseline it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Tuple

from repro.lint.engine import Finding, LintError

__all__ = ["DEFAULT_BASELINE", "apply_baseline", "load_baseline", "write_baseline"]

#: where ``--baseline`` / ``--update-baseline`` look without an argument
DEFAULT_BASELINE = "tools/lint_baseline.json"

_FORMAT = 1


def load_baseline(path) -> List[dict]:
    source = Path(path)
    try:
        payload = json.loads(source.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise LintError(
            f"baseline file {source} does not exist "
            "(create one with --update-baseline)"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"baseline file {source} is unreadable: {exc}") from None
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise LintError(
            f"baseline file {source} has an unknown format "
            f"(expected format={_FORMAT})"
        )
    findings = payload.get("findings", [])
    if not isinstance(findings, list):
        raise LintError(f"baseline file {source}: 'findings' must be a list")
    return findings


def write_baseline(path, findings: List[Finding]) -> None:
    payload = {
        "format": _FORMAT,
        "comment": (
            "Accepted repro-lint findings.  The committed state of this "
            "file is the gate: `repro lint --baseline` fails only on "
            "findings not listed here.  Keep it empty; shrink, never grow."
        ),
        "findings": [f.as_dict() for f in findings],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: List[Finding], baseline_entries: List[dict]
) -> Tuple[List[Finding], List[Finding]]:
    """Split ``findings`` into (new, baselined) against the baseline entries."""
    accepted = {
        (entry.get("rule"), entry.get("path"), entry.get("message"))
        for entry in baseline_entries
        if isinstance(entry, dict)
    }
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        (baselined if finding.baseline_key() in accepted else new).append(finding)
    return new, baselined
