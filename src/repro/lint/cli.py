"""``repro lint``: the determinism & concurrency contract checker CLI.

Usage::

    repro lint                        # lint the installed repro package
    repro lint src tests/fixtures     # explicit paths (files or dirs)
    repro lint --rule SNAP001         # one rule (repeatable)
    repro lint --json                 # machine-readable findings
    repro lint --baseline             # fail only on non-baselined findings
    repro lint --update-baseline      # rewrite the baseline from this run
    repro lint --list-rules           # rule catalog with motivating incidents

Exit status: 0 on zero reportable findings, 1 when findings remain,
2 on usage/configuration errors.  See ``docs/static-analysis.md`` for
the rule catalog and the suppression syntax
(``# repro-lint: ignore[RULE001] -- why it is safe``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import LintError, run_lint
from repro.lint.rules import all_rules

__all__ = ["build_parser", "default_paths", "lint_main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based determinism & concurrency contract checker for this "
            "repository (rule catalog: docs/static-analysis.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint (default: the installed repro "
            "package -- src/repro in a checkout)"
        ),
    )
    parser.add_argument(
        "--rule",
        dest="rules",
        action="append",
        default=None,
        metavar="RULE_ID",
        help="run only this rule (repeatable); see --list-rules",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON instead of ruler lines",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="PATH",
        help=(
            "fail only on findings absent from this baseline file "
            f"(default path: {DEFAULT_BASELINE})"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="PATH",
        help=(
            "write the current unsuppressed findings as the new baseline "
            f"(default path: {DEFAULT_BASELINE}) and exit 0"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (id, title, motivating incident) and exit",
    )
    return parser


def default_paths() -> List[str]:
    """The repro package directory -- ``src/repro`` when run in a checkout."""
    import repro

    return [str(Path(repro.__file__).parent)]


def _list_rules() -> int:
    for rule in all_rules().values():
        print(f"{rule.id}  {rule.title}")
        print(f"        incident: {rule.incident}")
    return 0


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    paths = args.paths or default_paths()
    try:
        report = run_lint(paths, rules=args.rules)
        findings = report.findings
        baselined = []
        if args.update_baseline is not None:
            write_baseline(args.update_baseline, findings)
            print(
                f"[lint] baseline {args.update_baseline} updated: "
                f"{len(findings)} finding(s) recorded"
            )
            return 0
        if args.baseline is not None:
            findings, baselined = apply_baseline(
                findings, load_baseline(args.baseline)
            )
    except LintError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.json:
        payload = {
            "findings": [f.as_dict() for f in findings],
            "baselined": [f.as_dict() for f in baselined],
            "suppressed": [f.as_dict() for f in report.suppressed],
            "files_checked": report.files_checked,
            "rules_run": list(report.rules_run),
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        for finding in findings:
            print(finding.format())
        bits = [
            f"{len(findings)} finding(s)",
            f"{report.files_checked} file(s)",
            f"{len(report.rules_run)} rule(s)",
        ]
        if report.suppressed:
            bits.append(f"{len(report.suppressed)} suppressed")
        if baselined:
            bits.append(f"{len(baselined)} baselined")
        print(f"[lint] {', '.join(bits)}")
    return 1 if findings else 0
