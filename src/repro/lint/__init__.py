"""``repro lint`` -- an AST-based determinism & concurrency contract checker.

The dynamic test suite proves this repository's invariants -- per-seed
byte-identical dispatch digests, pickle-safe snapshot/restore,
flock-disciplined journal appenders -- *after* a bug lands.  Two shipped
bugs (PR 6's ``is``-sentinel restore divergence, PR 8's flock released
before buffered bytes flushed) were instances of statically detectable
patterns; this package turns those post-mortems into a standing gate.

Layout:

* :mod:`repro.lint.engine` -- parsing, scoping, suppressions, reports
* :mod:`repro.lint.rules` -- the rule registry (DET001, DET002, SNAP001,
  LOCK001, ASYNC001, WIRE001), one module per hazard family
* :mod:`repro.lint.imports` -- static import closure (SNAP001's scope)
* :mod:`repro.lint.baseline` -- the committed zero-findings state
* :mod:`repro.lint.cli` -- the ``repro lint`` command

``tests/test_lint.py`` runs the analyzer over ``src/`` in tier-1 (zero
unsuppressed findings is a test) and proves every rule non-vacuous
against seeded-violation fixtures.  Catalog and how-to-add-a-rule:
``docs/static-analysis.md``.
"""

from repro.lint.engine import (
    Finding,
    LintConfig,
    LintError,
    LintReport,
    run_lint,
)
from repro.lint.rules import all_rules

__all__ = [
    "Finding",
    "LintConfig",
    "LintError",
    "LintReport",
    "all_rules",
    "run_lint",
]
