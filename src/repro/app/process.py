"""Application processes.

``compute_communicate_factory`` builds the paper's workload loop: compute
for an exponentially distributed time, then with the configured
probabilities send one message to a uniformly chosen node of some cluster.
Interrupting the process (node failure / cluster rollback) simply stops the
loop; the federation restarts it when recovery completes, which models
re-execution from the restored checkpoint.

``scripted_sender_factory`` drives deterministic scenarios (the Figure 5
worked example, protocol unit tests): an explicit list of timed sends.

:class:`Mailbox` is a minimal application sink recording deliveries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from repro.network.message import Message, NodeId
from repro.sim.process import Interrupt, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.federation import Federation
    from repro.cluster.node import Node

__all__ = ["Mailbox", "compute_communicate_factory", "scripted_sender_factory"]

AppFactory = Callable[["Node", "Federation"], object]


class Mailbox:
    """Records application-level deliveries on a node."""

    def __init__(self) -> None:
        self.messages: list = []

    def __call__(self, msg: Message) -> None:
        self.messages.append(msg)

    def __len__(self) -> int:
        return len(self.messages)

    def ids(self) -> list:
        return [m.msg_id for m in self.messages]

    def senders(self) -> list:
        return [m.src for m in self.messages]


def compute_communicate_factory() -> AppFactory:
    """The default stochastic workload (the paper's application model)."""

    def factory(node: "Node", federation: "Federation"):
        return _compute_communicate(node, federation)

    return factory


def _compute_communicate(node: "Node", federation: "Federation"):
    app = federation.application
    spec = app.spec_for(node.id.cluster)
    topology = federation.topology
    stream = federation.streams.stream(f"app/{node.id}")
    n_clusters = topology.n_clusters
    # Destination lottery: one slot per cluster plus "silence".
    probs = [spec.probability_to(d) for d in range(n_clusters)]
    silence = max(0.0, 1.0 - sum(probs))
    choices = list(range(n_clusters)) + [None]
    weights = probs + [silence]

    try:
        while True:
            delay = stream.exponential(spec.mean_compute)
            if node.sim.now + delay >= app.total_time:
                # Work until the end of the application, then stop.
                remaining = app.total_time - node.sim.now
                if remaining > 0:
                    yield Timeout(remaining)
                return
            yield Timeout(delay)
            dst_cluster = stream.choice(choices, weights=weights)
            if dst_cluster is None:
                continue
            n_nodes = topology.nodes_in(dst_cluster)
            dst_node = stream.randint(0, n_nodes - 1)
            if dst_cluster == node.id.cluster and dst_node == node.id.node:
                dst_node = (dst_node + 1) % n_nodes  # never message oneself
                if n_nodes == 1:
                    continue
            node.send_app(NodeId(dst_cluster, dst_node), spec.message_size)
    except Interrupt:
        return  # failure / rollback: the federation restarts us


def exchange_factory(
    requester_cluster: int = 0,
    responder_cluster: int = 1,
    mean_compute: float = 600.0,
    request_probability: float = 1.0,
    request_size: int = 1024,
    reply_size: int = 1024,
) -> AppFactory:
    """Request/response exchanges between two modules (§2.1).

    "Inter-group communications may be pipelined as in Figure 1 or they
    may consist of exchanges between two modules."  Nodes of the requester
    cluster alternate compute phases with requests to a random node of the
    responder cluster; the responder's application replies immediately.
    The resulting bidirectional traffic is the §5.3 regime where SNs grow
    on both sides and most messages force CLCs.
    """

    def factory(node: "Node", federation: "Federation"):
        if node.id.cluster == responder_cluster:
            node.app_sink = _make_responder(node, reply_size)
        if node.id.cluster == requester_cluster:
            return _requester_loop(
                node,
                federation,
                responder_cluster,
                mean_compute,
                request_probability,
                request_size,
            )
        return _idle_forever(node)

    return factory


def _make_responder(node: "Node", reply_size: int):
    def responder(msg: Message) -> None:
        if msg.payload.get("request") and node.up:
            node.send_app(msg.src, reply_size, payload={"reply": True})

    return responder


def _requester_loop(
    node: "Node",
    federation: "Federation",
    responder_cluster: int,
    mean_compute: float,
    request_probability: float,
    request_size: int,
):
    app = federation.application
    stream = federation.streams.stream(f"exchange/{node.id}")
    n_nodes = federation.topology.nodes_in(responder_cluster)
    try:
        while True:
            delay = stream.exponential(mean_compute)
            if node.sim.now + delay >= app.total_time:
                remaining = app.total_time - node.sim.now
                if remaining > 0:
                    yield Timeout(remaining)
                return
            yield Timeout(delay)
            if not stream.bernoulli(request_probability):
                continue
            dst = NodeId(responder_cluster, stream.randint(0, n_nodes - 1))
            node.send_app(dst, request_size, payload={"request": True})
    except Interrupt:
        return


def _idle_forever(node: "Node"):
    try:
        yield Timeout(float("1e18"))
    except Interrupt:
        return


def scripted_sender_factory(scripts: dict) -> AppFactory:
    """Deterministic senders for worked examples and tests.

    :param scripts: maps a :class:`NodeId` to an iterable of
        ``(time, dst, size)`` send instructions (absolute times, sorted).
        Nodes without a script idle forever.
    """

    normalized = {nid: sorted(items) for nid, items in scripts.items()}

    def factory(node: "Node", federation: "Federation"):
        return _scripted(node, normalized.get(node.id, ()))

    return factory


def _scripted(node: "Node", script: Iterable[tuple]):
    try:
        for at, dst, size in script:
            # A restarted script (post-rollback re-execution) skips the
            # instructions whose time already passed: deterministic
            # scenarios assert on protocol state, not on re-sent traffic.
            if at < node.sim.now:
                continue
            delay = at - node.sim.now
            if delay > 0:
                yield Timeout(delay)
            node.send_app(dst, size)
        # Stay alive (idle) so joins behave uniformly.
        yield Timeout(float("1e18"))
    except Interrupt:
        return
