"""Application processes.

``compute_communicate_factory`` builds the paper's workload loop: compute
for an exponentially distributed time, then with the configured
probabilities send one message to a uniformly chosen node of some cluster.
Interrupting the process (node failure / cluster rollback) simply stops the
loop; the federation restarts it when recovery completes, which models
re-execution from the restored checkpoint.

``scripted_sender_factory`` drives deterministic scenarios (the Figure 5
worked example, protocol unit tests): an explicit list of timed sends.

:class:`Mailbox` is a minimal application sink recording deliveries.

Snapshot support
----------------

A live generator cannot be pickled, so every application generator here is
resumable by construction (see :class:`repro.sim.snapshot.GenSpec`): the
factories return ``GenSpec`` objects instead of raw generators, each
generator takes a trailing ``_phase`` dict it labels (``phase["at"]``)
before every yield, and on restore the rebuilt generator reads that label
once and jumps to a bare re-entry ``yield`` -- no side effects, no RNG
draws -- so the pending kernel event resumes it exactly where the original
was suspended.  The fresh path (empty phase dict) is behaviorally
identical to the pre-snapshot generators: same draws from the same
streams, same yields, same sends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.network.message import Message, NodeId
from repro.sim.process import Interrupt, Timeout
from repro.sim.snapshot import GenSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.federation import Federation
    from repro.cluster.node import Node

__all__ = ["Mailbox", "compute_communicate_factory", "scripted_sender_factory"]

AppFactory = Callable[["Node", "Federation"], object]


class Mailbox:
    """Records application-level deliveries on a node."""

    def __init__(self) -> None:
        self.messages: list = []

    def __call__(self, msg: Message) -> None:
        self.messages.append(msg)

    def __len__(self) -> int:
        return len(self.messages)

    def ids(self) -> list:
        return [m.msg_id for m in self.messages]

    def senders(self) -> list:
        return [m.src for m in self.messages]


class ComputeCommunicateFactory:
    """Picklable factory for the default stochastic workload."""

    __slots__ = ()

    def __call__(self, node: "Node", federation: "Federation") -> GenSpec:
        return GenSpec(_compute_communicate, node, federation)


def compute_communicate_factory() -> AppFactory:
    """The default stochastic workload (the paper's application model)."""
    return ComputeCommunicateFactory()


def _compute_communicate(
    node: "Node", federation: "Federation", _phase: Optional[dict] = None
):
    app = federation.application
    spec = app.spec_for(node.id.cluster)
    topology = federation.topology
    stream = federation.streams.stream(f"app/{node.id}")
    n_clusters = topology.n_clusters
    # Destination lottery: one slot per cluster plus "silence".
    probs = [spec.probability_to(d) for d in range(n_clusters)]
    silence = max(0.0, 1.0 - sum(probs))
    choices = [*range(n_clusters), None]
    weights = [*probs, silence]

    ph = _phase if _phase is not None else {}
    gate = ph.get("at")
    try:
        if gate == "drain":
            # Restored mid final wait: the pending event ends the run.
            yield
            return
        working = gate == "work"
        while True:
            if working:
                working = False
                yield  # restored mid compute: pending Timeout resumes here
            else:
                delay = stream.exponential(spec.mean_compute)
                if node.sim.now + delay >= app.total_time:
                    # Work until the end of the application, then stop.
                    remaining = app.total_time - node.sim.now
                    if remaining > 0:
                        ph["at"] = "drain"
                        yield Timeout(remaining)
                    return
                ph["at"] = "work"
                yield Timeout(delay)
            dst_cluster = stream.choice(choices, weights=weights)
            if dst_cluster is None:
                continue
            n_nodes = topology.nodes_in(dst_cluster)
            dst_node = stream.randint(0, n_nodes - 1)
            if dst_cluster == node.id.cluster and dst_node == node.id.node:
                dst_node = (dst_node + 1) % n_nodes  # never message oneself
                if n_nodes == 1:
                    continue
            node.send_app(NodeId(dst_cluster, dst_node), spec.message_size)
    except Interrupt:
        return  # failure / rollback: the federation restarts us


class ExchangeFactory:
    """Picklable factory for request/response exchanges (§2.1)."""

    __slots__ = (
        "requester_cluster",
        "responder_cluster",
        "mean_compute",
        "request_probability",
        "request_size",
        "reply_size",
    )

    def __init__(
        self,
        requester_cluster: int,
        responder_cluster: int,
        mean_compute: float,
        request_probability: float,
        request_size: int,
        reply_size: int,
    ):
        self.requester_cluster = requester_cluster
        self.responder_cluster = responder_cluster
        self.mean_compute = mean_compute
        self.request_probability = request_probability
        self.request_size = request_size
        self.reply_size = reply_size

    def __call__(self, node: "Node", federation: "Federation") -> GenSpec:
        if node.id.cluster == self.responder_cluster:
            node.app_sink = _Responder(node, self.reply_size)
        if node.id.cluster == self.requester_cluster:
            return GenSpec(
                _requester_loop,
                node,
                federation,
                self.responder_cluster,
                self.mean_compute,
                self.request_probability,
                self.request_size,
            )
        return GenSpec(_idle_forever, node)


def exchange_factory(
    requester_cluster: int = 0,
    responder_cluster: int = 1,
    mean_compute: float = 600.0,
    request_probability: float = 1.0,
    request_size: int = 1024,
    reply_size: int = 1024,
) -> AppFactory:
    """Request/response exchanges between two modules (§2.1).

    "Inter-group communications may be pipelined as in Figure 1 or they
    may consist of exchanges between two modules."  Nodes of the requester
    cluster alternate compute phases with requests to a random node of the
    responder cluster; the responder's application replies immediately.
    The resulting bidirectional traffic is the §5.3 regime where SNs grow
    on both sides and most messages force CLCs.
    """
    return ExchangeFactory(
        requester_cluster,
        responder_cluster,
        mean_compute,
        request_probability,
        request_size,
        reply_size,
    )


class _Responder:
    """Picklable application sink: answer each request with one reply."""

    __slots__ = ("node", "reply_size")

    def __init__(self, node: "Node", reply_size: int):
        self.node = node
        self.reply_size = reply_size

    def __call__(self, msg: Message) -> None:
        if msg.payload.get("request") and self.node.up:
            self.node.send_app(msg.src, self.reply_size, payload={"reply": True})


def _requester_loop(
    node: "Node",
    federation: "Federation",
    responder_cluster: int,
    mean_compute: float,
    request_probability: float,
    request_size: int,
    _phase: Optional[dict] = None,
):
    app = federation.application
    stream = federation.streams.stream(f"exchange/{node.id}")
    n_nodes = federation.topology.nodes_in(responder_cluster)
    ph = _phase if _phase is not None else {}
    gate = ph.get("at")
    try:
        if gate == "drain":
            yield
            return
        working = gate == "work"
        while True:
            if working:
                working = False
                yield
            else:
                delay = stream.exponential(mean_compute)
                if node.sim.now + delay >= app.total_time:
                    remaining = app.total_time - node.sim.now
                    if remaining > 0:
                        ph["at"] = "drain"
                        yield Timeout(remaining)
                    return
                ph["at"] = "work"
                yield Timeout(delay)
            if not stream.bernoulli(request_probability):
                continue
            dst = NodeId(responder_cluster, stream.randint(0, n_nodes - 1))
            node.send_app(dst, request_size, payload={"request": True})
    except Interrupt:
        return


def _idle_forever(node: "Node", _phase: Optional[dict] = None):
    ph = _phase if _phase is not None else {}
    try:
        if ph.get("at") == "idle":
            yield
            return
        ph["at"] = "idle"
        yield Timeout(float("1e18"))
    except Interrupt:
        return


class ScriptedSenderFactory:
    """Picklable factory for deterministic timed-send scripts."""

    __slots__ = ("scripts",)

    def __init__(self, scripts: dict):
        self.scripts = {nid: tuple(sorted(items)) for nid, items in scripts.items()}

    def __call__(self, node: "Node", federation: "Federation") -> GenSpec:
        return GenSpec(_scripted, node, self.scripts.get(node.id, ()))


def scripted_sender_factory(scripts: dict) -> AppFactory:
    """Deterministic senders for worked examples and tests.

    :param scripts: maps a :class:`NodeId` to an iterable of
        ``(time, dst, size)`` send instructions (absolute times, sorted).
        Nodes without a script idle forever.
    """
    return ScriptedSenderFactory(scripts)


def _scripted(node: "Node", script: Iterable[tuple], _phase: Optional[dict] = None):
    script = tuple(script)
    ph = _phase if _phase is not None else {}
    gate = ph.get("at")
    try:
        if gate == "idle":
            yield
            return
        start = 0
        if gate == "send":
            # Restored mid wait for instruction ph["i"]: its Timeout is the
            # pending event, so commit the send without re-checking its
            # time (the original had already passed the `at < now` guard).
            yield
            idx = ph["i"]
            _at, dst, size = script[idx]
            node.send_app(dst, size)
            start = idx + 1
        for idx in range(start, len(script)):
            at, dst, size = script[idx]
            # A restarted script (post-rollback re-execution) skips the
            # instructions whose time already passed: deterministic
            # scenarios assert on protocol state, not on re-sent traffic.
            if at < node.sim.now:
                continue
            delay = at - node.sim.now
            if delay > 0:
                ph["at"] = "send"
                ph["i"] = idx
                yield Timeout(delay)
            node.send_app(dst, size)
        # Stay alive (idle) so joins behave uniformly.
        ph["at"] = "idle"
        yield Timeout(float("1e18"))
    except Interrupt:
        return
