"""Workloads calibrated to the paper's evaluation (§5).

The paper's application files are not published; probabilities here are
calibrated analytically so the *expected* message counts land on Table 1:

=====================  ======  =========================================
flow                    count   calibration
=====================  ======  =========================================
cluster 0 -> cluster 0   2920   100 nodes x 36000s / 1174.6s x 0.95269
cluster 1 -> cluster 1   2497   100 nodes x 36000s / 1435.4s x 0.99561
cluster 0 -> cluster 1    145   ... x 0.04731
cluster 1 -> cluster 0     11   ... x 0.00439
=====================  ======  =========================================

"There are lots of communications inside each cluster and few between
them.  This could correspond to a simulation running on cluster 0 and to
trace processor on cluster 1" (§5.2).
"""

from __future__ import annotations

from typing import Optional

from repro.config.application import ApplicationConfig, ClusterAppSpec
from repro.config.timers import HOUR, MINUTE, TimersConfig
from repro.network.topology import (
    ETHERNET_LIKE,
    MYRINET_LIKE,
    ClusterSpec,
    LinkSpec,
    Topology,
)

__all__ = [
    "fig9_workload",
    "pipeline_workload",
    "table1_workload",
    "table2_workload",
    "table3_workload",
]

#: the paper's 10-hour application
TOTAL_TIME = 10 * HOUR

# Table 1 calibration targets.
_C0_SENDS = 2920 + 145      # total emissions of cluster 0
_C1_SENDS = 2497 + 11       # total emissions of cluster 1


def _two_cluster_topology(nodes: int) -> Topology:
    return Topology(
        clusters=[
            ClusterSpec("cluster0", nodes, MYRINET_LIKE),
            ClusterSpec("cluster1", nodes, MYRINET_LIKE),
        ],
        inter_links={(0, 1): ETHERNET_LIKE},
    )


def table1_workload(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    clc_period_0: Optional[float] = 30 * MINUTE,
    clc_period_1: Optional[float] = None,
    gc_period: Optional[float] = None,
    messages_1_to_0: int = 11,
    message_size: int = 1024,
):
    """The §5.2 evaluation scenario (Table 1, Figures 6-8).

    Returns ``(topology, application, timers)``.  ``clc_period_1=None``
    reproduces Fig. 6/7 ("Cluster 1 delay between CLCs is set to
    infinite"); pass a finite value for Fig. 8.  ``messages_1_to_0`` scales
    the sparse reverse flow (Fig. 9 sweeps it).
    """
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    # Means keep the paper's per-node activity rate; probabilities are the
    # full-scale ratios, so a scaled-down run sees proportionally scaled
    # expected counts (e.g. 145 * scale messages 0 -> 1).
    mean0 = 100 * TOTAL_TIME / _C0_SENDS
    mean1 = 100 * TOTAL_TIME / _C1_SENDS
    p0_inter = 145.0 / _C0_SENDS
    p1_inter = min(1.0, messages_1_to_0 / _C1_SENDS)
    application = ApplicationConfig(
        clusters=[
            ClusterAppSpec(
                mean_compute=mean0,
                send_probabilities=[1.0 - p0_inter, p0_inter],
                message_size=message_size,
            ),
            ClusterAppSpec(
                mean_compute=mean1,
                send_probabilities=[p1_inter, 1.0 - p1_inter],
                message_size=message_size,
            ),
        ],
        total_time=total_time,
    )
    timers = TimersConfig(
        clc_periods=[clc_period_0, clc_period_1],
        gc_period=gc_period,
    )
    return _two_cluster_topology(nodes), application, timers


def fig9_workload(
    messages_1_to_0: int,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    clc_period: float = 30 * MINUTE,
):
    """Figure 9: "the number of messages from cluster 1 to cluster 0 ...
    is represented on the x axis"; both CLC timers at 30 minutes."""
    return table1_workload(
        nodes=nodes,
        total_time=total_time,
        clc_period_0=clc_period,
        clc_period_1=clc_period,
        messages_1_to_0=messages_1_to_0,
    )


def table2_workload(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    gc_period: Optional[float] = 2 * HOUR,
    clc_period: float = 30 * MINUTE,
):
    """Table 2: the Fig. 9 scenario at 103 messages 1->0 with a garbage
    collection "launched every 2 hours"."""
    return table1_workload(
        nodes=nodes,
        total_time=total_time,
        clc_period_0=clc_period,
        clc_period_1=clc_period,
        gc_period=gc_period,
        messages_1_to_0=103,
    )


def table3_workload(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    gc_period: Optional[float] = 2 * HOUR,
    clc_period: float = 30 * MINUTE,
    inter_messages: int = 100,
):
    """Table 3: three clusters ("Cluster 2 is a clone of cluster 1"),
    "approximately 200 messages that leave and arrive in each cluster".

    Each cluster sends ``inter_messages`` to each of the two others.
    """
    full_sends = [_C0_SENDS, _C1_SENDS, _C1_SENDS]
    specs = []
    for c in range(3):
        p_each = min(0.5, inter_messages / full_sends[c])
        probs = [p_each] * 3
        probs[c] = 1.0 - 2 * p_each
        specs.append(
            ClusterAppSpec(
                mean_compute=100 * TOTAL_TIME / full_sends[c],
                send_probabilities=probs,
            )
        )
    topology = Topology(
        clusters=[
            ClusterSpec("cluster0", nodes, MYRINET_LIKE),
            ClusterSpec("cluster1", nodes, MYRINET_LIKE),
            ClusterSpec("cluster2", nodes, MYRINET_LIKE),
        ],
        default_inter_link=ETHERNET_LIKE,
    )
    application = ApplicationConfig(clusters=specs, total_time=total_time)
    timers = TimersConfig(
        clc_periods=[clc_period] * 3,
        gc_period=gc_period,
    )
    return topology, application, timers


def pipeline_workload(
    nodes_per_stage: int = 20,
    n_stages: int = 3,
    total_time: float = 2 * HOUR,
    mean_compute: float = 120.0,
    forward_probability: float = 0.05,
    skip_probability: float = 0.0,
    clc_period: float = 15 * MINUTE,
    gc_period: Optional[float] = HOUR,
    inter_link: LinkSpec = ETHERNET_LIKE,
):
    """The Figure 1 code-coupling pipeline: Simulation -> Treatment ->
    Display, each stage on its own cluster, messages flowing downstream.

    ``skip_probability`` adds sparse stage ``i -> i+2`` messages (e.g. raw
    samples sent straight to the display).  Skip links are where the §7
    transitive-DDV extension pays off: the downstream cluster already
    learned the upstream SN through the middle stage, so the direct message
    does not force a CLC.
    """
    if n_stages < 2:
        raise ValueError("a pipeline needs at least 2 stages")
    specs = []
    for stage in range(n_stages):
        probs = [0.0] * n_stages
        outgoing = 0.0
        if stage + 1 < n_stages:
            probs[stage + 1] = forward_probability
            outgoing += forward_probability
        if skip_probability and stage + 2 < n_stages:
            probs[stage + 2] = skip_probability
            outgoing += skip_probability
        probs[stage] = 1.0 - outgoing
        specs.append(
            ClusterAppSpec(mean_compute=mean_compute, send_probabilities=probs)
        )
    topology = Topology(
        clusters=[
            ClusterSpec(f"stage{i}", nodes_per_stage, MYRINET_LIKE)
            for i in range(n_stages)
        ],
        default_inter_link=inter_link,
    )
    application = ApplicationConfig(clusters=specs, total_time=total_time)
    timers = TimersConfig(
        clc_periods=[clc_period] * n_stages,
        gc_period=gc_period,
    )
    return topology, application, timers
