"""Synthetic code-coupling applications.

The paper's workloads are stochastic: each process alternates exponential
compute phases with probabilistic message emissions, per the *application
file* (§5.1).  This subpackage provides:

* :mod:`~repro.app.process` -- the compute/communicate loop run on every
  node, plus deterministic scripted senders and mailboxes for tests,
* :mod:`~repro.app.workloads` -- ready-made configurations calibrated to
  the paper's evaluation (Table 1 counts, Figure 9 sweeps, the Table 2/3 GC
  scenarios, and the Figure 1 pipeline).
"""

from repro.app.process import (
    Mailbox,
    compute_communicate_factory,
    exchange_factory,
    scripted_sender_factory,
)
from repro.app.workloads import (
    fig9_workload,
    pipeline_workload,
    table1_workload,
    table2_workload,
    table3_workload,
)

__all__ = [
    "Mailbox",
    "compute_communicate_factory",
    "exchange_factory",
    "fig9_workload",
    "pipeline_workload",
    "scripted_sender_factory",
    "table1_workload",
    "table2_workload",
    "table3_workload",
]
