"""Command-line runner, mirroring the paper's simulator invocation.

The original simulator consumed three files (topology, application, timers)
and printed statistical data.  Usage::

    hc3i-sim --topology topo.json --application app.json --timers timers.json
    hc3i-sim --scenario scenario.json --protocol hc3i-transitive --seed 7

or, without installing the entry point::

    python -m repro.cli --scenario scenario.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.cluster.federation import Federation
from repro.config.loader import ScenarioConfig, load_scenario
from repro.core.protocol import protocol_names
from repro.sim.trace import TraceLevel

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hc3i-sim",
        description="Discrete-event simulation of the HC3I checkpointing protocol.",
    )
    parser.add_argument("--scenario", help="single JSON file with all three sections")
    parser.add_argument("--topology", help="topology file (JSON)")
    parser.add_argument("--application", help="application file (JSON)")
    parser.add_argument("--timers", help="timers file (JSON)")
    parser.add_argument(
        "--protocol",
        default=None,
        help=f"protocol to run ({', '.join(protocol_names())})",
    )
    parser.add_argument("--seed", type=int, default=None, help="root random seed")
    parser.add_argument(
        "--until", type=float, default=None, help="stop at this simulated time (s)"
    )
    parser.add_argument(
        "--trace",
        choices=["none", "protocol", "message", "debug"],
        default="none",
        help="trace verbosity",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit results as JSON instead of tables"
    )
    parser.add_argument(
        "--experiment",
        help=(
            "run a named paper experiment instead of a scenario "
            f"({', '.join(sorted(EXPERIMENTS))})"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=["full", "small"],
        default="small",
        help="experiment scale: 'full' = the paper's 100 nodes / 10 h",
    )
    return parser


def _experiment_registry() -> dict:
    from repro.experiments import (
        baseline_comparison,
        clc_delay_sweep,
        cluster1_timer_sweep,
        communication_pattern_sweep,
        gc_three_clusters,
        gc_two_clusters,
        incremental_checkpoint_ablation,
        message_logging_ablation,
        no_gc_reference,
        replication_degree_sweep,
        table1_message_counts,
        transitive_ddv_ablation,
    )

    scaled = {
        "table1": table1_message_counts,
        "fig6-fig7": clc_delay_sweep,
        "fig8": cluster1_timer_sweep,
        "fig9": communication_pattern_sweep,
        "table2": gc_two_clusters,
        "table3": gc_three_clusters,
        "no-gc": no_gc_reference,
    }
    from repro.experiments import federation_scaling, mtbf_sweep, multi_seed_robustness, protocol_overhead

    scaled["overhead"] = protocol_overhead
    scaled["robustness"] = multi_seed_robustness
    fixed = {
        "ablation-transitive": transitive_ddv_ablation,
        "ablation-logging": message_logging_ablation,
        "ablation-incremental": incremental_checkpoint_ablation,
        "ablation-replication": replication_degree_sweep,
        "baselines": baseline_comparison,
        "mtbf": mtbf_sweep,
        "scaling": federation_scaling,
    }
    return {"scaled": scaled, "fixed": fixed}


EXPERIMENTS = tuple(
    list(_experiment_registry()["scaled"]) + list(_experiment_registry()["fixed"])
)


def _run_experiment(name: str, scale: str) -> int:
    registry = _experiment_registry()
    if name in registry["scaled"]:
        kwargs = (
            {"nodes": 100, "total_time": 36000.0}
            if scale == "full"
            else {"nodes": 10, "total_time": 7200.0}
        )
        exp = registry["scaled"][name](**kwargs)
    elif name in registry["fixed"]:
        exp = registry["fixed"][name]()
    else:
        raise SystemExit(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    print(exp.render())
    return 0


def _load(args: argparse.Namespace) -> ScenarioConfig:
    if args.scenario:
        return load_scenario(args.scenario, args.scenario, args.scenario)
    if not (args.topology and args.application and args.timers):
        raise SystemExit(
            "either --scenario or all of --topology/--application/--timers required"
        )
    return load_scenario(args.topology, args.application, args.timers)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment:
        return _run_experiment(args.experiment, args.scale)
    scenario = _load(args)
    if args.protocol:
        scenario.protocol = args.protocol
    if args.seed is not None:
        scenario.seed = args.seed
    level = {
        "none": TraceLevel.NONE,
        "protocol": TraceLevel.PROTOCOL,
        "message": TraceLevel.MESSAGE,
        "debug": TraceLevel.DEBUG,
    }[args.trace]
    fed = Federation(
        scenario.topology,
        scenario.application,
        scenario.timers,
        protocol=scenario.protocol,
        protocol_options=scenario.protocol_options,
        seed=scenario.seed,
        trace_level=level,
    )
    results = fed.run(until=args.until)

    if args.json:
        payload = {
            "protocol": results.protocol,
            "duration": results.duration,
            "events": results.events,
            "messages": {f"{i}->{j}": v for (i, j), v in results.messages.items()},
            "protocol_messages": results.protocol_messages,
            "clusters": results.clusters,
            "stats": results.stats,
        }
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
        return 0

    print(f"protocol={results.protocol} seed={results.seed} "
          f"duration={results.duration:g}s events={results.events}")
    rows = [(f"c{i}", f"c{j}", v) for (i, j), v in sorted(results.messages.items())]
    print(format_table(["from", "to", "app messages"], rows, title="-- traffic --"))
    clc_rows = []
    for c in range(fed.topology.n_clusters):
        counts = results.clc_counts(c)
        clc_rows.append(
            (f"c{c}", counts["initial"], counts["unforced"], counts["forced"],
             counts["total"], results.stored_clcs(c))
        )
    print(format_table(
        ["cluster", "initial", "unforced", "forced", "total", "stored"],
        clc_rows,
        title="-- committed CLCs --",
    ))
    print(f"protocol messages: {results.protocol_messages}")
    if args.trace != "none":
        for record in fed.tracer.records:
            print(f"{record.time:14.6f}  {record.kind:20s} {record.fields}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
