"""Command-line runner, mirroring the paper's simulator invocation.

The original simulator consumed three files (topology, application, timers)
and printed statistical data.  Usage::

    hc3i-sim --topology topo.json --application app.json --timers timers.json
    hc3i-sim --scenario scenario.json --protocol hc3i-transitive --seed 7

or, without installing the entry point::

    python -m repro.cli --scenario scenario.json

Paper sweeps run through the parallel experiment engine::

    repro sweep --list
    repro sweep table1 --jobs 4
    repro sweep fig6-fig7 --scale tiny --no-cache
    repro sweep fig8 --set delays_min=[5,15]
    repro sweep table1 --backend ssh --hosts nodeA,nodeB:4
    repro sweep fig9 --backend slurm --sbatch-opt=--partition=short
    repro sweep fig9 --backend k8s --namespace sweeps

Component ablations rank what each HC3I piece buys::

    repro ablate hc3i --scale tiny
    repro ablate hc3i --metric checkpoints --json

Federation cache sync moves finished results between sites::

    repro cache export siteA.tar.gz
    repro cache import siteA.tar.gz          # at site B
    repro cache merge /mnt/siteA-cache ~/.cache/hc3i-repro

The static determinism/concurrency contract checker
(``docs/static-analysis.md``)::

    repro lint
    repro lint --list-rules

See ``docs/sweeps.md`` for the sweep-engine guide (scales, caching,
multi-host execution, batch schedulers, cache sync) and
``docs/architecture.md`` for the module map.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.cluster.federation import Federation
from repro.config.loader import ScenarioConfig, load_scenario
from repro.core.protocol import protocol_names
from repro.sim.trace import TraceLevel

__all__ = [
    "main",
    "build_parser",
    "build_ablate_parser",
    "build_sweep_parser",
    "build_cache_parser",
    "build_lint_parser",
    "build_serve_parser",
]


def build_lint_parser() -> argparse.ArgumentParser:
    """Parser for ``repro lint`` (defined in :mod:`repro.lint.cli`)."""
    from repro.lint.cli import build_parser as build

    return build()

#: grid overrides per --scale profile ("full" = the grids' paper defaults)
SCALE_PROFILES = {
    "full": {},
    "small": {"nodes": 10, "total_time": 7200.0},
    "tiny": {"nodes": 4, "total_time": 1800.0},
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hc3i-sim",
        description="Discrete-event simulation of the HC3I checkpointing protocol.",
    )
    parser.add_argument("--scenario", help="single JSON file with all three sections")
    parser.add_argument("--topology", help="topology file (JSON)")
    parser.add_argument("--application", help="application file (JSON)")
    parser.add_argument("--timers", help="timers file (JSON)")
    parser.add_argument(
        "--protocol",
        default=None,
        help=f"protocol to run ({', '.join(protocol_names())})",
    )
    parser.add_argument("--seed", type=int, default=None, help="root random seed")
    parser.add_argument(
        "--until", type=float, default=None, help="stop at this simulated time (s)"
    )
    parser.add_argument(
        "--trace",
        choices=["none", "protocol", "message", "debug"],
        default="none",
        help="trace verbosity",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit results as JSON instead of tables"
    )
    parser.add_argument(
        "--experiment",
        help=(
            "run a named paper experiment instead of a scenario "
            f"({', '.join(sorted(EXPERIMENTS))})"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=["full", "small"],
        default="small",
        help="experiment scale: 'full' = the paper's 100 nodes / 10 h",
    )
    return parser


def _experiment_names() -> list:
    from repro.experiments import registry

    return registry.names()


EXPERIMENTS = tuple(_experiment_names())


def _sweep_overrides(
    experiment,
    scale: str,
    seed: Optional[int] = None,
    sets: Optional[dict] = None,
) -> dict:
    """Grid overrides for one experiment under a --scale profile.

    Scale keys an experiment's grid does not understand are dropped
    silently (that is what makes one profile applicable to heterogeneous
    grids), but explicit ``--seed`` / ``--set key=value`` overrides must
    never be ignored: an unknown key is an error, not a no-op.
    """
    overrides = dict(SCALE_PROFILES[scale]) if experiment.scaled else {}
    for key, value in (sets or {}).items():
        if key not in experiment.grid_kwargs({key: value}):
            import inspect

            accepted = sorted(inspect.signature(experiment.grid).parameters)
            raise SystemExit(
                f"experiment {experiment.name!r} does not accept --set {key}=...; "
                f"its grid takes: {', '.join(accepted) or '(nothing)'}"
            )
        overrides[key] = value
    if seed is not None:
        if "seed" not in experiment.grid_kwargs({"seed": seed}):
            raise SystemExit(
                f"experiment {experiment.name!r} does not accept --seed"
            )
        overrides["seed"] = seed
    return overrides


def coerce_set_value(raw: str):
    """Type a ``--set`` value: bool, int, float, JSON lists, else str.

    ``true``/``false`` (any case) become booleans; anything ``json.loads``
    accepts keeps its JSON type (``5`` -> int, ``5.0`` -> float,
    ``[5, 15]`` -> list); everything else stays a string.  Non-finite
    floats are rejected here with a clean error -- grid points must
    survive a strict JSON round-trip, so NaN/Infinity could never run.
    """
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        return raw
    if _has_non_finite(value):
        raise SystemExit(f"--set value {raw!r} contains a non-finite number")
    return value


def _has_non_finite(value) -> bool:
    if isinstance(value, float):
        return not math.isfinite(value)
    if isinstance(value, list):
        return any(_has_non_finite(v) for v in value)
    if isinstance(value, dict):
        return any(_has_non_finite(v) for v in value.values())
    return False


def _parse_set_overrides(pairs) -> dict:
    sets = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects KEY=VALUE, got {pair!r}")
        sets[key] = coerce_set_value(raw)
    return sets


def _run_experiment(name: str, scale: str) -> int:
    """Legacy ``--experiment`` path: one serial, uncached run."""
    from repro.experiments import registry
    from repro.experiments.runner import run_experiment

    try:
        experiment = registry.get(name)
    except KeyError:
        raise SystemExit(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    report = run_experiment(experiment, overrides=_sweep_overrides(experiment, scale))
    print(report.result.render())
    return 0


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description=(
            "Run a registered paper experiment as a parallel, cached sweep."
        ),
    )
    parser.add_argument(
        "name",
        nargs="?",
        help="experiment to sweep (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered experiments and exit"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for cache-missing grid points (default 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every grid point, bypassing the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/hc3i-repro)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALE_PROFILES),
        default="small",
        help="grid scale: 'full' = the paper's 100 nodes / 10 h",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the grid seed")
    parser.add_argument(
        "--set",
        dest="sets",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "override one grid kwarg (repeatable); values are typed: "
            "true/false -> bool, 5 -> int, 5.0 -> float, [5,15] -> list, else str"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=["local", "ssh", "slurm", "k8s"],
        default="local",
        help=(
            "where cache-missing points execute: 'local' (process pool, default), "
            "'ssh' (fan out to --hosts), 'slurm' (sbatch array jobs) or "
            "'k8s' (indexed-completion kubernetes jobs)"
        ),
    )
    parser.add_argument(
        "--hosts",
        default=None,
        help=(
            "ssh backend roster: comma list ('nodeA,nodeB:4', ':N' = concurrent "
            "slots) or a hosts.toml path (see docs/sweeps.md)"
        ),
    )
    parser.add_argument(
        "--spool",
        default=None,
        help=(
            "slurm/k8s backend spool directory, visible to submit machine and "
            "compute nodes/pods (default: $REPRO_SLURM_SPOOL or "
            "<cache dir>/slurm-spool; $REPRO_K8S_SPOOL or <cache dir>/k8s-spool)"
        ),
    )
    parser.add_argument(
        "--sbatch-opt",
        dest="sbatch_opts",
        action="append",
        default=[],
        metavar="OPT",
        help=(
            "extra #SBATCH line for slurm array jobs (repeatable), e.g. "
            "--sbatch-opt=--partition=short --sbatch-opt=--time=30"
        ),
    )
    parser.add_argument(
        "--namespace",
        default=None,
        help="k8s backend: namespace to create sweep jobs in (default: the context's)",
    )
    parser.add_argument(
        "--k8s-opt",
        dest="k8s_opts",
        action="append",
        default=[],
        metavar="OPT",
        help=(
            "extra kubectl argument for the k8s backend (repeatable), e.g. "
            "--k8s-opt=--context=federation-b --k8s-opt=--kubeconfig=/path"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=float,
        default=None,
        metavar="SIM_SECONDS",
        help=(
            "snapshot each running grid point every SIM_SECONDS of simulated "
            "time, so a requeued (lost/evicted) point resumes from its latest "
            "snapshot instead of recomputing from zero (see docs/sweeps.md)"
        ),
    )
    parser.add_argument(
        "--checkpoint-wall",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock throttle: skip an interval snapshot when the previous "
            "one was written less than SECONDS ago (requires --checkpoint-every)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "snapshot spool directory (default: <cache dir>/checkpoints, or "
            "<spool>/snapshots for the slurm/k8s backends; requires "
            "--checkpoint-every)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the reduced result as JSON instead of tables",
    )
    return parser


def _sweep_main(argv: Sequence[str]) -> int:
    from repro.experiments import registry
    from repro.experiments.backends import create_backend
    from repro.experiments.cache import ResultCache
    from repro.experiments.runner import run_experiment

    args = build_sweep_parser().parse_args(argv)
    if args.list:
        rows = [
            (exp.name, "yes" if exp.scaled else "no", exp.title)
            for exp in registry.all_experiments()
        ]
        print(format_table(["name", "scaled", "title"], rows,
                           title="-- registered experiments --"))
        return 0
    if not args.name:
        raise SystemExit("repro sweep: an experiment name (or --list) is required")
    try:
        experiment = registry.get(args.name)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None
    cache = None
    if not args.no_cache:
        cache = ResultCache(root=args.cache_dir)
    overrides = _sweep_overrides(
        experiment, args.scale, args.seed, _parse_set_overrides(args.sets)
    )
    if args.hosts and args.backend != "ssh":
        # same rule as --set/--seed: an explicit flag is never a silent no-op
        raise SystemExit(
            f"--hosts only applies to --backend ssh (got --backend {args.backend})"
        )
    if args.sbatch_opts and args.backend != "slurm":
        raise SystemExit(
            f"--sbatch-opt directives only apply to --backend slurm "
            f"(got --backend {args.backend})"
        )
    if args.spool and args.backend not in ("slurm", "k8s"):
        raise SystemExit(
            f"--spool/--sbatch-opt only apply to --backend slurm/k8s "
            f"(--sbatch-opt: slurm only; got --backend {args.backend})"
        )
    if (args.namespace or args.k8s_opts) and args.backend != "k8s":
        raise SystemExit(
            f"--namespace/--k8s-opt only apply to --backend k8s "
            f"(got --backend {args.backend})"
        )
    if (
        args.checkpoint_wall is not None or args.checkpoint_dir
    ) and args.checkpoint_every is None:
        # same rule as --set/--hosts: an explicit flag is never a silent no-op
        raise SystemExit(
            "--checkpoint-wall/--checkpoint-dir require --checkpoint-every"
        )
    backend_kwargs: dict = {}
    if args.backend in ("slurm", "k8s"):
        if args.spool:
            backend_kwargs["spool"] = args.spool
        elif args.cache_dir:
            # keep the promise of "<cache dir>/<scheduler>-spool": an explicit
            # --cache-dir (often the cluster-shared filesystem) carries the
            # spool with it
            from pathlib import Path

            backend_kwargs["spool"] = Path(args.cache_dir) / f"{args.backend}-spool"
    if args.backend == "slurm":
        backend_kwargs["sbatch_options"] = tuple(args.sbatch_opts)
        backend_kwargs["python"] = sys.executable
    if args.backend == "k8s":
        backend_kwargs["namespace"] = args.namespace
        backend_kwargs["kubectl_options"] = tuple(args.k8s_opts)
        # pods run their own interpreter; against the local stub scheduler
        # this process's python is the right default, on a real cluster
        # $REPRO_K8S_PYTHON names the interpreter inside the image
        backend_kwargs["python"] = os.environ.get("REPRO_K8S_PYTHON", sys.executable)
    checkpoint_env: dict = {}
    if args.checkpoint_every is not None:
        from pathlib import Path

        from repro.experiments import checkpoint as checkpoint_mod
        from repro.experiments.cache import default_cache_dir

        if args.backend in ("slurm", "k8s"):
            # the policy travels inside each wire job; snapshots default to
            # <spool>/snapshots so compute nodes/pods can reach them
            policy: dict = {
                "every": args.checkpoint_every,
                "wall": args.checkpoint_wall,
            }
            if args.checkpoint_dir:
                policy["dir"] = args.checkpoint_dir
            backend_kwargs["checkpoint"] = policy
        else:
            # local/ssh: workers pick the policy up from the environment
            root = Path(cache.root) if cache is not None else default_cache_dir()
            ckpt_dir = (
                Path(args.checkpoint_dir)
                if args.checkpoint_dir
                else root / "checkpoints"
            )
            checkpoint_env = {
                checkpoint_mod.ENV_EVERY: str(args.checkpoint_every),
                checkpoint_mod.ENV_DIR: str(ckpt_dir),
            }
            if args.checkpoint_wall is not None:
                checkpoint_env[checkpoint_mod.ENV_WALL] = str(args.checkpoint_wall)
    try:
        backend = create_backend(
            args.backend, jobs=args.jobs, hosts=args.hosts, **backend_kwargs
        )
    except ValueError as exc:
        raise SystemExit(f"repro sweep: {exc}") from None
    saved_env = {k: os.environ.get(k) for k in checkpoint_env}
    os.environ.update(checkpoint_env)
    try:
        report = run_experiment(
            experiment,
            overrides=overrides,
            jobs=args.jobs,
            cache=cache,
            backend=backend,
        )
    finally:
        backend.shutdown()
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    result = report.result
    if args.json:
        payload = {
            "experiment": report.name,
            "scale": args.scale,
            "points": report.points,
            "cache_hits": report.cache_hits,
            "executed": report.executed,
            "backend": report.backend,
            "host_counts": dict(report.host_counts),
            "retries": report.retries,
            "name": result.name,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
            "x_label": result.x_label,
            "xs": list(result.xs),
            "series": {k: list(v) for k, v in result.series.items()},
            "notes": list(result.notes),
        }
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
    else:
        print(result.render())
        print(f"[sweep] {report.summary()}")
    return 0


#: ablation targets: positional name -> the experiment that ablates it
ABLATE_TARGETS = {"hc3i": "ablation-components"}


def build_ablate_parser() -> argparse.ArgumentParser:
    from repro.experiments.ablations import ABLATION_METRICS

    parser = argparse.ArgumentParser(
        prog="repro ablate",
        description=(
            "Leave-one-out component ablation with a ranked importance "
            "report (runs through the sweep engine and cache)."
        ),
    )
    parser.add_argument(
        "target",
        choices=sorted(ABLATE_TARGETS),
        help="protocol whose components to ablate",
    )
    parser.add_argument(
        "--metric",
        choices=ABLATION_METRICS,
        default="lost_work",
        help="metric the importance ranking uses (default: lost_work)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for cache-missing configurations (default 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every configuration, bypassing the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/hc3i-repro)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALE_PROFILES),
        default="small",
        help="grid scale: 'full' = the paper's 100 nodes / 10 h",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the grid seed")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the ranked report as JSON instead of markdown",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also write report.json + report.md into DIR",
    )
    return parser


def _ablate_main(argv: Sequence[str]) -> int:
    from repro.experiments import registry
    from repro.experiments.ablations import (
        component_importance,
        render_importance_markdown,
    )
    from repro.experiments.cache import ResultCache
    from repro.experiments.runner import run_experiment

    args = build_ablate_parser().parse_args(argv)
    experiment = registry.get(ABLATE_TARGETS[args.target])
    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    overrides = _sweep_overrides(experiment, args.scale, args.seed)
    report = run_experiment(
        experiment, overrides=overrides, jobs=args.jobs, cache=cache
    )
    result = report.result
    ranking = component_importance(result, metric=args.metric)
    markdown = render_importance_markdown(ranking)
    payload = {
        "target": args.target,
        "experiment": report.name,
        "scale": args.scale,
        "points": report.points,
        "cache_hits": report.cache_hits,
        "executed": report.executed,
        "metric": args.metric,
        "ranking": ranking,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
    }
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        (out / "report.json").write_text(
            json.dumps(payload, indent=2, default=str) + "\n"
        )
        (out / "report.md").write_text(markdown + "\n")
    if args.json:
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
    else:
        print(result.render())
        print()
        print(markdown)
        print(f"[ablate] {report.summary()}")
    return 0


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description=(
            "Federation cache sync: move result-cache entries between sites "
            "with their provenance journal."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    export = sub.add_parser(
        "export", help="pack the local cache into a portable .tar.gz archive"
    )
    export.add_argument("archive", help="archive path to write (.tar.gz)")
    export.add_argument(
        "--cache-dir",
        default=None,
        help="cache to export (default: $REPRO_CACHE_DIR or ~/.cache/hc3i-repro)",
    )

    imp = sub.add_parser(
        "import", help="import an exported archive (or another cache dir)"
    )
    imp.add_argument("source", help="archive file or cache directory to import")
    imp.add_argument(
        "--cache-dir",
        default=None,
        help="destination cache (default: $REPRO_CACHE_DIR or ~/.cache/hc3i-repro)",
    )
    imp.add_argument(
        "--allow-mismatch",
        action="store_true",
        help=(
            "also import entries computed under different repro sources "
            "(content-addressed, so they stay inert until the code matches)"
        ),
    )

    merge = sub.add_parser("merge", help="merge one cache directory into another")
    merge.add_argument("source", help="source cache directory")
    merge.add_argument("dest", help="destination cache directory")
    merge.add_argument(
        "--allow-mismatch",
        action="store_true",
        help="also merge entries computed under different repro sources",
    )
    return parser


def _cache_main(argv: Sequence[str]) -> int:
    from repro.experiments.cache import ResultCache
    from repro.experiments.cache_sync import (
        CacheSyncError,
        export_cache,
        import_cache,
        merge_caches,
    )

    args = build_cache_parser().parse_args(argv)
    try:
        if args.command == "export":
            report = export_cache(ResultCache(root=args.cache_dir), args.archive)
        elif args.command == "import":
            report = import_cache(
                ResultCache(root=args.cache_dir),
                args.source,
                allow_mismatch=args.allow_mismatch,
            )
        else:
            report = merge_caches(
                args.source, args.dest, allow_mismatch=args.allow_mismatch
            )
    except CacheSyncError as exc:
        raise SystemExit(f"repro cache: {exc}") from None
    print(report.summary())
    if report.mismatched_keys:
        sample = ", ".join(key[:12] + "..." for key in report.mismatched_keys)
        print(f"[cache {report.operation}] mismatched keys (sample): {sample}")
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve sweep results over HTTP: registry enumeration, memoized "
            "grid-point fetches (hot tier over the result cache), streamed "
            "sweep launches, and /stats observability.  See docs/serve.md."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8642, help="bind port, 0 = ephemeral (default: %(default)s)")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache to serve (default: $REPRO_CACHE_DIR or ~/.cache/hc3i-repro)",
    )
    parser.add_argument(
        "--hot-mb",
        type=float,
        default=64.0,
        help="in-memory hot-tier budget in MiB, 0 disables it (default: %(default)s)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        help="concurrent point computes before queueing (default: %(default)s)",
    )
    parser.add_argument(
        "--queue-size",
        type=int,
        default=16,
        help="queued computes beyond --max-inflight before 429s (default: %(default)s)",
    )
    parser.add_argument(
        "--max-sweeps",
        type=int,
        default=2,
        help="concurrent streamed sweeps before 429s (default: %(default)s)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-request compute deadline in seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--journal-shards",
        type=int,
        default=4,
        help="provenance-journal shard count for concurrent writers (default: %(default)s)",
    )
    return parser


def _serve_main(argv: Sequence[str]) -> int:
    import asyncio

    from repro.experiments.cache import ResultCache
    from repro.serve import HttpServer, ServeApp

    args = build_serve_parser().parse_args(argv)
    cache = ResultCache(root=args.cache_dir, journal_shards=args.journal_shards)
    app = ServeApp(
        cache=cache,
        hot_mb=args.hot_mb,
        max_inflight=args.max_inflight,
        queue_size=args.queue_size,
        max_sweeps=args.max_sweeps,
        request_timeout=args.timeout,
    )
    server = HttpServer(app.handle, host=args.host, port=args.port)

    async def _run() -> None:
        await server.start()
        print(f"repro serve: listening on http://{server.host}:{server.port} "
              f"(cache: {cache.root}, hot tier: {args.hot_mb:g} MiB)")
        sys.stdout.flush()
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        app.close()
    return 0


def _load(args: argparse.Namespace) -> ScenarioConfig:
    if args.scenario:
        return load_scenario(args.scenario, args.scenario, args.scenario)
    if not (args.topology and args.application and args.timers):
        raise SystemExit(
            "either --scenario or all of --topology/--application/--timers required"
        )
    return load_scenario(args.topology, args.application, args.timers)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "ablate":
        return _ablate_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.lint.cli import lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment:
        return _run_experiment(args.experiment, args.scale)
    scenario = _load(args)
    if args.protocol:
        scenario.protocol = args.protocol
    if args.seed is not None:
        scenario.seed = args.seed
    level = {
        "none": TraceLevel.NONE,
        "protocol": TraceLevel.PROTOCOL,
        "message": TraceLevel.MESSAGE,
        "debug": TraceLevel.DEBUG,
    }[args.trace]
    fed = Federation(
        scenario.topology,
        scenario.application,
        scenario.timers,
        protocol=scenario.protocol,
        protocol_options=scenario.protocol_options,
        seed=scenario.seed,
        trace_level=level,
    )
    results = fed.run(until=args.until)

    if args.json:
        payload = {
            "protocol": results.protocol,
            "duration": results.duration,
            "events": results.events,
            "messages": {f"{i}->{j}": v for (i, j), v in results.messages.items()},
            "protocol_messages": results.protocol_messages,
            "clusters": results.clusters,
            "stats": results.stats,
        }
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
        return 0

    print(f"protocol={results.protocol} seed={results.seed} "
          f"duration={results.duration:g}s events={results.events}")
    rows = [(f"c{i}", f"c{j}", v) for (i, j), v in sorted(results.messages.items())]
    print(format_table(["from", "to", "app messages"], rows, title="-- traffic --"))
    clc_rows = []
    for c in range(fed.topology.n_clusters):
        counts = results.clc_counts(c)
        clc_rows.append(
            (f"c{c}", counts["initial"], counts["unforced"], counts["forced"],
             counts["total"], results.stored_clcs(c))
        )
    print(format_table(
        ["cluster", "initial", "unforced", "forced", "total", "stored"],
        clc_rows,
        title="-- committed CLCs --",
    ))
    print(f"protocol messages: {results.protocol_messages}")
    if args.trace != "none":
        for record in fed.tracer.records:
            print(f"{record.time:14.6f}  {record.kind:20s} {record.fields}")
    return 0


def console_main() -> int:  # pragma: no cover
    """Entry point for the installed scripts; tames ``repro ... | head``."""
    try:
        return main()
    except BrokenPipeError:
        # reopen stdout on devnull so interpreter teardown doesn't warn
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(console_main())
