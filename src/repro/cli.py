"""Command-line runner, mirroring the paper's simulator invocation.

The original simulator consumed three files (topology, application, timers)
and printed statistical data.  Usage::

    hc3i-sim --topology topo.json --application app.json --timers timers.json
    hc3i-sim --scenario scenario.json --protocol hc3i-transitive --seed 7

or, without installing the entry point::

    python -m repro.cli --scenario scenario.json

Paper sweeps run through the parallel experiment engine::

    repro sweep --list
    repro sweep table1 --jobs 4
    repro sweep fig6-fig7 --scale tiny --no-cache
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.cluster.federation import Federation
from repro.config.loader import ScenarioConfig, load_scenario
from repro.core.protocol import protocol_names
from repro.sim.trace import TraceLevel

__all__ = ["main", "build_parser", "build_sweep_parser"]

#: grid overrides per --scale profile ("full" = the grids' paper defaults)
SCALE_PROFILES = {
    "full": {},
    "small": {"nodes": 10, "total_time": 7200.0},
    "tiny": {"nodes": 4, "total_time": 1800.0},
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hc3i-sim",
        description="Discrete-event simulation of the HC3I checkpointing protocol.",
    )
    parser.add_argument("--scenario", help="single JSON file with all three sections")
    parser.add_argument("--topology", help="topology file (JSON)")
    parser.add_argument("--application", help="application file (JSON)")
    parser.add_argument("--timers", help="timers file (JSON)")
    parser.add_argument(
        "--protocol",
        default=None,
        help=f"protocol to run ({', '.join(protocol_names())})",
    )
    parser.add_argument("--seed", type=int, default=None, help="root random seed")
    parser.add_argument(
        "--until", type=float, default=None, help="stop at this simulated time (s)"
    )
    parser.add_argument(
        "--trace",
        choices=["none", "protocol", "message", "debug"],
        default="none",
        help="trace verbosity",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit results as JSON instead of tables"
    )
    parser.add_argument(
        "--experiment",
        help=(
            "run a named paper experiment instead of a scenario "
            f"({', '.join(sorted(EXPERIMENTS))})"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=["full", "small"],
        default="small",
        help="experiment scale: 'full' = the paper's 100 nodes / 10 h",
    )
    return parser


def _experiment_names() -> list:
    from repro.experiments import registry

    return registry.names()


EXPERIMENTS = tuple(_experiment_names())


def _sweep_overrides(experiment, scale: str, seed: Optional[int] = None) -> dict:
    """Grid overrides for one experiment under a --scale profile.

    Scale keys an experiment's grid does not understand are dropped
    silently (that is what makes one profile applicable to heterogeneous
    grids), but an explicit ``--seed`` must never be ignored.
    """
    overrides = dict(SCALE_PROFILES[scale]) if experiment.scaled else {}
    if seed is not None:
        if "seed" not in experiment.grid_kwargs({"seed": seed}):
            raise SystemExit(
                f"experiment {experiment.name!r} does not accept --seed"
            )
        overrides["seed"] = seed
    return overrides


def _run_experiment(name: str, scale: str) -> int:
    """Legacy ``--experiment`` path: one serial, uncached run."""
    from repro.experiments import registry
    from repro.experiments.runner import run_experiment

    try:
        experiment = registry.get(name)
    except KeyError:
        raise SystemExit(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    report = run_experiment(experiment, overrides=_sweep_overrides(experiment, scale))
    print(report.result.render())
    return 0


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description=(
            "Run a registered paper experiment as a parallel, cached sweep."
        ),
    )
    parser.add_argument(
        "name",
        nargs="?",
        help="experiment to sweep (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered experiments and exit"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for cache-missing grid points (default 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every grid point, bypassing the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/hc3i-repro)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALE_PROFILES),
        default="small",
        help="grid scale: 'full' = the paper's 100 nodes / 10 h",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the grid seed")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the reduced result as JSON instead of tables",
    )
    return parser


def _sweep_main(argv: Sequence[str]) -> int:
    from repro.experiments import registry
    from repro.experiments.cache import ResultCache
    from repro.experiments.runner import run_experiment

    args = build_sweep_parser().parse_args(argv)
    if args.list:
        rows = [
            (exp.name, "yes" if exp.scaled else "no", exp.title)
            for exp in registry.all_experiments()
        ]
        print(format_table(["name", "scaled", "title"], rows,
                           title="-- registered experiments --"))
        return 0
    if not args.name:
        raise SystemExit("repro sweep: an experiment name (or --list) is required")
    try:
        experiment = registry.get(args.name)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None
    cache = None
    if not args.no_cache:
        cache = ResultCache(root=args.cache_dir)
    report = run_experiment(
        experiment,
        overrides=_sweep_overrides(experiment, args.scale, args.seed),
        jobs=args.jobs,
        cache=cache,
    )
    result = report.result
    if args.json:
        payload = {
            "experiment": report.name,
            "scale": args.scale,
            "points": report.points,
            "cache_hits": report.cache_hits,
            "executed": report.executed,
            "name": result.name,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
            "x_label": result.x_label,
            "xs": list(result.xs),
            "series": {k: list(v) for k, v in result.series.items()},
            "notes": list(result.notes),
        }
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
    else:
        print(result.render())
        print(f"[sweep] {report.summary()}")
    return 0


def _load(args: argparse.Namespace) -> ScenarioConfig:
    if args.scenario:
        return load_scenario(args.scenario, args.scenario, args.scenario)
    if not (args.topology and args.application and args.timers):
        raise SystemExit(
            "either --scenario or all of --topology/--application/--timers required"
        )
    return load_scenario(args.topology, args.application, args.timers)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment:
        return _run_experiment(args.experiment, args.scale)
    scenario = _load(args)
    if args.protocol:
        scenario.protocol = args.protocol
    if args.seed is not None:
        scenario.seed = args.seed
    level = {
        "none": TraceLevel.NONE,
        "protocol": TraceLevel.PROTOCOL,
        "message": TraceLevel.MESSAGE,
        "debug": TraceLevel.DEBUG,
    }[args.trace]
    fed = Federation(
        scenario.topology,
        scenario.application,
        scenario.timers,
        protocol=scenario.protocol,
        protocol_options=scenario.protocol_options,
        seed=scenario.seed,
        trace_level=level,
    )
    results = fed.run(until=args.until)

    if args.json:
        payload = {
            "protocol": results.protocol,
            "duration": results.duration,
            "events": results.events,
            "messages": {f"{i}->{j}": v for (i, j), v in results.messages.items()},
            "protocol_messages": results.protocol_messages,
            "clusters": results.clusters,
            "stats": results.stats,
        }
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
        return 0

    print(f"protocol={results.protocol} seed={results.seed} "
          f"duration={results.duration:g}s events={results.events}")
    rows = [(f"c{i}", f"c{j}", v) for (i, j), v in sorted(results.messages.items())]
    print(format_table(["from", "to", "app messages"], rows, title="-- traffic --"))
    clc_rows = []
    for c in range(fed.topology.n_clusters):
        counts = results.clc_counts(c)
        clc_rows.append(
            (f"c{c}", counts["initial"], counts["unforced"], counts["forced"],
             counts["total"], results.stored_clcs(c))
        )
    print(format_table(
        ["cluster", "initial", "unforced", "forced", "total", "stored"],
        clc_rows,
        title="-- committed CLCs --",
    ))
    print(f"protocol messages: {results.protocol_messages}")
    if args.trace != "none":
        for record in fed.tracer.records:
            print(f"{record.time:14.6f}  {record.kind:20s} {record.fields}")
    return 0


def console_main() -> int:  # pragma: no cover
    """Entry point for the installed scripts; tames ``repro ... | head``."""
    try:
        return main()
    except BrokenPipeError:
        import os

        # reopen stdout on devnull so interpreter teardown doesn't warn
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(console_main())
