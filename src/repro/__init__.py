"""repro -- reproduction of the HC3I hierarchical checkpointing protocol.

Monnet, Morin & Badrinath, "A Hierarchical Checkpointing Protocol for
Parallel Applications in Cluster Federations", FTPDS/IPDPS-W 2004.

Quickstart::

    from repro import Federation, table1_workload

    topology, application, timers = table1_workload(nodes=10, total_time=3600)
    fed = Federation(topology, application, timers, protocol="hc3i", seed=7)
    results = fed.run()
    print(results.clc_counts(0), results.app_messages(0, 1))

Layout:

* :mod:`repro.sim` -- deterministic discrete-event kernel (C++SIM stand-in),
* :mod:`repro.network` -- federation link/latency model and message fabric,
* :mod:`repro.cluster` -- nodes, stable storage, failures, the builder,
* :mod:`repro.app` -- synthetic code-coupling workloads,
* :mod:`repro.core` -- the HC3I protocol (CLCs, DDV, logging, rollback, GC),
* :mod:`repro.baselines` -- comparison protocols (global coordinated,
  independent, pessimistic logging, force-on-every-message),
* :mod:`repro.experiments` -- one module per paper table/figure,
* :mod:`repro.analysis` -- consistency checking and reporting.
"""

from repro.cluster.federation import Federation, FederationResults
from repro.config.application import ApplicationConfig, ClusterAppSpec
from repro.config.loader import ScenarioConfig, load_scenario
from repro.config.timers import TimersConfig
from repro.core.hc3i import Hc3iProtocol
from repro.core.protocol import make_protocol, protocol_names, register_protocol
from repro.network.topology import ClusterSpec, LinkSpec, Topology
from repro.app.workloads import (
    fig9_workload,
    pipeline_workload,
    table1_workload,
    table2_workload,
    table3_workload,
)
from repro.sim.trace import TraceLevel

# Importing the baselines registers them with the protocol registry.
import repro.baselines  # noqa: E402,F401

__version__ = "1.0.0"

__all__ = [
    "ApplicationConfig",
    "ClusterAppSpec",
    "ClusterSpec",
    "Federation",
    "FederationResults",
    "Hc3iProtocol",
    "LinkSpec",
    "ScenarioConfig",
    "TimersConfig",
    "Topology",
    "TraceLevel",
    "fig9_workload",
    "load_scenario",
    "make_protocol",
    "pipeline_workload",
    "protocol_names",
    "register_protocol",
    "table1_workload",
    "table2_workload",
    "table3_workload",
]
