"""Fail-stop failure injection and detection.

The topology file carries "the federation MTBF" (§5.1); failures are
injected with exponentially distributed inter-arrival times and strike a
uniformly chosen live node.  The paper assumes "only one fault occurs at a
time" (§2.1), so the injector waits for the protocol to finish recovering
before arming the next fault.

The failure *detector* is explicitly out of the paper's scope ("the
description of the failure detector is out of the scope of this paper",
§3.4); it is modelled as an oracle that reports the crash to the protocol
after a configurable delay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.network.message import NodeId
from repro.sim.process import Process, Timeout
from repro.sim.snapshot import GenSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.federation import Federation

__all__ = ["FailureInjector"]


class FailureInjector:
    """MTBF-driven fault injector.

    By default exactly one fault is in flight at a time (the paper's §2.1
    assumption).  With ``allow_simultaneous=True`` (the §7 extension:
    "the protocol should tolerate simultaneous faults in different
    clusters") the injector keeps arming faults while earlier ones are
    still recovering, as long as the victim's *cluster* is healthy -- the
    degree-k stable storage bounds how many faults a single cluster can
    absorb at once, so victims are never drawn from a recovering cluster.
    """

    def __init__(
        self,
        federation: "Federation",
        mtbf: float,
        allow_simultaneous: bool = False,
    ):
        if mtbf <= 0:
            raise ValueError(f"MTBF must be positive: {mtbf}")
        self.federation = federation
        self.mtbf = mtbf
        self.allow_simultaneous = allow_simultaneous
        self.stream = federation.streams.stream("failures")
        self.injected = 0
        self._process: Optional[Process] = None

    def start(self) -> None:
        spec = GenSpec(self._run)
        self._process = Process(
            self.federation.sim, spec.make(), name="failure-injector", gen_spec=spec
        )

    # ------------------------------------------------------------------
    def _run(self, _phase=None):
        fed = self.federation
        end = fed.application.total_time
        ph = _phase if _phase is not None else {}
        gate = ph.get("at")
        while True:
            if gate == "armed":
                gate = None
                yield  # restored mid fault countdown: pending Timeout resumes here
            elif gate == "recovery":
                gate = None
                yield  # restored awaiting recovery: pending Signal resumes here
                continue
            else:
                delay = self.stream.exponential(self.mtbf)
                if fed.sim.now + delay >= end:
                    return
                ph["at"] = "armed"
                yield Timeout(delay)
            node = self._pick_victim()
            if node is None:
                continue
            # With a heartbeat detector installed, detection happens via
            # missed probes rather than the oracle callback.
            self.inject(node.id, detect=fed.detector is None)
            if not self.allow_simultaneous:
                # One fault at a time: wait until the protocol reports the
                # faulty cluster recovered before arming the next one.
                ph["at"] = "recovery"
                yield fed.recovery_signal(node.id.cluster)

    def _cluster_healthy(self, cluster_index: int) -> bool:
        runtime = self.federation.clusters[cluster_index]
        if any(not n.up for n in runtime.nodes):
            return False
        recovering = getattr(
            self.federation.protocol, "cluster_states", None
        )
        if recovering is not None and recovering[cluster_index].recovering:
            return False
        return True

    def _pick_victim(self):
        candidates = [
            n
            for cluster in self.federation.clusters
            for n in cluster.nodes
            if n.up and self._cluster_healthy(cluster.index)
        ]
        if not candidates:
            return None
        return self.stream.choice(candidates)

    # ------------------------------------------------------------------
    def inject(self, node_id: NodeId, detect: bool = True) -> None:
        """Crash a node now (also usable directly from tests/examples)."""
        fed = self.federation
        node = fed.node(node_id)
        if not node.up:
            return
        self.injected += 1
        fed.stats.counter("failures/injected").inc()
        fed.tracer.protocol("node_failed", cluster=node_id.cluster, node=node_id.node)
        node.fail()
        if detect:
            fed.sim.schedule(
                fed.timers.failure_detection_delay, self._detect, node
            )

    def _detect(self, node) -> None:
        if node.up:
            return  # already recovered through another path
        self.federation.stats.counter("failures/detected").inc()
        self.federation.protocol.on_failure_detected(node)
