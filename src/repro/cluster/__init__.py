"""Cluster federation runtime: nodes, stable storage, failures, builder.

* :class:`~repro.cluster.node.Node` -- the system-level module of the
  paper's Figure 2: it hosts the application process, catches every
  inter-process message and talks to the protocol agent,
* :class:`~repro.cluster.storage.StableStorage` -- checkpoint data
  replicated "in the memory of an other node in the cluster" (§3.1),
* :mod:`~repro.cluster.failures` -- MTBF-driven fail-stop injection and the
  (out-of-scope-in-the-paper) failure detector,
* :class:`~repro.cluster.federation.Federation` -- wires topology,
  application, timers and a protocol into a runnable simulation.
"""

from repro.cluster.node import ClusterRuntime, Node
from repro.cluster.storage import StableStorage
from repro.cluster.failures import FailureInjector
from repro.cluster.federation import Federation, FederationResults

__all__ = [
    "ClusterRuntime",
    "FailureInjector",
    "Federation",
    "FederationResults",
    "Node",
    "StableStorage",
]
