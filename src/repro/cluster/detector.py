"""Heartbeat-based failure detection.

The paper leaves the detector out of scope ("the description of the
failure detector is out of the scope of this paper", §3.4) and our default
is therefore a fixed-latency oracle.  This module provides the realistic
alternative: a simulated heartbeat protocol whose traffic and detection
latency are part of the model.

Design (per cluster):

* every node sends a ``HEARTBEAT`` message to its *monitor* each
  ``heartbeat_period`` seconds: the cluster leader monitors everyone else,
  and node 1 monitors the leader (so the leader's own death is noticed);
* a sweep running at the same period suspects a node once nothing was
  heard from it for ``heartbeat_timeout`` seconds, and reports it to the
  protocol exactly once per failure;
* monitorees of a *dead monitor* are not suspected (their heartbeats are
  being dropped at the crashed node, not missing at the source); they are
  re-armed with a fresh grace period when the monitor recovers.

Select with ``TimersConfig(detector="heartbeat", heartbeat_period=...,
heartbeat_timeout=...)``.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING

from repro.network.message import Message, MessageKind, NodeId
from repro.sim.timers import PeriodicTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.federation import Federation
    from repro.cluster.node import Node

__all__ = ["HeartbeatDetector"]

HEARTBEAT_SIZE = 32


class HeartbeatDetector:
    """Federation-wide heartbeat machinery (one monitor map per cluster)."""

    def __init__(self, federation: "Federation", period: float, timeout: float):
        if period <= 0:
            raise ValueError(f"heartbeat period must be positive: {period}")
        if timeout <= period:
            raise ValueError(
                f"heartbeat timeout ({timeout}) must exceed the period ({period})"
            )
        self.federation = federation
        self.period = period
        self.timeout = timeout
        #: last time a heartbeat from each node was received by its monitor
        self._last_heard: dict = {}
        #: nodes already reported to the protocol (cleared on recovery)
        self._reported: set = set()
        self._timers: list = []
        self.suspects_raised = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        now = self.federation.sim.now
        for cluster in self.federation.clusters:
            for node in cluster.nodes:
                node.system_hook = self._on_heartbeat
                self._last_heard[node.id] = now
            timer = PeriodicTimer(
                self.federation.sim,
                self.period,
                functools.partial(self._tick, cluster.index),
                name=f"heartbeat-c{cluster.index}",
            )
            timer.start()
            self._timers.append(timer)

    def monitor_of(self, node_id: NodeId) -> NodeId:
        """Who watches this node: the leader, or node 1 for the leader."""
        if node_id.node == 0:
            size = self.federation.topology.nodes_in(node_id.cluster)
            return NodeId(node_id.cluster, 1 % size)
        return NodeId(node_id.cluster, 0)

    # ------------------------------------------------------------------
    def _on_heartbeat(self, msg: Message) -> bool:
        """System hook installed on every node: consume heartbeat traffic."""
        if msg.kind is not MessageKind.HEARTBEAT:
            return False
        self._last_heard[msg.src] = self.federation.sim.now
        return True

    def _tick(self, cluster_index: int) -> None:
        """Send this round's heartbeats, then sweep for silent nodes."""
        fed = self.federation
        cluster = fed.clusters[cluster_index]
        if cluster.size < 2:
            return  # nobody to watch or be watched by
        now = fed.sim.now
        for node in cluster.nodes:
            if not node.up:
                continue
            monitor = self.monitor_of(node.id)
            if monitor == node.id:
                continue
            node.send_raw(monitor, MessageKind.HEARTBEAT, size=HEARTBEAT_SIZE)

        for node in cluster.nodes:
            monitor_id = self.monitor_of(node.id)
            if monitor_id == node.id:
                continue
            monitor = fed.node(monitor_id)
            if node.up:
                # A recovered node resumes heartbeating; forget the report
                # once the monitor has heard from it again.
                if node.id in self._reported and (
                    now - self._last_heard[node.id] <= self.timeout
                ):
                    self._reported.discard(node.id)
                continue
            if not monitor.up:
                # The watcher itself is dead; silence proves nothing.
                self._last_heard[node.id] = now
                continue
            if node.id in self._reported:
                continue
            if now - self._last_heard[node.id] > self.timeout:
                self._reported.add(node.id)
                self.suspects_raised += 1
                fed.stats.counter("failures/detected").inc()
                fed.tracer.protocol(
                    "heartbeat_suspect",
                    cluster=node.id.cluster,
                    node=node.id.node,
                    silent_for=now - self._last_heard[node.id],
                )
                fed.protocol.on_failure_detected(node)

    def note_recovered(self, node: "Node") -> None:
        """Grace period after recovery so the node is not re-suspected."""
        self._last_heard[node.id] = self.federation.sim.now
        self._reported.discard(node.id)
