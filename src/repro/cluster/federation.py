"""Federation builder: one object wiring everything into a runnable model.

Typical use::

    from repro.app.workloads import table1_workload
    from repro.cluster.federation import Federation

    topology, application, timers = table1_workload()
    fed = Federation(topology, application, timers, protocol="hc3i", seed=1)
    results = fed.run()
    print(results.clc_counts(0))

The federation owns the simulator, random streams, statistics registry,
tracer and fabric; builds clusters/nodes; instantiates the protocol by name
(HC3I or a baseline); starts the application processes; and injects
failures per the topology MTBF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.failures import FailureInjector
from repro.cluster.node import ClusterRuntime, Node
from repro.cluster.storage import StableStorage
from repro.config.application import ApplicationConfig
from repro.config.timers import TimersConfig
from repro.core.protocol import BaseProtocol, make_protocol
from repro.network.fabric import Fabric
from repro.network.message import NodeId
from repro.network.topology import Topology
from repro.sim import snapshot as snapshot_mod
from repro.sim.kernel import Simulator
from repro.sim.process import Process, Signal
from repro.sim.random import RandomStreams
from repro.sim.snapshot import GenSpec, SimClock
from repro.sim.stats import StatsRegistry
from repro.sim.trace import TraceLevel, Tracer

__all__ = ["Federation", "FederationResults"]


class Federation:
    """A runnable cluster-federation simulation."""

    def __init__(
        self,
        topology: Topology,
        application: ApplicationConfig,
        timers: TimersConfig,
        protocol: str = "hc3i",
        protocol_options: Optional[dict] = None,
        seed: int = 0,
        trace_level: TraceLevel = TraceLevel.NONE,
        app_factory=None,
        fifo_network: bool = True,
        allow_simultaneous_faults: bool = False,
    ):
        if len(application.clusters) != topology.n_clusters:
            raise ValueError(
                f"application has {len(application.clusters)} cluster specs, "
                f"topology has {topology.n_clusters} clusters"
            )
        self.topology = topology
        self.application = application
        self.timers = timers
        self.seed = seed
        self.protocol_name = protocol

        self.sim = Simulator()
        clock = SimClock(self.sim)
        self.streams = RandomStreams(seed)
        self.stats = StatsRegistry(clock)
        self.tracer = Tracer(clock, trace_level)
        self.fabric = Fabric(self.sim, topology, self.stats, self.tracer, fifo=fifo_network)

        self.clusters: list[ClusterRuntime] = []
        for ci, spec in enumerate(topology.clusters):
            nodes = [Node(NodeId(ci, ni), self.sim, self.fabric) for ni in range(spec.nodes)]
            for n in nodes:
                n._stats = self.stats
            self.clusters.append(ClusterRuntime(ci, nodes))

        self.protocol: BaseProtocol = make_protocol(protocol, self, protocol_options)
        for cluster in self.clusters:
            for node in cluster.nodes:
                node.agent = self.protocol.make_agent(node)

        degree = getattr(getattr(self.protocol, "options", None), "replication_degree", 1)
        self.storage = [
            StableStorage(ci, spec.nodes, degree)
            for ci, spec in enumerate(topology.clusters)
        ]

        if app_factory is None:
            from repro.app.process import compute_communicate_factory

            app_factory = compute_communicate_factory()
        self.app_factory = app_factory

        self.allow_simultaneous_faults = allow_simultaneous_faults
        self.injector = (
            FailureInjector(self, topology.mtbf, allow_simultaneous_faults)
            if topology.failures_enabled
            else None
        )
        self.detector = None
        if timers.detector == "heartbeat":
            from repro.cluster.detector import HeartbeatDetector

            self.detector = HeartbeatDetector(
                self, timers.heartbeat_period, timers.heartbeat_timeout
            )
        self._recovery_signals: dict = {}
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.protocol.start()
        for cluster in self.clusters:
            for node in cluster.nodes:
                self._start_app(node)
        if self.detector is not None:
            self.detector.start()
        if self.injector is not None:
            self.injector.start()

    def run(self, until: Optional[float] = None) -> "FederationResults":
        """Run to ``until`` (default: the application's total time)."""
        self.start()
        horizon = until if until is not None else self.application.total_time
        driver = snapshot_mod._drive_hook
        if driver is not None:
            # Checkpointing active: the driver slices sim.run() into
            # intervals and snapshots between slices (it may also restore
            # this federation in place before running).  The dispatch
            # stream is identical either way.
            driver(self, horizon)
        else:
            self.sim.run(until=horizon)
        return self.results()

    def _start_app(self, node: Node) -> None:
        made = self.app_factory(node, self)
        if isinstance(made, GenSpec):
            node.app_process = Process(
                self.sim, made.make(), name=f"app-{node.id}", gen_spec=made
            )
        else:
            node.app_process = Process(self.sim, made, name=f"app-{node.id}")

    # ------------------------------------------------------------------
    # hooks used by protocols
    # ------------------------------------------------------------------
    def node(self, node_id: NodeId) -> Node:
        return self.clusters[node_id.cluster].nodes[node_id.node]

    def on_cluster_rollback(
        self, cluster: int, target_time: float, failed_node: Optional[Node] = None
    ) -> None:
        """Interrupt the cluster's application and account the lost work."""
        now = self.sim.now
        lost_each = max(0.0, now - target_time)
        runtime = self.clusters[cluster]
        for node in runtime.nodes:
            if node.app_process is not None and node.app_process.alive:
                node.app_process.interrupt(cause="rollback")
            self.stats.tally("rollback/lost_work").record(lost_each)
        self.stats.tally(f"rollback/c{cluster}/lost_work").record(
            lost_each * runtime.size
        )

    def restart_cluster_apps(self, cluster: int) -> None:
        """Re-execute from the restored checkpoint (recovery completed)."""
        if self.sim.now >= self.application.total_time:
            return  # the application is over; nothing to re-execute
        for node in self.clusters[cluster].nodes:
            if node.up and (node.app_process is None or not node.app_process.alive):
                self._start_app(node)

    def recovery_signal(self, cluster: int) -> Signal:
        sig = self._recovery_signals.get(cluster)
        if sig is None or sig.triggered:
            sig = Signal(self.sim, name=f"recovery-c{cluster}")
            self._recovery_signals[cluster] = sig
        return sig

    def notify_recovery_complete(self, cluster: int) -> None:
        sig = self._recovery_signals.get(cluster)
        if sig is not None and not sig.triggered:
            sig.trigger(cluster)

    def inject_failure(self, node_id: NodeId, detect: Optional[bool] = None) -> None:
        """Crash a node on demand (examples / tests).

        With the heartbeat detector active, detection happens through the
        missed heartbeats; otherwise the oracle reports after the
        configured ``failure_detection_delay``.
        """
        injector = self.injector
        if injector is None:
            injector = FailureInjector(self, mtbf=1.0)
            self.injector = injector
        if detect is None:
            detect = self.detector is None
        injector.inject(node_id, detect=detect)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def results(self) -> "FederationResults":
        n = self.topology.n_clusters
        clusters = []
        for c in range(n):
            summary = dict(self.protocol.cluster_summary(c))
            summary["nodes"] = self.topology.nodes_in(c)
            stored = summary.get("clc_stored")
            if stored is not None:
                summary["states_per_node"] = self.storage[c].states_held_by(0, stored)
            clusters.append(summary)
        return FederationResults(
            protocol=self.protocol_name,
            seed=self.seed,
            duration=self.sim.now,
            events=self.sim.processed,
            clusters=clusters,
            messages=self.fabric.app_message_matrix(),
            protocol_messages=self.fabric.protocol_message_count(),
            stats=self.stats.snapshot(),
        )


@dataclass
class FederationResults:
    """Snapshot of everything an experiment needs after a run."""

    protocol: str
    seed: int
    duration: float
    events: int
    clusters: list
    messages: dict
    protocol_messages: int
    stats: dict = field(default_factory=dict)

    # -- convenience accessors (used by experiments & tests) -----------
    def app_messages(self, src: int, dst: int) -> int:
        return self.messages.get((src, dst), 0)

    def clc_counts(self, cluster: int) -> dict:
        """Forced / unforced / initial / total committed CLCs."""
        c = self.clusters[cluster]
        return {
            "forced": c.get("clc_forced", 0),
            "unforced": c.get("clc_unforced", 0),
            "initial": c.get("clc_initial", 0),
            "total": c.get("clc_total", 0),
        }

    def stored_clcs(self, cluster: int) -> int:
        return self.clusters[cluster].get("clc_stored", 0)

    def gc_series(self, cluster: int) -> list:
        """[(time, before, after)] for every garbage collection."""
        before = self.stats.get(f"gc/c{cluster}/before", [])
        after = self.stats.get(f"gc/c{cluster}/after", [])
        return [
            (tb, int(vb), int(va))
            for (tb, vb), (_ta, va) in zip(before, after)
        ]

    def counter(self, name: str, default: int = 0) -> int:
        value = self.stats.get(name, default)
        return int(value) if isinstance(value, (int, float)) else default

    def message_matrix_table(self) -> list:
        """Rows like the paper's Table 1."""
        rows = []
        n = max((k[0] for k in self.messages), default=-1) + 1
        for i in range(n):
            for j in range(n):
                rows.append((i, j, self.messages.get((i, j), 0)))
        return rows
