"""Stable storage by in-cluster neighbour replication (§3.1).

"In order to be able to retrieve CLC data in case of a node failure, each
node records its part of the CLCs, and in the memory of an other node in the
cluster.  Because of this stable storage implementation, only one
simultaneous fault in a cluster is tolerated."

This module is the *accounting and feasibility* model of that scheme: the
actual checkpoint payloads are abstract (sized blobs), but the placement --
each node's state kept locally plus on its ``replication_degree`` ring
successors -- is tracked exactly, so we can answer:

* how many local states does each node hold (§5.4 reports 126 = 63 CLCs × 2
  with degree 1)?
* is a given CLC still recoverable after a set of simultaneous node
  failures (degree k tolerates k faults per cluster, the §7 extension)?
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["StableStorage"]


class StableStorage:
    """Replication placement for one cluster's checkpoint data."""

    def __init__(self, cluster: int, n_nodes: int, replication_degree: int = 1):
        if n_nodes < 1:
            raise ValueError("cluster must have at least one node")
        if replication_degree < 0:
            raise ValueError("replication_degree must be >= 0")
        self.cluster = cluster
        self.n_nodes = n_nodes
        #: effective degree is bounded by the number of *other* nodes
        self.replication_degree = min(replication_degree, n_nodes - 1)
        self.requested_degree = replication_degree

    # ------------------------------------------------------------------
    def replica_holders(self, node: int) -> list:
        """Ring successors holding copies of ``node``'s state."""
        return [
            (node + k) % self.n_nodes
            for k in range(1, self.replication_degree + 1)
        ]

    def holders_of(self, node: int) -> list:
        """All nodes holding ``node``'s state (itself + replicas)."""
        return [node, *self.replica_holders(node)]

    def states_held_by(self, node: int, stored_clcs: int) -> int:
        """Local states in ``node``'s memory given ``stored_clcs`` CLCs.

        Each CLC contributes this node's own state plus one state per
        predecessor that replicates onto it.  §5.4: "each node in the
        federation stores 126 local states (its own 63 local states and
        the ones of one of its neighbor)".
        """
        return stored_clcs * (1 + self.replication_degree)

    def bytes_held_by(self, node: int, stored_clcs: int, state_size: int) -> int:
        return self.states_held_by(node, stored_clcs) * state_size

    # ------------------------------------------------------------------
    def recoverable(self, failed: Iterable[int]) -> bool:
        """Can every node's checkpoint part still be retrieved?

        True iff for each node some holder of its state is alive.  With
        ring replication of degree k this holds for any set of at most k
        failures (and for larger sets unless a node and all its successors
        fail together).
        """
        down = set(failed)
        for node in down:
            if not (0 <= node < self.n_nodes):
                raise ValueError(f"unknown node {node}")
            if all(h in down for h in self.holders_of(node)):
                return False
        return True

    def max_tolerated_faults(self) -> int:
        """Guaranteed number of simultaneous in-cluster faults survived."""
        return self.replication_degree

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<StableStorage c{self.cluster} nodes={self.n_nodes} "
            f"degree={self.replication_degree}>"
        )
