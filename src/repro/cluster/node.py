"""Nodes and cluster runtimes.

A :class:`Node` is the paper's system-level module (Figure 2): "it is able
to save the processes states, to catch every inter-processes message, and to
communicate with other nodes for protocol needs".  The protocol-specific
behaviour lives in the attached :class:`~repro.core.protocol.NodeAgent`; the
node handles fail-stop mechanics (a down node neither sends nor processes,
and buffers the input its agent wants to see after recovery).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.network.message import Message, MessageKind, NodeId
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.protocol import NodeAgent
    from repro.network.fabric import Fabric
    from repro.sim.process import Process

__all__ = ["ClusterRuntime", "Node"]


class Node:
    """One machine of the federation."""

    def __init__(self, node_id: NodeId, sim: Simulator, fabric: "Fabric"):
        self.id = node_id
        self.sim = sim
        self.fabric = fabric
        self.up = True
        #: protocol endpoint; set by the federation builder
        self.agent: Optional["NodeAgent"] = None
        #: application-level inbox callback (may stay None: delivery is then
        #: only counted)
        self.app_sink: Optional[Callable[[Message], None]] = None
        #: the application process currently running on this node
        self.app_process: Optional["Process"] = None
        #: messages that arrived while down and must be seen after recovery
        self._held: list = []
        #: statistics hook (set by the federation builder)
        self._stats = None
        #: optional system-level interceptor (e.g. the heartbeat detector);
        #: returning True consumes the message before the protocol agent
        self.system_hook: Optional[Callable[[Message], bool]] = None
        self.failures = 0
        self.fabric.register(node_id, self._on_fabric_delivery)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send_app(self, dst: NodeId, size: int, payload: Optional[dict] = None) -> None:
        """Application send; the protocol agent mediates (piggyback/queue)."""
        if not self.up:
            return
        assert self.agent is not None, "node has no protocol agent"
        self.agent.app_send(dst, size, payload)

    def send_raw(
        self,
        dst: NodeId,
        kind: MessageKind,
        size: int,
        payload: Optional[dict] = None,
        piggyback=None,
    ) -> Optional[Message]:
        """Protocol-level send (control traffic); no interception."""
        if not self.up:
            return None
        msg = Message(
            src=self.id, dst=dst, kind=kind, size=size,
            payload=payload or {}, piggyback=piggyback,
        )
        self.fabric.send(msg)
        return msg

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _on_fabric_delivery(self, msg: Message) -> None:
        assert self.agent is not None
        if not self.up:
            if msg.kind is not MessageKind.HEARTBEAT and self.agent.buffer_while_down(msg):
                self._held.append(msg)
            return
        if self.system_hook is not None and self.system_hook(msg):
            return
        if msg.kind is MessageKind.HEARTBEAT:
            return  # no detector installed: liveness probes are inert
        self.agent.on_receive(msg)

    def deliver_app(self, msg: Message) -> None:
        """Hand a message to the application layer."""
        if self._stats is not None:
            self._stats.counter(f"app/delivered/c{self.id.cluster}").inc()
        if self.app_sink is not None:
            self.app_sink(msg)

    # ------------------------------------------------------------------
    # fail-stop lifecycle
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash (fail-stop): "when a node fails it will not send messages
        anymore" (§2.1)."""
        if not self.up:
            return
        self.up = False
        self.failures += 1
        if self.app_process is not None and self.app_process.alive:
            self.app_process.interrupt(cause="node-failure")
        assert self.agent is not None
        self.agent.on_node_failed()

    def recover(self) -> None:
        """Rejoin after the cluster rollback restored this node's state."""
        if self.up:
            return
        self.up = True
        assert self.agent is not None
        self.agent.on_node_recovered()
        held, self._held = self._held, []
        for msg in held:
            self.agent.on_receive(msg)

    def __repr__(self) -> str:  # pragma: no cover
        state = "up" if self.up else "down"
        return f"<Node {self.id} {state}>"


class ClusterRuntime:
    """The nodes of one cluster plus cluster-wide runtime helpers."""

    def __init__(self, index: int, nodes: list):
        self.index = index
        self.nodes: list[Node] = nodes

    @property
    def leader(self) -> Node:
        """The designated initiator node of this cluster (node 0)."""
        return self.nodes[0]

    @property
    def size(self) -> int:
        return len(self.nodes)

    def node(self, idx: int) -> Node:
        return self.nodes[idx]

    def up_nodes(self) -> list:
        return [n for n in self.nodes if n.up]

    def __iter__(self):
        return iter(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ClusterRuntime c{self.index} n={len(self.nodes)}>"
