"""Cluster-federation network model.

Replaces the paper's hardware testbed assumptions: nodes inside a cluster
are linked by a SAN (low latency, high bandwidth, e.g. Myrinet), clusters
are linked by LAN/WAN links with much higher latency.  The model is
analytic -- ``delay = latency + size / bandwidth`` -- with per-channel FIFO
ordering and reliable delivery (the paper assumes the network never loses
messages; the fault-tolerance protocol must therefore handle in-transit
messages explicitly).
"""

from repro.network.message import Message, MessageKind, NodeId
from repro.network.topology import ClusterSpec, LinkSpec, Topology
from repro.network.fabric import Fabric

__all__ = [
    "ClusterSpec",
    "Fabric",
    "LinkSpec",
    "Message",
    "MessageKind",
    "NodeId",
    "Topology",
]
