"""Message transport between nodes.

The fabric is the system-level layer of Figure 2 of the paper: every
inter-process message is *caught* here, which is what lets the protocol
piggyback sequence numbers, queue messages during a checkpoint and count
traffic.  Delivery is reliable ("a sent message will be received in an
arbitrary but finite lapse of time") with per-channel FIFO ordering.

Statistics recorded per message:

* ``net/app/c{i}->c{j}`` -- application message counts per cluster pair
  (Table 1 of the paper),
* ``net/protocol/{kind}`` -- protocol message counts per kind,
* ``net/protocol_inter`` -- protocol messages that crossed clusters,
* ``net/bytes/app`` / ``net/bytes/protocol`` -- byte volumes.

:meth:`Fabric.send` runs once per message -- by far the busiest non-kernel
path in the system -- so everything per-send is O(1) dict hits on caches
built lazily the first time a (kind, cluster-pair, link) is seen: counter
objects are resolved once instead of re-formatting their registry names per
message, and link specs are resolved once per cluster pair.  Laziness
matters for behavior, not just startup cost: metrics must spring into
existence exactly when the first matching message is sent, as the paper
tables (and ``FederationResults.stats``) only contain rows for traffic that
actually happened.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.network.message import Message, MessageKind, NodeId
from repro.network.topology import Topology
from repro.sim.kernel import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import TraceLevel, Tracer

__all__ = ["Fabric"]

Receiver = Callable[[Message], None]


class Fabric:
    """Routes messages between registered nodes with modelled delays."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        stats: StatsRegistry,
        tracer: Optional[Tracer] = None,
        fifo: bool = True,
    ):
        self.sim = sim
        self.topology = topology
        self.stats = stats
        self.tracer = tracer
        self.fifo = fifo
        self._receivers: dict[NodeId, Receiver] = {}
        self._last_arrival: dict[tuple[NodeId, NodeId], float] = {}
        # lazily-built per-send caches (see module docstring)
        self._links: dict = {}           # (src_cluster, dst_cluster) -> LinkSpec
        self._bytes_counters: dict = {}  # MessageKind -> Counter net/bytes/kind/*
        self._app_counters: dict = {}    # (src_cluster, dst_cluster) -> Counter
        self._proto_counters: dict = {}  # MessageKind -> Counter net/protocol/*
        self._bytes_app = None
        self._bytes_protocol = None
        self._protocol_inter = None
        self._replays = None

    # ------------------------------------------------------------------
    def register(self, node_id: NodeId, receiver: Receiver) -> None:
        """Attach the receive callback of a node."""
        self.topology.validate_node(node_id)
        if node_id in self._receivers:
            raise ValueError(f"node {node_id} registered twice")
        self._receivers[node_id] = receiver

    def send(self, msg: Message) -> float:
        """Inject a message; returns its scheduled arrival time.

        The arrival time is ``now + latency + size/bandwidth``, pushed later
        if necessary to preserve FIFO order on the (src, dst) channel.
        """
        dst = msg.dst
        if dst not in self._receivers:
            raise ValueError(f"message to unregistered node {dst}")
        sim = self.sim
        now = sim.now
        msg.send_time = now
        src = msg.src
        pair = (src.cluster, dst.cluster)
        link = self._links.get(pair)
        if link is None:
            link = self._links[pair] = self.topology.link_between(*pair)
        # inlined LinkSpec.transfer_delay; the parenthesization must match
        # the original two-step now + transfer_delay(...) computation so
        # arrival times stay bit-identical (float addition isn't associative)
        arrival = now + (link.latency + (msg.size * 8.0) / link.bandwidth)
        if self.fifo:
            chan = (src, dst)
            last = self._last_arrival
            prev = last.get(chan)
            if prev is not None and arrival < prev:
                arrival = prev
            last[chan] = arrival
        self._account(msg)
        sim.schedule_at(arrival, self._deliver, msg)
        return arrival

    # ------------------------------------------------------------------
    def _deliver(self, msg: Message) -> None:
        tracer = self.tracer
        if (
            tracer is not None
            and tracer.level >= TraceLevel.MESSAGE
            and msg.kind.is_app
        ):
            tracer.message(
                "deliver",
                msg_id=msg.msg_id,
                src=str(msg.src),
                dst=str(msg.dst),
                msg_kind=msg.kind.value,
            )
        self._receivers[msg.dst](msg)

    def _account(self, msg: Message) -> None:
        kind = msg.kind
        size = msg.size
        counter = self._bytes_counters.get(kind)
        if counter is None:
            counter = self._bytes_counters[kind] = self.stats.counter(
                f"net/bytes/kind/{kind.value}"
            )
        counter.inc(size)
        if kind is MessageKind.APP:
            pair = (msg.src.cluster, msg.dst.cluster)
            counter = self._app_counters.get(pair)
            if counter is None:
                counter = self._app_counters[pair] = self.stats.counter(
                    f"net/app/c{pair[0]}->c{pair[1]}"
                )
            counter.inc()
            if self._bytes_app is None:
                self._bytes_app = self.stats.counter("net/bytes/app")
            self._bytes_app.inc(size)
        elif kind is MessageKind.REPLAY:
            # Replays are re-deliveries of already-counted sends: they are
            # tracked separately so Table-1 style matrices stay clean.
            if self._replays is None:
                self._replays = self.stats.counter("net/replays")
            self._replays.inc()
            if self._bytes_app is None:
                self._bytes_app = self.stats.counter("net/bytes/app")
            self._bytes_app.inc(size)
        else:
            counter = self._proto_counters.get(kind)
            if counter is None:
                counter = self._proto_counters[kind] = self.stats.counter(
                    f"net/protocol/{kind.value}"
                )
            counter.inc()
            if self._bytes_protocol is None:
                self._bytes_protocol = self.stats.counter("net/bytes/protocol")
            self._bytes_protocol.inc(size)
            if msg.src.cluster != msg.dst.cluster:
                if self._protocol_inter is None:
                    self._protocol_inter = self.stats.counter("net/protocol_inter")
                self._protocol_inter.inc()
        tracer = self.tracer
        if (
            tracer is not None
            and tracer.level >= TraceLevel.MESSAGE
            and (kind is MessageKind.APP or kind is MessageKind.REPLAY)
        ):
            tracer.message(
                "send",
                msg_id=msg.msg_id,
                src=str(msg.src),
                dst=str(msg.dst),
                msg_kind=kind.value,
                piggyback=msg.piggyback,
            )

    # ------------------------------------------------------------------
    def app_message_count(self, src_cluster: int, dst_cluster: int) -> int:
        """Application messages sent from one cluster to another (Table 1)."""
        name = f"net/app/c{src_cluster}->c{dst_cluster}"
        return self.stats.counter(name).value if name in self.stats else 0

    def app_message_matrix(self) -> dict[tuple[int, int], int]:
        """Full cluster-pair application message count matrix."""
        n = self.topology.n_clusters
        return {
            (i, j): self.app_message_count(i, j)
            for i in range(n)
            for j in range(n)
        }

    def protocol_message_count(self, kind: Optional[MessageKind] = None) -> int:
        """Protocol message count, optionally for a single kind."""
        if kind is not None:
            name = f"net/protocol/{kind.value}"
            return self.stats.counter(name).value if name in self.stats else 0
        total = 0
        for k in MessageKind:
            if not k.is_app:
                total += self.protocol_message_count(k)
        return total
