"""Message transport between nodes.

The fabric is the system-level layer of Figure 2 of the paper: every
inter-process message is *caught* here, which is what lets the protocol
piggyback sequence numbers, queue messages during a checkpoint and count
traffic.  Delivery is reliable ("a sent message will be received in an
arbitrary but finite lapse of time") with per-channel FIFO ordering.

Statistics recorded per message:

* ``net/app/c{i}->c{j}`` -- application message counts per cluster pair
  (Table 1 of the paper),
* ``net/protocol/{kind}`` -- protocol message counts per kind,
* ``net/protocol_inter`` -- protocol messages that crossed clusters,
* ``net/bytes/app`` / ``net/bytes/protocol`` -- byte volumes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.network.message import Message, MessageKind, NodeId
from repro.network.topology import Topology
from repro.sim.kernel import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer

__all__ = ["Fabric"]

Receiver = Callable[[Message], None]


class Fabric:
    """Routes messages between registered nodes with modelled delays."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        stats: StatsRegistry,
        tracer: Optional[Tracer] = None,
        fifo: bool = True,
    ):
        self.sim = sim
        self.topology = topology
        self.stats = stats
        self.tracer = tracer
        self.fifo = fifo
        self._receivers: dict[NodeId, Receiver] = {}
        self._last_arrival: dict[tuple[NodeId, NodeId], float] = {}

    # ------------------------------------------------------------------
    def register(self, node_id: NodeId, receiver: Receiver) -> None:
        """Attach the receive callback of a node."""
        self.topology.validate_node(node_id)
        if node_id in self._receivers:
            raise ValueError(f"node {node_id} registered twice")
        self._receivers[node_id] = receiver

    def send(self, msg: Message) -> float:
        """Inject a message; returns its scheduled arrival time.

        The arrival time is ``now + latency + size/bandwidth``, pushed later
        if necessary to preserve FIFO order on the (src, dst) channel.
        """
        if msg.dst not in self._receivers:
            raise ValueError(f"message to unregistered node {msg.dst}")
        msg.send_time = self.sim.now
        delay = self.topology.delay(msg.src, msg.dst, msg.size)
        arrival = self.sim.now + delay
        if self.fifo:
            chan = (msg.src, msg.dst)
            prev = self._last_arrival.get(chan, 0.0)
            if arrival < prev:
                arrival = prev
            self._last_arrival[chan] = arrival
        self._account(msg)
        self.sim.schedule_at(arrival, self._deliver, msg)
        return arrival

    # ------------------------------------------------------------------
    def _deliver(self, msg: Message) -> None:
        if self.tracer is not None and msg.kind.is_app:
            self.tracer.message(
                "deliver",
                msg_id=msg.msg_id,
                src=str(msg.src),
                dst=str(msg.dst),
                msg_kind=msg.kind.value,
            )
        self._receivers[msg.dst](msg)

    def _account(self, msg: Message) -> None:
        stats = self.stats
        stats.counter(f"net/bytes/kind/{msg.kind.value}").inc(msg.size)
        if msg.kind is MessageKind.APP:
            stats.counter(f"net/app/c{msg.src.cluster}->c{msg.dst.cluster}").inc()
            stats.counter("net/bytes/app").inc(msg.size)
        elif msg.kind is MessageKind.REPLAY:
            # Replays are re-deliveries of already-counted sends: they are
            # tracked separately so Table-1 style matrices stay clean.
            stats.counter("net/replays").inc()
            stats.counter("net/bytes/app").inc(msg.size)
        else:
            stats.counter(f"net/protocol/{msg.kind.value}").inc()
            stats.counter("net/bytes/protocol").inc(msg.size)
            if msg.inter_cluster:
                stats.counter("net/protocol_inter").inc()
        if self.tracer is not None and msg.kind.is_app:
            self.tracer.message(
                "send",
                msg_id=msg.msg_id,
                src=str(msg.src),
                dst=str(msg.dst),
                msg_kind=msg.kind.value,
                piggyback=msg.piggyback,
            )

    # ------------------------------------------------------------------
    def app_message_count(self, src_cluster: int, dst_cluster: int) -> int:
        """Application messages sent from one cluster to another (Table 1)."""
        name = f"net/app/c{src_cluster}->c{dst_cluster}"
        return self.stats.counter(name).value if name in self.stats else 0

    def app_message_matrix(self) -> dict[tuple[int, int], int]:
        """Full cluster-pair application message count matrix."""
        n = self.topology.n_clusters
        return {
            (i, j): self.app_message_count(i, j)
            for i in range(n)
            for j in range(n)
        }

    def protocol_message_count(self, kind: Optional[MessageKind] = None) -> int:
        """Protocol message count, optionally for a single kind."""
        if kind is not None:
            name = f"net/protocol/{kind.value}"
            return self.stats.counter(name).value if name in self.stats else 0
        total = 0
        for k in MessageKind:
            if not k.is_app:
                total += self.protocol_message_count(k)
        return total
