"""Message envelopes and node addressing.

Every exchange in the simulation -- application payloads, checkpoint
two-phase-commit control traffic, acknowledgements, rollback alerts, garbage
collection rounds -- travels as a :class:`Message` through the
:class:`~repro.network.fabric.Fabric`, so network statistics capture the
*protocol overhead* the paper evaluates, not only application traffic.

Both classes here are allocated on the per-message hot path (one
:class:`Message` per send, :class:`NodeId` keys every channel/receiver
lookup), so they are hand-written ``__slots__`` classes rather than
dataclasses: no instance ``__dict__``, no generated-method indirection, and
``NodeId`` caches its hash at construction (it is hashed at least twice per
send: receiver lookup and FIFO channel key).
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

__all__ = ["Message", "MessageKind", "NodeId"]


class NodeId:
    """Address of a node: cluster index + node index within the cluster.

    Value object: equality, ordering and hashing follow the
    ``(cluster, node)`` pair.  Treat instances as immutable -- the hash is
    computed once at construction.
    """

    __slots__ = ("cluster", "node", "_hash")

    def __init__(self, cluster: int, node: int):
        self.cluster = cluster
        self.node = node
        # Cached for __hash__ below; only used for process-local dict/set
        # placement, never ordered or persisted, so PYTHONHASHSEED
        # variance cannot leak out.
        self._hash = hash((cluster, node))  # repro-lint: ignore[DET002] -- __hash__ cache, placement only

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, NodeId):
            return self.cluster == other.cluster and self.node == other.node
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, NodeId):
            return self.cluster != other.cluster or self.node != other.node
        return NotImplemented

    def __lt__(self, other: "NodeId") -> bool:
        if isinstance(other, NodeId):
            return (self.cluster, self.node) < (other.cluster, other.node)
        return NotImplemented

    def __le__(self, other: "NodeId") -> bool:
        if isinstance(other, NodeId):
            return (self.cluster, self.node) <= (other.cluster, other.node)
        return NotImplemented

    def __gt__(self, other: "NodeId") -> bool:
        if isinstance(other, NodeId):
            return (self.cluster, self.node) > (other.cluster, other.node)
        return NotImplemented

    def __ge__(self, other: "NodeId") -> bool:
        if isinstance(other, NodeId):
            return (self.cluster, self.node) >= (other.cluster, other.node)
        return NotImplemented

    def __str__(self) -> str:
        return f"c{self.cluster}n{self.node}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeId(cluster={self.cluster}, node={self.node})"

    def __reduce__(self):
        return (NodeId, (self.cluster, self.node))


class MessageKind(enum.Enum):
    """What a message carries; determines accounting and routing."""

    APP = "app"                    #: application payload
    CLC_REQUEST = "clc_request"    #: 2PC phase 1: checkpoint request broadcast
    CLC_ACK = "clc_ack"            #: 2PC phase 1: participant acknowledgement
    CLC_COMMIT = "clc_commit"      #: 2PC phase 2: commit broadcast
    CLC_INITIATE = "clc_initiate"  #: node asks its cluster coordinator to force a CLC
    REPLICA = "replica"            #: checkpoint state copied to a neighbour (stable storage)
    INTER_ACK = "inter_ack"        #: ack of an inter-cluster app message, carries receiver SN
    ALERT = "alert"                #: rollback alert, carries faulty cluster + new SN
    ALERT_LOCAL = "alert_local"    #: intra-cluster re-broadcast of an alert
    REPLAY = "replay"              #: re-sent logged inter-cluster app message
    GC_REQUEST = "gc_request"      #: GC phase 1: ask a cluster for its DDV lists
    GC_RESPONSE = "gc_response"    #: GC phase 1: the DDV lists
    GC_COLLECT = "gc_collect"      #: GC phase 2: vector of smallest SNs
    GC_LOCAL = "gc_local"          #: intra-cluster broadcast of the GC collect vector
    HEARTBEAT = "heartbeat"        #: liveness probe for the failure detector

    @property
    def is_app(self) -> bool:
        """True for traffic the application generated (incl. replays)."""
        return self in (MessageKind.APP, MessageKind.REPLAY)


_msg_ids = itertools.count(1)


class Message:
    """A message in flight (or logged).

    ``piggyback`` holds the protocol metadata added by HC3I to inter-cluster
    application messages: the sender cluster's SN (or, in transitive mode,
    its whole DDV).  ``payload`` is free-form protocol/application data.
    ``size`` is the on-wire size in bytes used by the delay model (piggyback
    overhead should already be included by the sender).

    Messages compare and hash by *identity* (each in-flight message is one
    object); dedupe against ``msg_id``, never against whole messages.
    """

    __slots__ = ("src", "dst", "kind", "size", "payload", "piggyback",
                 "msg_id", "send_time")

    def __init__(
        self,
        src: NodeId,
        dst: NodeId,
        kind: MessageKind,
        size: int,
        payload: Optional[dict] = None,
        piggyback: Optional[Any] = None,
        msg_id: Optional[int] = None,
        send_time: float = 0.0,
    ):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.size = size
        self.payload = {} if payload is None else payload
        self.piggyback = piggyback
        self.msg_id = next(_msg_ids) if msg_id is None else msg_id
        self.send_time = send_time

    @property
    def inter_cluster(self) -> bool:
        return self.src.cluster != self.dst.cluster

    def clone_for_replay(self) -> "Message":
        """Copy of this message for re-sending after a receiver rollback.

        Keeps the original ``msg_id`` so the receiver can deduplicate
        against a still-in-flight original, and the original piggyback so
        the dependency information is preserved.
        """
        return Message(
            src=self.src,
            dst=self.dst,
            kind=MessageKind.REPLAY,
            size=self.size,
            payload=dict(self.payload),
            piggyback=self.piggyback,
            msg_id=self.msg_id,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Msg#{self.msg_id} {self.kind.value} {self.src}->{self.dst} "
            f"size={self.size} piggyback={self.piggyback}>"
        )
