"""Federation topology: clusters, nodes and link characteristics.

Mirrors the paper's *topology file*: "the number of clusters, the number of
nodes in each cluster, the bandwidth and latency in each cluster and between
clusters (represented as a triangular matrix) and the federation MTBF"
(§5.1).

Bandwidths are expressed in **bits per second** and latencies in **seconds**
to match the paper's "Myrinet-like (10µs latency and 80Mb/sec bandwidth)"
and "Ethernet-like (150µs latency and 100Mb/sec bandwidth)" figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.network.message import NodeId

__all__ = ["ClusterSpec", "LinkSpec", "Topology", "MYRINET_LIKE", "ETHERNET_LIKE"]


@dataclass(frozen=True)
class LinkSpec:
    """Latency/bandwidth of a (logical) link."""

    latency: float        #: one-way latency in seconds
    bandwidth: float      #: bits per second

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"negative latency: {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth}")

    def transfer_delay(self, size_bytes: int) -> float:
        """One-way delay for a message of ``size_bytes``."""
        return self.latency + (size_bytes * 8.0) / self.bandwidth


#: The paper's intra-cluster SAN: 10 µs latency, 80 Mb/s bandwidth.
MYRINET_LIKE = LinkSpec(latency=10e-6, bandwidth=80e6)
#: The paper's inter-cluster link: 150 µs latency, 100 Mb/s bandwidth.
ETHERNET_LIKE = LinkSpec(latency=150e-6, bandwidth=100e6)


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster: its size and its internal SAN link."""

    name: str
    nodes: int
    link: LinkSpec = MYRINET_LIKE

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"cluster {self.name!r} must have >= 1 node")


@dataclass
class Topology:
    """A cluster federation.

    ``inter_links`` maps an unordered cluster pair ``(i, j)`` (``i < j``) to
    the :class:`LinkSpec` joining them -- the paper's triangular matrix.  A
    ``default_inter_link`` fills any missing pair.  ``mtbf`` is the
    federation Mean Time Between Failures in seconds (``None`` or ``inf``
    disables failure injection).
    """

    clusters: list[ClusterSpec]
    inter_links: dict = field(default_factory=dict)
    default_inter_link: LinkSpec = ETHERNET_LIKE
    mtbf: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("topology needs at least one cluster")
        n = len(self.clusters)
        normalized = {}
        for pair, link in self.inter_links.items():
            i, j = pair
            if i == j:
                raise ValueError(f"inter-cluster link {pair} joins a cluster to itself")
            if not (0 <= i < n and 0 <= j < n):
                raise ValueError(f"inter-cluster link {pair} references unknown cluster")
            normalized[(min(i, j), max(i, j))] = link
        self.inter_links = normalized
        if self.mtbf is not None and self.mtbf <= 0:
            raise ValueError(f"MTBF must be positive (or None): {self.mtbf}")

    # ------------------------------------------------------------------
    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def total_nodes(self) -> int:
        return sum(c.nodes for c in self.clusters)

    def nodes_in(self, cluster: int) -> int:
        return self.clusters[cluster].nodes

    def all_nodes(self) -> Iterator[NodeId]:
        for ci, spec in enumerate(self.clusters):
            for ni in range(spec.nodes):
                yield NodeId(ci, ni)

    def link_between(self, a: int, b: int) -> LinkSpec:
        """Link spec for traffic between clusters ``a`` and ``b``.

        For ``a == b`` this is the cluster's internal SAN.
        """
        if a == b:
            return self.clusters[a].link
        key = (min(a, b), max(a, b))
        return self.inter_links.get(key, self.default_inter_link)

    def delay(self, src: NodeId, dst: NodeId, size_bytes: int) -> float:
        """One-way transfer delay between two nodes."""
        return self.link_between(src.cluster, dst.cluster).transfer_delay(size_bytes)

    @property
    def failures_enabled(self) -> bool:
        return self.mtbf is not None and math.isfinite(self.mtbf)

    def validate_node(self, node: NodeId) -> None:
        if not (0 <= node.cluster < self.n_clusters):
            raise ValueError(f"unknown cluster in {node}")
        if not (0 <= node.node < self.clusters[node.cluster].nodes):
            raise ValueError(f"unknown node in {node}")


def two_cluster_topology(
    nodes: int = 100,
    intra: LinkSpec = MYRINET_LIKE,
    inter: LinkSpec = ETHERNET_LIKE,
    mtbf: Optional[float] = None,
) -> Topology:
    """The paper's evaluation topology: 2 clusters of ``nodes`` nodes (§5.2)."""
    return Topology(
        clusters=[ClusterSpec("cluster0", nodes, intra), ClusterSpec("cluster1", nodes, intra)],
        inter_links={(0, 1): inter},
        mtbf=mtbf,
    )
