"""Serve sweep results as a high-QPS async HTTP service.

``repro serve`` exposes the experiment registry and the
content-addressed result cache over a small stdlib-asyncio HTTP API:
enumeration (``GET /experiments``), memoized grid-point fetches
(``GET /experiments/<name>/points``), streamed sweep launches
(``POST /sweeps``), and observability (``GET /stats``).  See
``docs/serve.md`` for the API reference and backpressure semantics.
"""

from repro.serve.app import ServeApp, ServerHandle, start_in_thread
from repro.serve.hot_tier import HotTier
from repro.serve.httpd import HttpServer, Request, Response, json_response
from repro.serve.stats import LatencyRing, ServeStats

__all__ = [
    "HotTier",
    "HttpServer",
    "LatencyRing",
    "Request",
    "Response",
    "ServeApp",
    "ServeStats",
    "ServerHandle",
    "json_response",
    "start_in_thread",
]
