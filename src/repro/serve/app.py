"""The repro serving application: sweep results as a high-QPS service.

Three tiers answer a grid-point fetch, fastest first:

1. **hot tier** -- rendered response bytes in memory
   (:class:`~repro.serve.hot_tier.HotTier`), keyed by the same content
   address as the disk cache and invalidated wholesale when the
   code-version hash or journal watermark moves;
2. **disk tier** -- the content-addressed
   :class:`~repro.experiments.cache.ResultCache` shared with the sweep
   CLI, so anything a sweep ever computed is served without recompute;
3. **compute** -- a cache miss runs the experiment's pure ``point``
   function in a worker thread, bounded by admission control, and the
   result is written *through* both tiers on the way out.

The response body is byte-identical whichever tier answered (rendering
is deterministic and the hot tier stores the rendered bytes); the tier
that answered is reported out-of-band in the ``X-Repro-Source`` header
(``hot`` / ``disk`` / ``computed``).

Admission control is deliberately blunt: at most ``max_inflight``
concurrent computes, at most ``queue_size`` more waiting, everything
beyond that is an immediate ``429`` with ``Retry-After`` -- a saturated
lab server should shed load in microseconds, not accumulate a silent
backlog.  Sweeps are bounded separately (``max_sweeps``) since one
sweep is worth thousands of point fetches.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import AsyncIterator, Optional

from repro.experiments import registry
from repro.experiments.backends import create_backend
from repro.experiments.backends.base import Backend, PointTask
from repro.experiments.cache import ResultCache
from repro.experiments.runner import run_experiment
from repro.serve.hot_tier import HotTier
from repro.serve.httpd import HttpServer, Request, Response, json_response
from repro.serve.stats import ServeStats

__all__ = ["ServeApp", "ServerHandle", "start_in_thread"]

#: query keys with route-level meaning; everything else is a grid override
_RESERVED_QUERY = {"scale", "index"}

#: grid overrides per scale profile, mirroring the sweep CLI
_SCALE_PROFILES = {
    "full": {},
    "small": {"nodes": 10, "total_time": 7200.0},
    "tiny": {"nodes": 4, "total_time": 1800.0},
}


class _SweepCancelled(RuntimeError):
    """Raised inside the runner thread when the client went away."""


class _InstrumentedBackend(Backend):
    """Wraps a real backend to stream per-point progress and honour cancel.

    ``submit`` is the one chokepoint every executed point passes through,
    so checking the cancel flag there aborts a sweep promptly (the
    runner's submission loop hits it on the very next point) without the
    runner knowing anything about HTTP clients.
    """

    name = "instrumented"

    def __init__(self, inner: Backend, emit, cancelled: threading.Event) -> None:
        self.inner = inner
        self._emit = emit
        self._cancelled = cancelled
        self._done = 0
        self._lock = threading.Lock()

    def submit(self, task: PointTask):
        if self._cancelled.is_set():
            raise _SweepCancelled("client disconnected")
        future = self.inner.submit(task)

        def _on_done(fut) -> None:
            if fut.cancelled() or fut.exception() is not None:
                return
            outcome = fut.result()
            with self._lock:
                self._done += 1
                done = self._done
            self._emit(
                {
                    "event": "point",
                    "done": done,
                    "host": outcome.host,
                    "elapsed": round(outcome.elapsed, 6),
                }
            )

        future.add_done_callback(_on_done)
        return future

    def prepare(self, n_tasks: int) -> None:
        self.inner.prepare(n_tasks)

    def flush(self) -> None:
        self.inner.flush()

    def shutdown(self) -> None:
        self.inner.shutdown()

    def hosts(self) -> list:
        return self.inner.hosts()


class ServeApp:
    """Routes + tiers + admission control behind one async ``handle``."""

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        hot_mb: float = 64.0,
        max_inflight: int = 4,
        queue_size: int = 16,
        max_sweeps: int = 2,
        request_timeout: float = 300.0,
        retry_after: int = 1,
    ) -> None:
        self.cache = cache if cache is not None else ResultCache()
        self.hot = HotTier(max_bytes=int(hot_mb * 1024 * 1024))
        self.stats = ServeStats()
        self.max_inflight = max(1, int(max_inflight))
        self.queue_size = max(0, int(queue_size))
        self.max_sweeps = max(1, int(max_sweeps))
        self.request_timeout = request_timeout
        self.retry_after = retry_after
        self.started_at = time.time()
        self.host_label = socket.gethostname() or "serve"
        self._inflight = 0  # computes admitted (running or queued)
        self._active_sweeps = 0
        self._compute_sem = threading.BoundedSemaphore(self.max_inflight)
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight + self.queue_size,
            thread_name_prefix="serve-point",
        )

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------- routing

    async def handle(self, request: Request) -> Response:
        start = time.monotonic()
        route, response = await self._dispatch(request)
        self.stats.observe(route, response.status, time.monotonic() - start)
        return response

    async def _dispatch(self, request: Request) -> tuple:
        path = request.path.rstrip("/") or "/"
        if path == "/experiments" and request.method == "GET":
            return "/experiments", self._list_experiments()
        if path == "/stats" and request.method == "GET":
            return "/stats", self._stats_response()
        if path == "/healthz" and request.method == "GET":
            return "/healthz", json_response({"ok": True})
        if path == "/sweeps" and request.method == "POST":
            return "/sweeps", self._launch_sweep(request)
        parts = [p for p in path.split("/") if p]
        if len(parts) == 3 and parts[0] == "experiments":
            name, leaf = parts[1], parts[2]
            if leaf == "points" and request.method == "GET":
                return "/experiments/{name}/points", await self._fetch_point(name, request)
            if leaf == "grid" and request.method == "GET":
                return "/experiments/{name}/grid", self._enumerate_grid(name, request)
        if path == "/":
            return "/", json_response(
                {
                    "service": "repro-serve",
                    "routes": [
                        "GET /experiments",
                        "GET /experiments/{name}/grid",
                        "GET /experiments/{name}/points",
                        "POST /sweeps",
                        "GET /stats",
                        "GET /healthz",
                    ],
                }
            )
        return "(unmatched)", json_response({"error": f"no route for {request.method} {request.path}"}, status=404)

    # -------------------------------------------------------- GET /experiments

    def _list_experiments(self) -> Response:
        payload = [
            {
                "name": exp.name,
                "title": exp.title,
                "artifact": exp.artifact,
                "scaled": exp.scaled,
                "tags": list(exp.tags),
            }
            for exp in registry.all_experiments()
        ]
        return json_response({"experiments": payload})

    # ------------------------------------------------- grid/point resolution

    def _resolve_grid(self, name: str, request: Request) -> tuple:
        """(experiment, grid, error_response) from route + query params."""
        try:
            exp = registry.get(name)
        except KeyError as exc:
            return None, None, json_response({"error": str(exc)}, status=404)
        scale = request.query.get("scale", "tiny")
        profile = _SCALE_PROFILES.get(scale)
        if profile is None:
            return None, None, json_response(
                {"error": f"unknown scale {scale!r}; choose from {sorted(_SCALE_PROFILES)}"},
                status=400,
            )
        overrides = dict(profile) if exp.scaled else {}
        accepted = exp.grid_kwargs(
            {k: None for k in request.query if k not in _RESERVED_QUERY}
        )
        from repro.cli import coerce_set_value

        for key, raw in request.query.items():
            if key in _RESERVED_QUERY:
                continue
            if key not in accepted:
                return None, None, json_response(
                    {"error": f"experiment {name!r} grid takes no parameter {key!r}"},
                    status=400,
                )
            try:
                overrides[key] = coerce_set_value(raw)
            except SystemExit as exc:
                return None, None, json_response({"error": str(exc)}, status=400)
        try:
            grid = exp.build_grid(overrides)
        except (TypeError, ValueError) as exc:
            return None, None, json_response({"error": str(exc)}, status=400)
        return exp, grid, None

    def _enumerate_grid(self, name: str, request: Request) -> Response:
        exp, grid, error = self._resolve_grid(name, request)
        if error is not None:
            return error
        return json_response(
            {
                "experiment": exp.name,
                "points": len(grid),
                "grid": [
                    {"index": i, "key": self.cache.key(exp.name, params), "params": params}
                    for i, params in enumerate(grid)
                ],
            }
        )

    # --------------------------------------------- GET /experiments/*/points

    async def _fetch_point(self, name: str, request: Request) -> Response:
        exp, grid, error = self._resolve_grid(name, request)
        if error is not None:
            return error
        index_raw = request.query.get("index")
        if index_raw is None:
            if len(grid) != 1:
                return json_response(
                    {
                        "error": f"grid has {len(grid)} points; pick one with index=N "
                        "(enumerate them via .../grid)",
                        "points": len(grid),
                    },
                    status=400,
                )
            index = 0
        else:
            try:
                index = int(index_raw)
            except ValueError:
                return json_response({"error": f"index must be an integer, got {index_raw!r}"}, status=400)
            if not 0 <= index < len(grid):
                return json_response(
                    {"error": f"index {index} out of range for a {len(grid)}-point grid"},
                    status=400,
                )
        params = grid[index]
        key = self.cache.key(exp.name, params)
        generation = (self.cache.code_hash, self.cache.journal_watermark())

        payload = self.hot.get(key, generation)
        if payload is not None:
            return self._point_response(payload, key, "hot")

        value = self.cache.get(exp.name, params)
        if value is not None:
            payload = self._render_point(exp.name, key, params, value)
            self.hot.put(key, payload, generation)
            return self._point_response(payload, key, "disk")

        # compute tier: bounded, timed, written through both caches
        if self._inflight >= self.max_inflight + self.queue_size:
            return self._reject_429("compute capacity saturated")
        self._inflight += 1
        try:
            loop = asyncio.get_running_loop()
            value = await asyncio.wait_for(
                loop.run_in_executor(self._executor, self._compute_point, exp, params),
                timeout=self.request_timeout,
            )
        except asyncio.TimeoutError:
            return json_response(
                {"error": f"point compute exceeded {self.request_timeout:.0f}s"},
                status=504,
            )
        finally:
            self._inflight -= 1
        payload = self._render_point(exp.name, key, params, value)
        # re-read the watermark: our own cache.record just advanced it
        generation = (self.cache.code_hash, self.cache.journal_watermark())
        self.hot.put(key, payload, generation)
        return self._point_response(payload, key, "computed")

    def _compute_point(self, exp, params: dict):
        """Runs on a worker thread; the semaphore caps true concurrency."""
        with self._compute_sem:
            start = time.perf_counter()
            value = exp.point(params)
            elapsed = time.perf_counter() - start
        self.cache.put(exp.name, params, value)
        self.cache.record(exp.name, params, host=self.host_label, elapsed=elapsed)
        return value

    @staticmethod
    def _render_point(name: str, key: str, params: dict, value) -> bytes:
        body = json.dumps(
            {"experiment": name, "key": key, "params": params, "value": value},
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return body.encode("utf-8") + b"\n"

    @staticmethod
    def _point_response(payload: bytes, key: str, source: str) -> Response:
        return Response(
            status=200,
            body=payload,
            headers={"X-Repro-Source": source, "X-Repro-Key": key},
        )

    def _reject_429(self, reason: str) -> Response:
        return json_response(
            {"error": reason, "retry_after": self.retry_after},
            status=429,
            headers={"Retry-After": str(self.retry_after)},
        )

    # ------------------------------------------------------------ POST /sweeps

    def _launch_sweep(self, request: Request) -> Response:
        try:
            spec = request.json()
        except ValueError as exc:
            return json_response({"error": str(exc)}, status=400)
        if not isinstance(spec, dict) or not isinstance(spec.get("experiment"), str):
            return json_response(
                {"error": 'sweep spec must be a JSON object with an "experiment" name'},
                status=400,
            )
        try:
            exp = registry.get(spec["experiment"])
        except KeyError as exc:
            return json_response({"error": str(exc)}, status=404)
        scale = spec.get("scale", "tiny")
        profile = _SCALE_PROFILES.get(scale)
        if profile is None:
            return json_response(
                {"error": f"unknown scale {scale!r}; choose from {sorted(_SCALE_PROFILES)}"},
                status=400,
            )
        overrides = dict(profile) if exp.scaled else {}
        extra = spec.get("overrides", {})
        if not isinstance(extra, dict):
            return json_response({"error": '"overrides" must be an object'}, status=400)
        overrides.update(extra)
        jobs = spec.get("jobs", 1)
        backend_name = spec.get("backend", "inprocess")
        if backend_name not in ("inprocess", "local"):
            return json_response(
                {"error": f"serve sweeps support inprocess/local backends, not {backend_name!r}"},
                status=400,
            )
        if self._active_sweeps >= self.max_sweeps:
            return self._reject_429("sweep queue saturated")
        stream = self._sweep_stream(exp, overrides, jobs, backend_name)
        return Response(status=200, content_type="application/x-ndjson", stream=stream)

    async def _sweep_stream(
        self, exp, overrides: dict, jobs: int, backend_name: str
    ) -> AsyncIterator[bytes]:
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        cancelled = threading.Event()
        self._active_sweeps += 1

        def emit(event) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, event)

        def run_sweep() -> None:
            backend = None
            try:
                backend = _InstrumentedBackend(
                    create_backend(backend_name, jobs=jobs), emit, cancelled
                )
                report = run_experiment(
                    exp,
                    overrides=overrides,
                    jobs=jobs,
                    cache=self.cache,
                    backend=backend,
                )
                emit(
                    {
                        "event": "done",
                        "points": report.points,
                        "cache_hits": report.cache_hits,
                        "executed": report.executed,
                        "retries": report.retries,
                        "elapsed": round(report.elapsed, 6),
                    }
                )
            except _SweepCancelled:
                emit({"event": "cancelled"})
            except Exception as exc:  # surfaced to the client, not swallowed
                emit({"event": "error", "error": str(exc)})
            finally:
                if backend is not None:
                    backend.shutdown()
                emit(None)  # stream sentinel

        thread = threading.Thread(target=run_sweep, name="serve-sweep", daemon=True)
        thread.start()
        try:
            yield self._ndjson(
                {"event": "start", "experiment": exp.name, "overrides": overrides}
            )
            while True:
                event = await queue.get()
                if event is None:
                    break
                yield self._ndjson(event)
        finally:
            # normal completion or client disconnect: either way stop the
            # runner (submit raises on the next point) and free the slot
            cancelled.set()
            await loop.run_in_executor(None, thread.join, 10.0)
            self._active_sweeps -= 1

    @staticmethod
    def _ndjson(event: dict) -> bytes:
        return json.dumps(event, sort_keys=True).encode("utf-8") + b"\n"

    # -------------------------------------------------------------- GET /stats

    def _stats_response(self) -> Response:
        payload = {
            "uptime_s": round(time.time() - self.started_at, 3),
            "hot_tier": self.hot.snapshot(),
            "disk_cache": {
                "root": str(self.cache.root),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "journal_shards": self.cache.journal_shards,
                "journal_watermark": self.cache.journal_watermark(),
            },
            "admission": {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "queue_depth": max(0, self._inflight - self.max_inflight),
                "queue_size": self.queue_size,
                "active_sweeps": self._active_sweeps,
                "max_sweeps": self.max_sweeps,
            },
            "requests": self.stats.snapshot(),
        }
        return json_response(payload)


# ---------------------------------------------------------------- embedding


class ServerHandle:
    """A server running on its own thread + event loop (tests, benchmarks)."""

    def __init__(self, app: ServeApp, server: HttpServer, loop, thread) -> None:
        self.app = app
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def base_url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self) -> None:
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop).result(10)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(10)
        self.app.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Start ``app`` on a daemon thread; returns once the port is bound."""
    server = HttpServer(app.handle, host=host, port=port)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="serve-http", daemon=True)
    thread.start()
    if not ready.wait(10):
        raise RuntimeError("server failed to start within 10s")
    return ServerHandle(app, server, loop, thread)
