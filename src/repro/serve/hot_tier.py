"""In-memory LRU hot tier over :class:`~repro.experiments.cache.ResultCache`.

The disk cache is content-addressed, so a key's *value* can never go
stale -- but a serving process still pays a pickle load per hit.  The
hot tier keeps the rendered response bytes for the hottest keys in
memory, bounded by a byte budget, so repeat fetches of popular grid
points never touch disk at all.

Staleness is handled wholesale rather than per-entry: every lookup and
insert carries a *generation* token -- ``(code-version hash, journal
watermark)`` -- and a token change flushes the whole tier.  A code-hash
change means every content address shifted (old entries would simply
never be asked for again, but would pin memory); a journal-watermark
advance means some sweep or federation sync just wrote new provenance,
so anything we answered "not computed yet" about may now exist.  Both
events are rare next to reads, so a full flush is cheaper than
per-entry bookkeeping.

Thread-safe: the serving app computes points in worker threads while the
event loop reads, so every operation takes one plain mutex (critical
sections are dict moves, never I/O).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

__all__ = ["HotTier"]


class HotTier:
    """Byte-bounded LRU of rendered response payloads.

    ``max_bytes <= 0`` disables the tier (every ``get`` is a miss and
    ``put`` a no-op) without callers needing a special case.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024) -> None:
        self.max_bytes = int(max_bytes)
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()  # key -> payload bytes
        self._generation: Optional[tuple] = None

    def get(self, key: str, generation: tuple) -> Optional[bytes]:
        """Payload for ``key`` if cached *and* current, else ``None``."""
        with self._lock:
            if generation != self._generation:
                self._flush_locked()
                self._generation = generation
                self.misses += 1
                return None
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: str, payload: bytes, generation: tuple) -> None:
        if self.max_bytes <= 0 or len(payload) > self.max_bytes:
            return
        with self._lock:
            if generation != self._generation:
                self._flush_locked()
                self._generation = generation
            old = self._entries.pop(key, None)
            if old is not None:
                self.current_bytes -= len(old)
            self._entries[key] = payload
            self.current_bytes += len(payload)
            while self.current_bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self.current_bytes -= len(evicted)
                self.evictions += 1

    def _flush_locked(self) -> None:
        if self._entries:
            self.invalidations += 1
        self._entries.clear()
        self.current_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict:
        """Counters for ``GET /stats`` (a point-in-time copy)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": round(self.hits / lookups, 4) if lookups else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
