"""Minimal stdlib-asyncio HTTP/1.1 server for the serving layer.

Just enough HTTP for the repro API, with zero dependencies beyond
asyncio: request-line + header parsing, ``Content-Length`` bodies,
keep-alive for fixed-length responses, and streamed responses (NDJSON
progress) written incrementally with ``Connection: close`` delimiting.

Deliberately *not* here: TLS, chunked request bodies, multipart,
HTTP/2.  This serves trusted lab traffic (benchmark rigs, notebook
clients, CI smoke jobs), so the parser is strict and small: anything
malformed is a ``400`` and the connection drops.

The streaming contract is the interesting part: a ``Response`` whose
``stream`` is an async iterator is written chunk by chunk with a drain
after each, so a client that disconnects mid-stream surfaces as a write
error / closed transport *inside the generator loop*.  The generator is
then closed (its ``finally`` runs), which is how sweep cancellation on
client disconnect propagates without any out-of-band signalling.
"""

from __future__ import annotations

import asyncio
import json
import logging
from dataclasses import dataclass, field
from typing import AsyncIterator, Awaitable, Callable, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = ["HttpServer", "Request", "Response", "json_response"]

_log = logging.getLogger(__name__)

#: request line + headers must fit in this many bytes
_MAX_HEAD = 64 * 1024
#: largest accepted request body (sweep specs are small JSON)
_MAX_BODY = 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


@dataclass
class Request:
    method: str
    path: str  # decoded path, query string stripped
    query: dict  # first-value-wins decoded query params
    headers: dict  # lower-cased header name -> value
    body: bytes = b""

    def json(self):
        """Parse the body as JSON; raises ``ValueError`` on damage."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None


@dataclass
class Response:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict = field(default_factory=dict)
    #: streamed payload; mutually exclusive with ``body``
    stream: Optional[AsyncIterator[bytes]] = None


def json_response(payload, status: int = 200, headers: Optional[dict] = None) -> Response:
    """Render ``payload`` deterministically (sorted keys, tight separators).

    Determinism matters beyond aesthetics: the hot tier stores rendered
    bytes, so hot-tier and disk-tier answers for the same key are
    byte-identical by construction.
    """
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return Response(status=status, body=body + b"\n", headers=dict(headers or {}))


Handler = Callable[[Request], Awaitable[Response]]


class HttpServer:
    """``asyncio.start_server`` wrapper dispatching to one async handler."""

    def __init__(self, handler: Handler, host: str = "127.0.0.1", port: int = 0) -> None:
        self.handler = handler
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, limit=_MAX_HEAD
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                try:
                    response = await self.handler(request)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    _log.exception("handler failed for %s %s", request.method, request.path)
                    response = json_response({"error": "internal server error"}, status=500)
                keep_alive = await self._write_response(writer, request, response)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away or overflowed the head limit: just drop
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[Request]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if exc.partial in (b"", b"\r\n"):
                return None  # clean EOF between keep-alive requests
            raise
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, version = lines[0].split(" ", 2)
        except ValueError:
            raise asyncio.IncompleteReadError(head, None) from None
        if not version.startswith("HTTP/1."):
            raise asyncio.IncompleteReadError(head, None)
        headers: dict = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        split = urlsplit(target)
        query = {k: v for k, v in parse_qsl(split.query, keep_blank_values=True)}
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise asyncio.IncompleteReadError(head, None) from None
            if not 0 <= n <= _MAX_BODY:
                raise asyncio.IncompleteReadError(head, None)
            body = await reader.readexactly(n)
        return Request(
            method=method.upper(),
            path=unquote(split.path),
            query=query,
            headers=headers,
            body=body,
        )

    async def _write_response(
        self, writer: asyncio.StreamWriter, request: Request, response: Response
    ) -> bool:
        """Write ``response``; returns whether the connection may be reused."""
        reason = _REASONS.get(response.status, "Unknown")
        want_keep_alive = (
            request.headers.get("connection", "keep-alive").lower() != "close"
        )
        streaming = response.stream is not None
        keep_alive = want_keep_alive and not streaming
        head = [f"HTTP/1.1 {response.status} {reason}"]
        head.append(f"Content-Type: {response.content_type}")
        for name, value in response.headers.items():
            head.append(f"{name}: {value}")
        if streaming:
            head.append("Connection: close")  # EOF delimits the stream
        else:
            head.append(f"Content-Length: {len(response.body)}")
            head.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        if streaming:
            assert response.stream is not None
            stream = response.stream
            try:
                async for chunk in stream:
                    writer.write(chunk)
                    await writer.drain()
            finally:
                close = getattr(stream, "aclose", None)
                if close is not None:
                    await close()
            return False
        writer.write(response.body)
        await writer.drain()
        return keep_alive
