"""Serving-side observability: request counters and latency percentiles.

Latencies go into a bounded ring per route (recent-window percentiles,
not lifetime -- a warmed-up server should not have its p99 forever
anchored by cold-start compute times).  Everything is cheap enough to
update inline on the event loop; ``snapshot`` does the sorting, and only
when ``/stats`` is actually asked.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["LatencyRing", "ServeStats"]


class LatencyRing:
    """Fixed-size ring of latency samples with percentile readout."""

    def __init__(self, size: int = 4096) -> None:
        self._samples: deque = deque(maxlen=size)

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float:
        """q in [0, 100]; nearest-rank over the current window (0.0 if empty)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict:
        return {
            "count": len(self._samples),
            "p50_ms": round(self.percentile(50) * 1e3, 3),
            "p99_ms": round(self.percentile(99) * 1e3, 3),
        }


class ServeStats:
    """Per-route counters + latency rings, and status-class tallies."""

    def __init__(self, ring_size: int = 4096) -> None:
        self._lock = threading.Lock()
        self._ring_size = ring_size
        self._routes: dict = {}  # route label -> {count, ring}
        self.statuses: dict = {}  # status code -> count
        self.rejected = 0  # 429s issued by admission control
        self.timeouts = 0  # 504s from per-request deadlines

    def observe(self, route: str, status: int, seconds: float) -> None:
        with self._lock:
            entry = self._routes.get(route)
            if entry is None:
                entry = self._routes[route] = {
                    "count": 0,
                    "ring": LatencyRing(self._ring_size),
                }
            entry["count"] += 1
            entry["ring"].observe(seconds)
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if status == 429:
                self.rejected += 1
            if status == 504:
                self.timeouts += 1

    def snapshot(self) -> dict:
        with self._lock:
            routes = {
                route: {"count": entry["count"], **entry["ring"].summary()}
                for route, entry in sorted(self._routes.items())
            }
            return {
                "routes": routes,
                "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
                "rejected": self.rejected,
                "timeouts": self.timeouts,
            }
