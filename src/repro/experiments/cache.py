"""Content-addressed on-disk cache for experiment grid points.

A cached entry is keyed by the SHA-256 of ``(experiment name, canonical
JSON of the point's params, code-version hash)``.  The code-version hash
digests every ``.py`` file in the ``repro`` package, so editing any
simulator or experiment source invalidates all cached results -- stale
results can never be served after a code change (cf. *stdchk*'s
checkpoint store, which dedupes by content address for the same reason).

Values are pickled per point: point summaries are plain dicts of
scalars/lists by contract (:mod:`repro.experiments.registry`), so entries
stay small and portable.  Writes are atomic (temp file + rename) so a
killed sweep never leaves a truncated entry behind.

Cache location: ``--cache-dir`` / constructor argument, else the
``REPRO_CACHE_DIR`` environment variable, else
``~/.cache/hc3i-repro``.

The cache is *always local to the submitting machine*, whatever backend
executed the points: remote workers stream values back and the runner
writes them here as they arrive, so a sweep that dies half-way re-runs
only its missing points.  ``record`` keeps a best-effort provenance
journal (``journal.jsonl``) of which host computed each entry -- handy
when auditing a multi-host sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Optional

try:  # POSIX advisory locking for the shared provenance journal
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

__all__ = ["ResultCache", "code_version_hash", "default_cache_dir"]

_ENV_VAR = "REPRO_CACHE_DIR"
_code_hash_cache: Optional[str] = None


def default_cache_dir() -> Path:
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "hc3i-repro"


def code_version_hash() -> str:
    """SHA-256 over every ``.py`` source file of the ``repro`` package."""
    global _code_hash_cache
    if _code_hash_cache is not None:
        return _code_hash_cache
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
    _code_hash_cache = digest.hexdigest()
    return _code_hash_cache


class ResultCache:
    """Pickle store addressed by (experiment, params, code version)."""

    def __init__(
        self,
        root: Optional[Path] = None,
        code_hash: Optional[str] = None,
        enabled: bool = True,
        journal_shards: int = 1,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.code_hash = code_hash if code_hash is not None else code_version_hash()
        self.enabled = enabled
        self.journal_shards = max(1, int(journal_shards))
        self.hits = 0
        self.misses = 0

    def key(self, experiment: str, params: dict) -> str:
        """Stable content address of one grid point under the current code."""
        material = json.dumps(
            {"code": self.code_hash, "experiment": experiment, "params": params},
            sort_keys=True,
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, experiment: str, params: dict):
        """Return the cached value or ``None``; counts hit/miss."""
        if not self.enabled:
            return None
        path = self.path(self.key(experiment, params))
        if not path.exists():
            self.misses += 1
            return None
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except Exception:
            # a truncated/corrupted entry can raise nearly anything from
            # the pickle VM (UnpicklingError, ValueError, EOFError, ...);
            # any load failure is simply a cache miss
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, experiment: str, params: dict, value) -> None:
        if not self.enabled:
            return
        path = self.path(self.key(experiment, params))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            fh = os.fdopen(fd, "wb")
        except BaseException:
            # fdopen never took ownership: close the raw fd ourselves
            os.close(fd)
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        try:
            with fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def record(self, experiment: str, params: dict, host: str, elapsed: float = 0.0) -> None:
        """Append one provenance line: who computed this entry, and how long it took.

        Best-effort and append-only; the journal is documentation, never
        consulted for lookups, so journal I/O errors are swallowed.  The
        ``code`` field records which source version produced the entry --
        that is what lets federation cache sync verify entries it moves.
        """
        self.journal_append(
            [
                {
                    "time": time.time(),
                    "experiment": experiment,
                    "key": self.key(experiment, params),
                    "host": host,
                    "elapsed": round(elapsed, 6),
                    "code": self.code_hash,
                }
            ]
        )

    def journal_append(self, entries: list) -> None:
        """Append entry dicts as journal lines, safely against concurrent writers.

        Two sweeps (or two federation sites syncing into one shared cache
        dir) may append concurrently; an exclusive ``flock`` plus an
        ``O_APPEND`` write per batch keeps lines from interleaving
        mid-record.  Exception safety is part of the contract: whatever a
        write raises mid-line, the lock is released and the fd closed on
        every path, so a failed appender can never wedge every later one.
        Best-effort like :meth:`record`: I/O errors are swallowed (a torn
        final line from a killed/failed appender is tolerated -- and
        never re-served -- by :meth:`journal_entries`).

        With ``journal_shards > 1`` each entry lands in the shard file its
        cache key hashes to, so concurrent appenders for different keys
        take *different* flocks instead of serializing on one.
        """
        if not self.enabled or not entries:
            return
        groups: dict = {}
        for entry in entries:
            key = entry.get("key") if isinstance(entry, dict) else None
            path = self.journal_shard_path(key)
            groups.setdefault(path, []).append(json.dumps(entry, sort_keys=True) + "\n")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            return
        for path, lines in groups.items():
            self._locked_append(path, "".join(lines).encode("utf-8"))

    @staticmethod
    def _locked_append(path: Path, blob: bytes) -> None:
        """flock + append ``blob`` to ``path``; fd-safe on every exception path."""
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o666)
        except OSError:
            return
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                offset = 0
                while offset < len(blob):
                    offset += os.write(fd, blob[offset:])
            finally:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
        except OSError:
            pass  # best-effort: a torn line is recovered around, never served
        finally:
            os.close(fd)

    @property
    def journal_path(self) -> Path:
        """Shard 0 of the journal (the whole journal pre-sharding)."""
        return self.root / "journal.jsonl"

    def journal_shard_path(self, key: Optional[str]) -> Path:
        """The shard file an entry for ``key`` is appended to."""
        if self.journal_shards == 1 or not isinstance(key, str) or not key:
            return self.journal_path
        try:
            shard = int(key[:8], 16) % self.journal_shards
        except ValueError:
            shard = 0
        if shard == 0:
            return self.journal_path
        return self.root / f"journal.{shard:02d}.jsonl"

    def journal_paths(self) -> list:
        """Every existing journal shard file, shard 0 first."""
        paths = []
        if self.journal_path.exists():
            paths.append(self.journal_path)
        if self.root.exists():
            paths.extend(sorted(self.root.glob("journal.[0-9][0-9].jsonl")))
        return paths

    def journal_watermark(self) -> int:
        """Total bytes across all journal shards: a cheap, monotonically
        increasing high-water mark.  Any advance means provenance was
        appended (a sweep wrote results, a federation sync imported
        entries), which is what the serve layer's hot tier keys its
        invalidation on."""
        total = 0
        for path in self.journal_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def journal_entries(self) -> list:
        """Parsed provenance journal (all shards merged), oldest first.

        Tolerates damage from unlocked/foreign appenders (an rsync'd
        journal, a writer without :meth:`journal_append`'s lock): torn
        lines are skipped and multiple records interleaved onto one
        physical line are each recovered.  With a single journal file the
        file order is preserved exactly; across shards, entries merge by
        their ``time`` field (stable, so within-shard order survives).
        """
        per_file = []
        for path in self.journal_paths():
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            per_file.append(_parse_journal_text(text))
        if not per_file:
            return []
        if len(per_file) == 1:
            return per_file[0]
        merged = [entry for entries in per_file for entry in entries]
        merged.sort(key=lambda e: e.get("time", 0.0) if isinstance(e.get("time"), (int, float)) else 0.0)
        return merged

    def journal_by_key(self) -> dict:
        """Latest journal entry per cache key (for provenance lookups)."""
        by_key: dict = {}
        for entry in self.journal_entries():
            key = entry.get("key")
            if isinstance(key, str):
                by_key[key] = entry
        return by_key

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed.

        Also sweeps orphaned ``*.tmp`` files -- a sweep killed between
        :func:`tempfile.mkstemp` and :func:`os.replace` in :meth:`put`
        leaves one behind, and nothing else ever looks at them.  Orphans
        do not count toward the return value (they were never entries).
        """
        removed = 0
        if self.root.exists():
            for path in self.root.rglob("*.pkl"):
                path.unlink()
                removed += 1
            for path in self.root.rglob("*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass  # e.g. a live writer renamed it away first
        return removed

    def entry_count(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))


def _parse_journal_text(text: str) -> list:
    """Recover every intact JSON record from journal text, oldest first.

    A well-behaved journal is one object per line, but concurrent
    appenders without the lock can concatenate records onto one line or
    tear a record across a crash.  Scan each physical line for *every*
    decodable object; undecodable fragments are skipped.
    """
    decoder = json.JSONDecoder()
    entries = []
    for raw in text.splitlines():
        pos = 0
        while True:
            brace = raw.find("{", pos)
            if brace < 0:
                break
            try:
                obj, end = decoder.raw_decode(raw, brace)
            except json.JSONDecodeError:
                pos = brace + 1
                continue
            if isinstance(obj, dict):
                entries.append(obj)
            pos = end
    return entries
