"""Golden trace-equivalence capture over the experiment registry.

Every registered experiment, run at tiny scale with a fixed seed, produces
a deterministic dispatch stream in the simulation kernel.  This module
folds that stream into one :class:`~repro.sim.trace_digest.TraceDigest`
per experiment, which is what the golden suite
(``tests/test_trace_golden.py``) compares against the committed digests in
``tests/golden/trace_digests.json``.

The tiny-scale overrides here intentionally mirror the cross-backend
equivalence suite (``tests/test_cross_backend.py``): same grids, same
seeds, so a digest divergence can be cross-checked against a result-level
divergence directly.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments import registry
from repro.sim import trace_digest

__all__ = [
    "GOLDEN_SEED",
    "all_experiment_digests",
    "experiment_digest",
    "golden_overrides",
]

#: fixed grid seed for experiments whose grid takes one
GOLDEN_SEED = 7

#: the CLI's --scale tiny profile (duplicated from repro.cli to keep this
#: module importable without pulling in argparse plumbing)
TINY_PROFILE = {"nodes": 4, "total_time": 1800.0}

#: non-scaled experiments that still accept shrinking kwargs
EXTRA_TINY = {"scaling": {"shapes": [[2, 4], [3, 3]], "total_time": 900.0}}


def golden_overrides(experiment) -> dict:
    """Tiny-scale grid overrides for one experiment (seed pinned)."""
    overrides = dict(TINY_PROFILE) if experiment.scaled else {}
    overrides = experiment.grid_kwargs(overrides)
    extra = EXTRA_TINY.get(experiment.name)
    if extra:
        overrides.update(extra)
    if "seed" in experiment.grid_kwargs({"seed": GOLDEN_SEED}):
        overrides.setdefault("seed", GOLDEN_SEED)
    return overrides


def experiment_digest(name: str, overrides: Optional[dict] = None) -> dict:
    """Run one experiment's tiny grid serially under digest capture.

    Returns ``{"digest": hex, "events": n, "points": k}``.  The digest
    covers the concatenated dispatch streams of every grid point, in grid
    order -- any reordering, added event, dropped event or timestamp drift
    anywhere in the whole sweep changes it.
    """
    experiment = registry.get(name)
    if overrides is None:
        overrides = golden_overrides(experiment)
    grid = experiment.build_grid(overrides)
    with trace_digest.capture() as digest:
        for params in grid:
            experiment.point(params)
    summary = digest.summary()
    summary["points"] = len(grid)
    return summary


def all_experiment_digests() -> dict:
    """Digest every registered experiment (sorted by name)."""
    return {name: experiment_digest(name) for name in registry.names()}
