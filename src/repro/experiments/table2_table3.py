"""Tables 2 & 3 and the §5.4 no-GC sizing claims.

* **Table 2** -- the Figure 9 scenario at 103 messages 1->0, garbage
  collection every 2 hours: per collection, stored CLCs just before and
  just after.  Paper rows: before 10-18, after 2.
* **no-GC reference** -- same run without GC: "63 CLCs are stored in each
  cluster.  It means that each node in the federation stores 126 local
  states (its own 63 local states and the ones of one of its neighbor)".
  "The maximum number of logged messages during the execution in the
  sample above is 4 in both clusters."
* **Table 3** -- three clusters (cluster 2 clones cluster 1), ~200
  messages leaving/arriving per cluster.  Paper: before 30-80, after 2.
"""

from __future__ import annotations

from repro.app.workloads import TOTAL_TIME, table2_workload, table3_workload
from repro.config.timers import HOUR
from repro.experiments.common import ExperimentResult, run_federation

__all__ = ["gc_three_clusters", "gc_two_clusters", "no_gc_reference"]


def _gc_table(results, n_clusters: int) -> tuple:
    """Build (headers, rows) like the paper's Tables 2/3 layout."""
    headers = ["GC #"]
    for c in range(n_clusters):
        headers += [f"Cluster {c} Before", f"Cluster {c} After"]
    table = []
    per_cluster = [results.gc_series(c) for c in range(n_clusters)]
    rounds = min((len(s) for s in per_cluster), default=0)
    for k in range(rounds):
        row = [k + 1]
        for c in range(n_clusters):
            _t, before, after = per_cluster[c][k]
            row += [before, after]
        table.append(row)
    return headers, table


def gc_two_clusters(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    gc_period: float = 2 * HOUR,
    seed: int = 42,
    gc_mode: str = "centralized",
) -> ExperimentResult:
    topology, application, timers = table2_workload(
        nodes=nodes, total_time=total_time, gc_period=gc_period
    )
    _fed, results = run_federation(
        topology,
        application,
        timers,
        seed=seed,
        protocol_options={"gc_mode": gc_mode},
    )
    headers, rows = _gc_table(results, 2)
    exp = ExperimentResult(
        name="Table 2 -- Number of stored CLCs (2 clusters, GC every 2 h)",
        description=(
            "Stored CLCs just before and just after each garbage "
            "collection; Fig. 9 scenario with 103 messages 1->0."
        ),
        headers=headers,
        rows=rows,
        paper={"before": "10-18", "after": 2},
        runs=[results],
    )
    needed = []
    for c in range(2):
        series = results.stats.get(f"gc/c{c}/log_needed", [])
        needed.append(max((int(v) for _t, v in series), default=0))
    exp.notes.append(
        f"max replay-relevant (needed) log entries at GC instants: "
        f"c0={needed[0]}, c1={needed[1]} (paper reports 4)"
    )
    return exp


def no_gc_reference(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
) -> ExperimentResult:
    """§5.4 sizing without garbage collection."""
    topology, application, timers = table2_workload(
        nodes=nodes, total_time=total_time, gc_period=None
    )
    fed, results = run_federation(topology, application, timers, seed=seed)
    rows = []
    for c in range(2):
        stored = results.stored_clcs(c)
        states = fed.storage[c].states_held_by(0, stored)
        max_log = fed.protocol.cluster_states[c].sent_log.max_entries
        rows.append((f"Cluster {c}", stored, states, max_log))
    return ExperimentResult(
        name="No-GC reference (§5.4 sizing)",
        description=(
            "Stored CLCs, local states per node (own + neighbour replica) "
            "and peak logged messages when garbage collection is disabled."
        ),
        headers=["Cluster", "Stored CLCs", "States per node", "Peak log entries"],
        rows=rows,
        paper={
            "stored_clcs": 63,
            "states_per_node": 126,
            "peak_log": "4 (paper counts only entries still needed; see EXPERIMENTS.md)",
        },
        runs=[results],
    )


def gc_three_clusters(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    gc_period: float = 2 * HOUR,
    seed: int = 42,
    inter_messages: int = 100,
    gc_mode: str = "centralized",
) -> ExperimentResult:
    topology, application, timers = table3_workload(
        nodes=nodes,
        total_time=total_time,
        gc_period=gc_period,
        inter_messages=inter_messages,
    )
    _fed, results = run_federation(
        topology,
        application,
        timers,
        seed=seed,
        protocol_options={"gc_mode": gc_mode},
    )
    headers, rows = _gc_table(results, 3)
    return ExperimentResult(
        name="Table 3 -- Number of stored CLCs (3 clusters, GC every 2 h)",
        description=(
            "Cluster 2 clones cluster 1; roughly 200 messages leave and "
            "arrive in each cluster over the run."
        ),
        headers=headers,
        rows=rows,
        paper={"before": "30-80", "after": 2},
        runs=[results],
    )
