"""Tables 2 & 3 and the §5.4 no-GC sizing claims.

* **Table 2** -- the Figure 9 scenario at 103 messages 1->0, garbage
  collection every 2 hours: per collection, stored CLCs just before and
  just after.  Paper rows: before 10-18, after 2.
* **no-GC reference** -- same run without GC: "63 CLCs are stored in each
  cluster.  It means that each node in the federation stores 126 local
  states (its own 63 local states and the ones of one of its neighbor)".
  "The maximum number of logged messages during the execution in the
  sample above is 4 in both clusters."
* **Table 3** -- three clusters (cluster 2 clones cluster 1), ~200
  messages leaving/arriving per cluster.  Paper: before 30-80, after 2.
"""

from __future__ import annotations

from repro.app.workloads import TOTAL_TIME, table2_workload, table3_workload
from repro.config.timers import HOUR
from repro.experiments.common import ExperimentResult, run_federation
from repro.experiments.registry import Experiment, register

__all__ = ["gc_three_clusters", "gc_two_clusters", "no_gc_reference"]


def _gc_table(gc_series: list) -> tuple:
    """Build (headers, rows) like the paper's Tables 2/3 layout."""
    n_clusters = len(gc_series)
    headers = ["GC #"]
    for c in range(n_clusters):
        headers += [f"Cluster {c} Before", f"Cluster {c} After"]
    table = []
    rounds = min((len(s) for s in gc_series), default=0)
    for k in range(rounds):
        row = [k + 1]
        for c in range(n_clusters):
            _t, before, after = gc_series[c][k]
            row += [before, after]
        table.append(row)
    return headers, table


def _table2_grid(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    gc_period: float = 2 * HOUR,
    seed: int = 42,
    gc_mode: str = "centralized",
) -> list:
    return [
        {
            "nodes": nodes,
            "total_time": total_time,
            "gc_period": gc_period,
            "seed": seed,
            "gc_mode": gc_mode,
        }
    ]


def _table2_point(params: dict) -> dict:
    topology, application, timers = table2_workload(
        nodes=params["nodes"],
        total_time=params["total_time"],
        gc_period=params["gc_period"],
    )
    _fed, results = run_federation(
        topology,
        application,
        timers,
        seed=params["seed"],
        protocol_options={"gc_mode": params["gc_mode"]},
    )
    needed = []
    for c in range(2):
        series = results.stats.get(f"gc/c{c}/log_needed", [])
        needed.append(max((int(v) for _t, v in series), default=0))
    return {
        "gc_series": [list(results.gc_series(c)) for c in range(2)],
        "log_needed": needed,
    }


def _table2_reduce(grid: list, points: list) -> ExperimentResult:
    point = points[0]
    headers, rows = _gc_table(point["gc_series"])
    exp = ExperimentResult(
        name="Table 2 -- Number of stored CLCs (2 clusters, GC every 2 h)",
        description=(
            "Stored CLCs just before and just after each garbage "
            "collection; Fig. 9 scenario with 103 messages 1->0."
        ),
        headers=headers,
        rows=rows,
        paper={"before": "10-18", "after": 2},
    )
    needed = point["log_needed"]
    exp.notes.append(
        f"max replay-relevant (needed) log entries at GC instants: "
        f"c0={needed[0]}, c1={needed[1]} (paper reports 4)"
    )
    return exp


def _no_gc_grid(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
) -> list:
    return [{"nodes": nodes, "total_time": total_time, "seed": seed}]


def _no_gc_point(params: dict) -> dict:
    topology, application, timers = table2_workload(
        nodes=params["nodes"], total_time=params["total_time"], gc_period=None
    )
    fed, results = run_federation(
        topology, application, timers, seed=params["seed"]
    )
    clusters = []
    for c in range(2):
        stored = results.stored_clcs(c)
        clusters.append(
            {
                "stored": stored,
                "states": fed.storage[c].states_held_by(0, stored),
                "max_log": fed.protocol.cluster_states[c].sent_log.max_entries,
            }
        )
    return {"clusters": clusters}


def _no_gc_reduce(grid: list, points: list) -> ExperimentResult:
    rows = [
        (f"Cluster {c}", info["stored"], info["states"], info["max_log"])
        for c, info in enumerate(points[0]["clusters"])
    ]
    return ExperimentResult(
        name="No-GC reference (§5.4 sizing)",
        description=(
            "Stored CLCs, local states per node (own + neighbour replica) "
            "and peak logged messages when garbage collection is disabled."
        ),
        headers=["Cluster", "Stored CLCs", "States per node", "Peak log entries"],
        rows=rows,
        paper={
            "stored_clcs": 63,
            "states_per_node": 126,
            "peak_log": "4 (paper counts only entries still needed; see EXPERIMENTS.md)",
        },
    )


def _table3_grid(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    gc_period: float = 2 * HOUR,
    seed: int = 42,
    inter_messages: int = 100,
    gc_mode: str = "centralized",
) -> list:
    return [
        {
            "nodes": nodes,
            "total_time": total_time,
            "gc_period": gc_period,
            "seed": seed,
            "inter_messages": inter_messages,
            "gc_mode": gc_mode,
        }
    ]


def _table3_point(params: dict) -> dict:
    topology, application, timers = table3_workload(
        nodes=params["nodes"],
        total_time=params["total_time"],
        gc_period=params["gc_period"],
        inter_messages=params["inter_messages"],
    )
    _fed, results = run_federation(
        topology,
        application,
        timers,
        seed=params["seed"],
        protocol_options={"gc_mode": params["gc_mode"]},
    )
    return {"gc_series": [list(results.gc_series(c)) for c in range(3)]}


def _table3_reduce(grid: list, points: list) -> ExperimentResult:
    headers, rows = _gc_table(points[0]["gc_series"])
    return ExperimentResult(
        name="Table 3 -- Number of stored CLCs (3 clusters, GC every 2 h)",
        description=(
            "Cluster 2 clones cluster 1; roughly 200 messages leave and "
            "arrive in each cluster over the run."
        ),
        headers=headers,
        rows=rows,
        paper={"before": "30-80", "after": 2},
    )


TABLE2 = register(
    Experiment(
        name="table2",
        title="Table 2 -- stored CLCs around each GC, 2 clusters (§5.4)",
        artifact="Table 2",
        grid=_table2_grid,
        point=_table2_point,
        reduce=_table2_reduce,
    )
)

NO_GC = register(
    Experiment(
        name="no-gc",
        title="No-GC reference -- §5.4 storage sizing",
        artifact="§5.4",
        grid=_no_gc_grid,
        point=_no_gc_point,
        reduce=_no_gc_reduce,
    )
)

TABLE3 = register(
    Experiment(
        name="table3",
        title="Table 3 -- stored CLCs around each GC, 3 clusters (§5.4)",
        artifact="Table 3",
        grid=_table3_grid,
        point=_table3_point,
        reduce=_table3_reduce,
    )
)


def gc_two_clusters(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    gc_period: float = 2 * HOUR,
    seed: int = 42,
    gc_mode: str = "centralized",
) -> ExperimentResult:
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        TABLE2,
        nodes=nodes,
        total_time=total_time,
        gc_period=gc_period,
        seed=seed,
        gc_mode=gc_mode,
    )


def no_gc_reference(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
) -> ExperimentResult:
    """§5.4 sizing without garbage collection."""
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(NO_GC, nodes=nodes, total_time=total_time, seed=seed)


def gc_three_clusters(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    gc_period: float = 2 * HOUR,
    seed: int = 42,
    inter_messages: int = 100,
    gc_mode: str = "centralized",
) -> ExperimentResult:
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        TABLE3,
        nodes=nodes,
        total_time=total_time,
        gc_period=gc_period,
        seed=seed,
        inter_messages=inter_messages,
        gc_mode=gc_mode,
    )
