"""Figures 6 & 7: influence of the delay between unforced CLCs in cluster 0.

Setup (§5.2): the Table-1 workload; cluster 1's CLC timer "set to
infinite"; cluster 0's timer swept along the x axis (minutes).

Paper shapes to reproduce:

* **Figure 6** (cluster 0): unforced CLCs fall roughly as
  ``total_time / delay`` (slightly fewer, because the timer resets whenever
  a forced CLC commits); forced CLCs stay *constant* (~8) -- they are
  caused by the few (11) messages coming from cluster 1, independently of
  the timer.
* **Figure 7** (cluster 1): zero unforced CLCs (infinite timer); forced
  CLCs *proportional to the number of CLCs stored in cluster 0* "because
  numerous messages come from cluster 0" -- each cluster-0 CLC bumps the
  SN, and the next of the ~145 messages forces a CLC in cluster 1.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from repro.app.workloads import TOTAL_TIME, table1_workload
from repro.config.timers import MINUTE
from repro.experiments.common import ExperimentResult, run_federation
from repro.experiments.registry import Experiment, register

__all__ = ["clc_delay_sweep", "DEFAULT_DELAYS_MIN"]

DEFAULT_DELAYS_MIN = [5, 10, 15, 20, 30, 45, 60, 90, 120]


def _grid(
    delays_min: Optional[Sequence[float]] = None,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
    protocol: str = "hc3i",
) -> list:
    return [
        {
            "delay_min": delay,
            "nodes": nodes,
            "total_time": total_time,
            "seed": seed,
            "protocol": protocol,
        }
        for delay in (delays_min or DEFAULT_DELAYS_MIN)
    ]


def _point(params: dict) -> dict:
    """One sweep point (module-level so it is picklable for processes)."""
    topology, application, timers = table1_workload(
        nodes=params["nodes"],
        total_time=params["total_time"],
        clc_period_0=params["delay_min"] * MINUTE,
        clc_period_1=None,
    )
    _fed, results = run_federation(
        topology,
        application,
        timers,
        protocol=params["protocol"],
        seed=params["seed"],
    )
    return {"c0": results.clc_counts(0), "c1": results.clc_counts(1)}


def _reduce(grid: list, points: list) -> ExperimentResult:
    series: dict = {
        "c0 unforced": [],
        "c0 forced": [],
        "c1 unforced": [],
        "c1 forced": [],
    }
    for point in points:
        series["c0 unforced"].append(point["c0"]["unforced"])
        series["c0 forced"].append(point["c0"]["forced"])
        series["c1 unforced"].append(point["c1"]["unforced"])
        series["c1 forced"].append(point["c1"]["forced"])
    return ExperimentResult(
        name="Figures 6 & 7 -- Interval between CLCs influence",
        description=(
            "Committed CLC counts vs the delay between unforced CLCs in "
            "cluster 0 (cluster 1 timer infinite)."
        ),
        x_label="delay (min)",
        xs=[params["delay_min"] for params in grid],
        series=series,
        paper={
            "fig6_forced_c0": "constant (~8, caused by the 11 msgs 1->0)",
            "fig6_unforced_c0": "~ total_time/delay, decreasing",
            "fig7_unforced_c1": 0,
            "fig7_forced_c1": "proportional to cluster-0 CLC count",
        },
    )


EXPERIMENT = register(
    Experiment(
        name="fig6-fig7",
        title="Figures 6 & 7 -- CLC interval sweep in cluster 0 (§5.2)",
        artifact="Figures 6-7",
        grid=_grid,
        point=_point,
        reduce=_reduce,
    )
)


def clc_delay_sweep(
    delays_min: Optional[Sequence[float]] = None,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
    protocol: str = "hc3i",
    parallel: bool = False,
) -> ExperimentResult:
    """Sweep cluster 0's CLC timer; report per-cluster forced/unforced CLCs.

    ``parallel=True`` fans the (independent, deterministic) sweep points
    out over a process pool.
    """
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        EXPERIMENT,
        jobs=(os.cpu_count() or 1) if parallel else 1,
        delays_min=list(delays_min) if delays_min is not None else None,
        nodes=nodes,
        total_time=total_time,
        seed=seed,
        protocol=protocol,
    )
