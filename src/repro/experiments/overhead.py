"""§5.2 headline: network traffic and storage cost induced by the protocol.

The paper argues the overhead is tunable: "If the frequency of unforced
CLCs is low in a cluster, the SNs will not grow too fast, so inter-cluster
messages from this cluster would have a low probability to force CLCs ...
If no CLC is initiated, the only protocol cost consists in logging
optimistically in volatile memory inter-cluster messages and transmitting
an integer (SN) with them."

This experiment decomposes the protocol's cost for a range of CLC timers,
from "never" (the paper's minimal-cost regime) to aggressive:

* piggyback bytes added to inter-cluster application messages,
* two-phase-commit control traffic (requests/acks/commits),
* stable-storage replica traffic,
* acknowledgement traffic,
* peak volatile log occupancy (bytes),
* peak checkpoint storage (bytes),

all relative to the pure application byte volume.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.app.workloads import TOTAL_TIME, table1_workload
from repro.config.timers import MINUTE
from repro.experiments.common import ExperimentResult, run_federation
from repro.experiments.registry import Experiment, register

__all__ = ["protocol_overhead"]

_CONTROL_KINDS = ("clc_request", "clc_ack", "clc_commit", "clc_initiate")

DEFAULT_TIMERS_MIN = [None, 120, 60, 30, 10]


def _grid(
    timers_min: Optional[Sequence[Optional[float]]] = None,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
) -> list:
    return [
        {
            "timer_min": timer,
            "nodes": nodes,
            "total_time": total_time,
            "seed": seed,
        }
        for timer in (timers_min or DEFAULT_TIMERS_MIN)
    ]


def _point(params: dict) -> dict:
    timer = params["timer_min"]
    period = None if timer is None else timer * MINUTE
    topology, application, timers = table1_workload(
        nodes=params["nodes"],
        total_time=params["total_time"],
        clc_period_0=period,
        clc_period_1=period,
        messages_1_to_0=103,
    )
    fed, results = run_federation(
        topology, application, timers, seed=params["seed"]
    )

    def kind_bytes(kind: str) -> int:
        return results.counter(f"net/bytes/kind/{kind}")

    inter_msgs = results.app_messages(0, 1) + results.app_messages(1, 0)
    return {
        "app_bytes": results.counter("net/bytes/app"),
        "piggyback_bytes": inter_msgs * 12,  # SN (8) + epoch (4)
        "control_bytes": sum(kind_bytes(k) for k in _CONTROL_KINDS),
        "replica_bytes": kind_bytes("replica"),
        "ack_bytes": kind_bytes("inter_ack"),
        "log_peak_bytes": sum(
            fed.protocol.cluster_states[c].sent_log.max_entries
            * application.clusters[c].message_size
            for c in range(2)
        ),
        "stored_bytes": sum(
            fed.protocol.cluster_states[c].store.total_state_bytes()
            for c in range(2)
        ),
        "clcs": sum(results.clc_counts(c)["total"] for c in range(2)),
    }


def _reduce(grid: list, points: list) -> ExperimentResult:
    rows = []
    for params, point in zip(grid, points):
        timer = params["timer_min"]
        # Replica traffic dominates any byte ratio; report the *control*
        # overhead the paper reasons about separately from storage motion.
        overhead_pct = (
            100.0
            * (point["piggyback_bytes"] + point["control_bytes"] + point["ack_bytes"])
            / point["app_bytes"]
        )
        rows.append(
            (
                "off" if timer is None else f"{timer:g} min",
                point["clcs"],
                point["piggyback_bytes"],
                point["control_bytes"],
                point["ack_bytes"],
                point["replica_bytes"],
                point["log_peak_bytes"],
                point["stored_bytes"],
                round(overhead_pct, 2),
            )
        )
    return ExperimentResult(
        name="§5.2 -- Network traffic and storage cost of the protocol",
        description=(
            "Cost decomposition vs the unforced-CLC timer (both clusters); "
            "'off' is the paper's minimal-cost regime where the only cost "
            "is sender-side logging plus one integer per inter-cluster "
            "message."
        ),
        headers=[
            "CLC timer",
            "CLCs",
            "piggyback B",
            "2PC B",
            "ack B",
            "replica B",
            "peak log B",
            "stored B",
            "ctl overhead %",
        ],
        rows=rows,
        paper={
            "claim": "with no CLCs the only cost is volatile logging + one "
            "integer per inter-cluster message"
        },
    )


EXPERIMENT = register(
    Experiment(
        name="overhead",
        title="§5.2 -- protocol traffic and storage cost decomposition",
        artifact="§5.2",
        grid=_grid,
        point=_point,
        reduce=_reduce,
    )
)


def protocol_overhead(
    timers_min: Optional[Sequence[Optional[float]]] = None,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
) -> ExperimentResult:
    """Cost decomposition across CLC timer settings (both clusters equal)."""
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        EXPERIMENT,
        timers_min=list(timers_min) if timers_min is not None else None,
        nodes=nodes,
        total_time=total_time,
        seed=seed,
    )
