"""Federation cache sync: move result-cache entries between sites.

The result cache is content-addressed (*stdchk*-style): an entry's key
already binds experiment name, canonical params, and the code-version
hash of the sources that computed it, so entries are location-independent
and can be copied between federation sites freely -- a lookup can only
ever hit an entry produced by the same code and params.  What sync adds
on top of raw copying:

* **Archives.** ``export_cache`` packs every entry into a single
  ``.tar.gz`` with a manifest (format version, exporting site's code
  hash, per-entry provenance lifted from the journal) -- one file to
  ``scp`` between sites.
* **Provenance travels.** Imported/merged entries get journal lines at
  the destination recording the *original* computing host plus a ``via``
  marker, so ``journal.jsonl`` still answers "who computed this?" after
  a sweep crosses sites.
* **Code-version verification.** Every entry carries the code hash it
  was computed under (from the manifest, or the source journal for
  dir-to-dir merges).  Entries from different sources than the local
  checkout are *skipped and flagged* -- they could never be served
  anyway, so importing them is either an operator error (stale archive)
  or dead weight.  An archive with no acceptable entry is rejected
  outright, before anything is written.  ``allow_mismatch`` overrides
  the skip for deliberate multi-version mirrors.

Entries travel as pickles, exactly as they arrive from SSH/SLURM
workers: only import archives from federation sites you trust (the same
trust running their results implies).
"""

from __future__ import annotations

import io
import json
import os
import re
import tarfile
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.experiments.cache import ResultCache

__all__ = [
    "ARCHIVE_FORMAT",
    "CacheSyncError",
    "SyncReport",
    "export_cache",
    "import_cache",
    "merge_caches",
]

#: bump when the archive layout changes incompatibly
ARCHIVE_FORMAT = 1

_MANIFEST_NAME = "manifest.json"
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


class CacheSyncError(RuntimeError):
    """An export/import/merge could not be performed."""


@dataclass
class SyncReport:
    """Outcome of one sync operation, CLI-printable via :meth:`summary`."""

    operation: str
    source: str
    destination: str
    total: int = 0
    #: entries newly written at the destination
    imported: int = 0
    #: entries the destination already had (byte-identical by construction)
    skipped_existing: int = 0
    #: entries whose recorded code hash differs from the local sources
    skipped_mismatch: int = 0
    #: entries imported without a verifiable code hash (dir merges only)
    unverified: int = 0
    #: sample of mismatched keys, for the operator's post-mortem
    mismatched_keys: list = field(default_factory=list)

    def summary(self) -> str:
        text = (
            f"[cache {self.operation}] {self.source} -> {self.destination}: "
            f"{self.imported}/{self.total} entries"
        )
        details = []
        if self.skipped_existing:
            details.append(f"{self.skipped_existing} already present")
        if self.skipped_mismatch:
            details.append(f"{self.skipped_mismatch} skipped (code-version mismatch)")
        if self.unverified:
            details.append(f"{self.unverified} unverified (no journal provenance)")
        if details:
            text += " (" + ", ".join(details) + ")"
        return text


def export_cache(cache: ResultCache, archive: Union[str, Path]) -> SyncReport:
    """Pack every cache entry plus provenance into ``archive`` (.tar.gz).

    The manifest records the exporting site's current code hash and, per
    entry, the journal-known provenance (computing host, experiment,
    elapsed, code hash).  Writing is atomic: the archive appears only
    once complete.
    """
    archive = Path(archive)
    provenance = cache.journal_by_key()
    entries = []
    paths = sorted(cache.root.rglob("*.pkl")) if cache.root.exists() else []
    archive.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=archive.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as raw, tarfile.open(fileobj=raw, mode="w:gz") as tar:
            for path in paths:
                key = path.stem
                if not _KEY_RE.match(key):
                    continue
                info = {"key": key}
                journal = provenance.get(key)
                if journal:
                    for attr in ("experiment", "host", "elapsed", "time"):
                        if attr in journal:
                            info[attr] = journal[attr]
                    if isinstance(journal.get("code"), str):
                        info["code_hash"] = journal["code"]
                entries.append(info)
                tar.add(path, arcname=_member_name(key))
            manifest = {
                "format": ARCHIVE_FORMAT,
                "code_hash": cache.code_hash,
                "created": time.time(),
                "entry_count": len(entries),
                "entries": entries,
            }
            _add_bytes(tar, _MANIFEST_NAME, json.dumps(manifest, indent=2).encode())
        os.replace(tmp, archive)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return SyncReport(
        operation="export",
        source=str(cache.root),
        destination=str(archive),
        total=len(entries),
        imported=len(entries),
    )


def import_cache(
    cache: ResultCache,
    source: Union[str, Path],
    allow_mismatch: bool = False,
) -> SyncReport:
    """Import an exported archive -- or merge a cache *directory* -- into ``cache``.

    Classification happens before any write: if every entry in the
    source carries a code hash different from the local sources (a stale
    archive), the import is rejected and the local cache is untouched.
    Partially mismatched sources import the matching entries and flag
    the rest in the report.
    """
    source = Path(source)
    if source.is_dir():
        return merge_caches(source, cache, allow_mismatch=allow_mismatch)
    return _import_archive(cache, source, allow_mismatch=allow_mismatch)


def merge_caches(
    source_dir: Union[str, Path],
    dest: Union[ResultCache, str, Path],
    allow_mismatch: bool = False,
) -> SyncReport:
    """Merge the cache directory ``source_dir`` into ``dest``.

    Per-entry code hashes come from the source's journal; entries the
    journal never recorded cannot be verified and are imported anyway
    (content addressing makes them inert at worst) but counted as
    ``unverified``.
    """
    source_dir = Path(source_dir)
    if not source_dir.is_dir():
        raise CacheSyncError(f"source cache directory not found: {source_dir}")
    cache = dest if isinstance(dest, ResultCache) else ResultCache(root=Path(dest))
    if source_dir.resolve() == cache.root.resolve():
        raise CacheSyncError(f"cannot merge a cache directory into itself: {source_dir}")
    src = ResultCache(root=source_dir, code_hash=cache.code_hash)
    provenance = src.journal_by_key()

    candidates = []
    for path in sorted(source_dir.rglob("*.pkl")):
        key = path.stem
        if not _KEY_RE.match(key):
            continue
        journal = provenance.get(key, {})
        code = journal.get("code") if isinstance(journal.get("code"), str) else None
        candidates.append((key, code, journal, path))

    report = SyncReport(
        operation="merge",
        source=str(source_dir),
        destination=str(cache.root),
        total=len(candidates),
    )
    accepted = _classify(candidates, cache.code_hash, allow_mismatch, report)
    _reject_if_all_mismatched(report, str(source_dir))

    journal_lines = []
    for key, code, journal, path in accepted:
        target = cache.path(key)
        if target.exists():
            report.skipped_existing += 1
            continue
        _atomic_copy_bytes(path.read_bytes(), target)
        report.imported += 1
        if code is None:
            report.unverified += 1
        journal_lines.append(
            _journal_line(key, code, journal, via=f"merge:{source_dir}")
        )
    cache.journal_append(journal_lines)
    return report


def _import_archive(cache: ResultCache, archive: Path, allow_mismatch: bool) -> SyncReport:
    if not archive.is_file():
        raise CacheSyncError(f"archive not found: {archive}")
    try:
        tar = tarfile.open(archive, "r:*")
    except (tarfile.TarError, OSError) as exc:
        raise CacheSyncError(f"cannot read archive {archive}: {exc}") from None
    with tar:
        manifest = _read_manifest(tar, archive)
        archive_hash = manifest.get("code_hash")
        if not isinstance(archive_hash, str):
            raise CacheSyncError(f"archive {archive} manifest has no code_hash")
        members = {m.name: m for m in tar.getmembers() if m.isfile()}

        candidates = []
        for info in manifest.get("entries", []):
            key = info.get("key")
            if not isinstance(key, str) or not _KEY_RE.match(key):
                raise CacheSyncError(f"archive {archive} manifest lists invalid key {key!r}")
            member = members.get(_member_name(key))
            if member is None:
                raise CacheSyncError(f"archive {archive} is missing entry {key[:12]}...")
            code = info.get("code_hash", archive_hash)
            candidates.append((key, code, info, member))

        report = SyncReport(
            operation="import",
            source=str(archive),
            destination=str(cache.root),
            total=len(candidates),
        )
        accepted = _classify(candidates, cache.code_hash, allow_mismatch, report)
        _reject_if_all_mismatched(report, str(archive))

        journal_lines = []
        for key, code, info, member in accepted:
            target = cache.path(key)
            if target.exists():
                report.skipped_existing += 1
                continue
            fileobj = tar.extractfile(member)
            if fileobj is None:  # pragma: no cover - isfile() filtered above
                raise CacheSyncError(f"archive {archive}: unreadable entry {key[:12]}...")
            _atomic_copy_bytes(fileobj.read(), target)
            report.imported += 1
            journal_lines.append(
                _journal_line(key, code, info, via=f"import:{archive.name}")
            )
        cache.journal_append(journal_lines)
    return report


# -- shared plumbing ----------------------------------------------------


def _classify(candidates: list, local_hash: str, allow_mismatch: bool, report: SyncReport) -> list:
    """Split candidates into accepted entries, flagging mismatches on ``report``."""
    accepted = []
    for item in candidates:
        code = item[1]
        if code is not None and code != local_hash and not allow_mismatch:
            report.skipped_mismatch += 1
            if len(report.mismatched_keys) < 8:
                report.mismatched_keys.append(item[0])
            continue
        accepted.append(item)
    return accepted


def _reject_if_all_mismatched(report: SyncReport, source: str) -> None:
    if report.total and report.skipped_mismatch == report.total:
        raise CacheSyncError(
            f"{source}: every entry was computed under different repro sources "
            "than this checkout (stale archive, or sync the code first); "
            "nothing was imported -- use --allow-mismatch to import anyway"
        )


def _journal_line(key: str, code: Optional[str], info: dict, via: str) -> dict:
    line = {
        "time": time.time(),
        "key": key,
        "host": str(info.get("host", "unknown")),
        "via": via,
    }
    if isinstance(info.get("experiment"), str):
        line["experiment"] = info["experiment"]
    if isinstance(info.get("elapsed"), (int, float)):
        line["elapsed"] = info["elapsed"]
    if code is not None:
        line["code"] = code
    return line


def _member_name(key: str) -> str:
    return f"entries/{key[:2]}/{key}.pkl"


def _add_bytes(tar: tarfile.TarFile, name: str, data: bytes) -> None:
    info = tarfile.TarInfo(name)
    info.size = len(data)
    info.mtime = int(time.time())
    tar.addfile(info, io.BytesIO(data))


def _read_manifest(tar: tarfile.TarFile, archive: Path) -> dict:
    try:
        member = tar.extractfile(_MANIFEST_NAME)
    except KeyError:
        member = None
    if member is None:
        raise CacheSyncError(
            f"{archive} is not a repro cache archive (no {_MANIFEST_NAME}); "
            "was it produced by `repro cache export`?"
        )
    try:
        manifest = json.load(member)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CacheSyncError(f"archive {archive} has a corrupt manifest: {exc}") from None
    fmt = manifest.get("format")
    if fmt != ARCHIVE_FORMAT:
        raise CacheSyncError(
            f"archive {archive} uses format {fmt!r}; this build reads format {ARCHIVE_FORMAT}"
        )
    return manifest


def _atomic_copy_bytes(data: bytes, target: Path) -> None:
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
