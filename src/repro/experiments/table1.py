"""Table 1: application message counts for the two-cluster workload.

Paper values (§5.2, 2 clusters x 100 nodes, 10-hour application):

===================  =====
flow                 count
===================  =====
cluster 0 -> 0        2920
cluster 1 -> 1        2497
cluster 0 -> 1         145
cluster 1 -> 0          11
===================  =====
"""

from __future__ import annotations

from repro.app.workloads import TOTAL_TIME, table1_workload
from repro.experiments.common import ExperimentResult, run_federation
from repro.experiments.registry import Experiment, register

__all__ = ["table1_message_counts", "PAPER_TABLE1"]

PAPER_TABLE1 = {(0, 0): 2920, (1, 1): 2497, (0, 1): 145, (1, 0): 11}

_ORDER = [(0, 0), (1, 1), (0, 1), (1, 0)]


def _grid(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
) -> list:
    return [{"nodes": nodes, "total_time": total_time, "seed": seed}]


def _point(params: dict) -> dict:
    topology, application, timers = table1_workload(
        nodes=params["nodes"], total_time=params["total_time"]
    )
    _fed, results = run_federation(
        topology, application, timers, seed=params["seed"]
    )
    return {
        "messages": {f"{s}->{d}": results.app_messages(s, d) for s, d in _ORDER}
    }


def _reduce(grid: list, points: list) -> ExperimentResult:
    params, point = grid[0], points[0]
    scale = (params["nodes"] * params["total_time"]) / (100 * TOTAL_TIME)
    rows = []
    for src, dst in _ORDER:
        measured = point["messages"][f"{src}->{dst}"]
        expected = PAPER_TABLE1[(src, dst)] * scale
        rows.append(
            (f"Cluster {src}", f"Cluster {dst}", measured, round(expected, 1))
        )
    exp = ExperimentResult(
        name="Table 1 -- Application messages",
        description=(
            "Message counts per cluster pair for the calibrated two-cluster "
            "code-coupling workload (simulation on cluster 0, trace "
            "processing on cluster 1)."
        ),
        headers=["Sender's Cluster", "Receiver's Cluster", "Messages", "Paper (scaled)"],
        rows=rows,
        paper={f"{s}->{d}": c for (s, d), c in PAPER_TABLE1.items()},
    )
    if scale != 1.0:
        exp.notes.append(
            f"run scaled by {scale:.4g} (nodes={params['nodes']}, "
            f"total_time={params['total_time']})"
        )
    return exp


EXPERIMENT = register(
    Experiment(
        name="table1",
        title="Table 1 -- application message counts (§5.2)",
        artifact="Table 1",
        grid=_grid,
        point=_point,
        reduce=_reduce,
    )
)


def table1_message_counts(
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
) -> ExperimentResult:
    """Run the Table 1 workload and report the message-count matrix."""
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        EXPERIMENT, nodes=nodes, total_time=total_time, seed=seed
    )
