"""Process-parallel map primitive (see also :mod:`repro.experiments.runner`).

Each sweep point is an independent simulation, so figure sweeps are
embarrassingly parallel.  ``parallel_map`` fans work out over a process
pool (simulations are CPU-bound; threads would serialize on the GIL) and
preserves input order.  Determinism is unaffected: every point builds its
own federation from an explicit seed, so serial and parallel execution
produce identical results.

Workers must be module-level functions with picklable arguments.  The
sweep engine (:mod:`repro.experiments.runner`) layers registry lookup,
result caching and worker-loss retry on top of the pluggable backend
layer (:mod:`repro.experiments.backends`); this module remains the
dependency-light primitive, but accepts a ``backend`` so ad-hoc maps can
ride the same execution layer (e.g. an ``InProcessBackend`` under a
debugger, where spawning processes is unwelcome).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional, Sequence

__all__ = ["parallel_map"]


def parallel_map(
    fn: Callable,
    items: Sequence,
    max_workers: Optional[int] = None,
    serial: bool = False,
    backend=None,
):
    """Map ``fn`` over ``items``, optionally across processes.

    Falls back to serial execution for trivial inputs or when ``serial``
    is requested (useful under debuggers and coverage tools).  When a
    :class:`~repro.experiments.backends.Backend` is supplied, items are
    scheduled through it instead of a private pool (order preserved; the
    backend is not shut down here).
    """
    items = list(items)
    if backend is not None:
        from repro.experiments.backends import PointTask

        label = getattr(fn, "__name__", "parallel_map")
        outcomes = backend.map_grid(
            PointTask(experiment=label, params=item, fn=fn) for item in items
        )
        return [outcome.value for outcome in outcomes]
    if serial or len(items) <= 1:
        return [fn(item) for item in items]
    if max_workers is None:
        max_workers = min(len(items), os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, items))
