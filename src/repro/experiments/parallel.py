"""Process-parallel map primitive (see also :mod:`repro.experiments.runner`).

Each sweep point is an independent simulation, so figure sweeps are
embarrassingly parallel.  ``parallel_map`` fans work out over a process
pool (simulations are CPU-bound; threads would serialize on the GIL) and
preserves input order.  Determinism is unaffected: every point builds its
own federation from an explicit seed, so serial and parallel execution
produce identical results.

Workers must be module-level functions with picklable arguments.  The
sweep engine (:mod:`repro.experiments.runner`) layers registry lookup and
result caching on top of the same pool pattern; this module remains the
dependency-free primitive.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional, Sequence

__all__ = ["parallel_map"]


def parallel_map(
    fn: Callable,
    items: Sequence,
    max_workers: Optional[int] = None,
    serial: bool = False,
):
    """Map ``fn`` over ``items``, optionally across processes.

    Falls back to serial execution for trivial inputs or when ``serial``
    is requested (useful under debuggers and coverage tools).
    """
    items = list(items)
    if serial or len(items) <= 1:
        return [fn(item) for item in items]
    if max_workers is None:
        max_workers = min(len(items), os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, items))
