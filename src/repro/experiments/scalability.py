"""Simulator scalability: cost of growing the federation.

Not a paper experiment -- it characterizes the *reproduction substrate*
itself, so users know what problem sizes are practical: simulated events
and wall-clock time as the federation grows in nodes and clusters
(protocol control traffic grows with both: the 2PC is linear in cluster
size, the CIC layer in cluster count).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.cluster.federation import Federation
from repro.config.application import ApplicationConfig, ClusterAppSpec
from repro.config.timers import MINUTE, TimersConfig
from repro.experiments.common import ExperimentResult
from repro.network.topology import ClusterSpec, Topology

__all__ = ["federation_scaling"]


def _uniform_workload(n_clusters: int, total_time: float) -> ApplicationConfig:
    p_inter = 0.05
    specs = []
    for c in range(n_clusters):
        probs = [p_inter / max(1, n_clusters - 1)] * n_clusters
        probs[c] = 1.0 - p_inter
        specs.append(ClusterAppSpec(mean_compute=60.0, send_probabilities=probs))
    return ApplicationConfig(clusters=specs, total_time=total_time)


def federation_scaling(
    shapes: Optional[Sequence[tuple]] = None,
    total_time: float = 1800.0,
    seed: int = 42,
) -> ExperimentResult:
    """Sweep (n_clusters, nodes_per_cluster) shapes."""
    shapes = list(
        shapes
        if shapes is not None
        else [(2, 10), (2, 50), (2, 100), (4, 50), (8, 25), (16, 12)]
    )
    rows = []
    for n_clusters, nodes in shapes:
        topology = Topology(
            clusters=[ClusterSpec(f"c{i}", nodes) for i in range(n_clusters)]
        )
        application = _uniform_workload(n_clusters, total_time)
        timers = TimersConfig(clc_periods=[5 * MINUTE] * n_clusters)
        fed = Federation(topology, application, timers, seed=seed)
        t0 = time.perf_counter()
        results = fed.run()
        wall = time.perf_counter() - t0
        rows.append(
            (
                f"{n_clusters}x{nodes}",
                topology.total_nodes,
                results.events,
                sum(results.messages.values()),
                results.protocol_messages,
                round(wall, 3),
                int(results.events / wall) if wall > 0 else 0,
            )
        )
    return ExperimentResult(
        name="Scalability -- simulator cost vs federation shape",
        description=(
            f"{total_time:g}s of simulated time; 5-minute CLC timers; "
            "5% inter-cluster traffic spread uniformly."
        ),
        headers=[
            "shape",
            "nodes",
            "events",
            "app msgs",
            "protocol msgs",
            "wall s",
            "events/s",
        ],
        rows=rows,
    )
