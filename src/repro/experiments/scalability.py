"""Simulator scalability: cost of growing the federation.

Not a paper experiment -- it characterizes the *reproduction substrate*
itself, so users know what problem sizes are practical: simulated events
and wall-clock time as the federation grows in nodes and clusters
(protocol control traffic grows with both: the 2PC is linear in cluster
size, the CIC layer in cluster count).

Wall-clock columns are measured in whichever process runs the point, so
this experiment is deliberately excluded from result caching semantics
beyond code-version addressing: a cached row reports the timing of the
run that produced it.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.cluster.federation import Federation
from repro.config.application import ApplicationConfig, ClusterAppSpec
from repro.config.timers import MINUTE, TimersConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import Experiment, register
from repro.network.topology import ClusterSpec, Topology

__all__ = ["federation_scaling"]

DEFAULT_SHAPES = [(2, 10), (2, 50), (2, 100), (4, 50), (8, 25), (16, 12)]


def _uniform_workload(n_clusters: int, total_time: float) -> ApplicationConfig:
    p_inter = 0.05
    specs = []
    for c in range(n_clusters):
        probs = [p_inter / max(1, n_clusters - 1)] * n_clusters
        probs[c] = 1.0 - p_inter
        specs.append(ClusterAppSpec(mean_compute=60.0, send_probabilities=probs))
    return ApplicationConfig(clusters=specs, total_time=total_time)


def _grid(
    shapes: Optional[Sequence[tuple]] = None,
    total_time: float = 1800.0,
    seed: int = 42,
) -> list:
    return [
        {
            "n_clusters": n_clusters,
            "nodes": nodes,
            "total_time": total_time,
            "seed": seed,
        }
        for n_clusters, nodes in (shapes or DEFAULT_SHAPES)
    ]


def _point(params: dict) -> dict:
    n_clusters = params["n_clusters"]
    nodes = params["nodes"]
    topology = Topology(
        clusters=[ClusterSpec(f"c{i}", nodes) for i in range(n_clusters)]
    )
    application = _uniform_workload(n_clusters, params["total_time"])
    timers = TimersConfig(clc_periods=[5 * MINUTE] * n_clusters)
    fed = Federation(topology, application, timers, seed=params["seed"])
    t0 = time.perf_counter()
    results = fed.run()
    wall = time.perf_counter() - t0
    return {
        "total_nodes": topology.total_nodes,
        "events": results.events,
        "app_msgs": sum(results.messages.values()),
        "protocol_msgs": results.protocol_messages,
        "wall": wall,
    }


def _reduce(grid: list, points: list) -> ExperimentResult:
    rows = []
    for params, point in zip(grid, points):
        wall = point["wall"]
        rows.append(
            (
                f"{params['n_clusters']}x{params['nodes']}",
                point["total_nodes"],
                point["events"],
                point["app_msgs"],
                point["protocol_msgs"],
                round(wall, 3),
                int(point["events"] / wall) if wall > 0 else 0,
            )
        )
    total_time = grid[0]["total_time"]
    return ExperimentResult(
        name="Scalability -- simulator cost vs federation shape",
        description=(
            f"{total_time:g}s of simulated time; 5-minute CLC timers; "
            "5% inter-cluster traffic spread uniformly."
        ),
        headers=[
            "shape",
            "nodes",
            "events",
            "app msgs",
            "protocol msgs",
            "wall s",
            "events/s",
        ],
        rows=rows,
    )


EXPERIMENT = register(
    Experiment(
        name="scaling",
        title="Scalability -- simulator cost vs federation shape",
        artifact="substrate",
        grid=_grid,
        point=_point,
        reduce=_reduce,
        scaled=False,
    )
)


def federation_scaling(
    shapes: Optional[Sequence[tuple]] = None,
    total_time: float = 1800.0,
    seed: int = 42,
) -> ExperimentResult:
    """Sweep (n_clusters, nodes_per_cluster) shapes."""
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        EXPERIMENT,
        shapes=[list(s) for s in shapes] if shapes is not None else None,
        total_time=total_time,
        seed=seed,
    )
