"""Multi-seed robustness of the paper's headline results.

The paper reports single runs of a stochastic simulator.  This experiment
repeats the key measurements across seeds and reports mean +/- standard
deviation, verifying that the qualitative claims are properties of the
protocol and not of one lucky random stream:

* Table 1's message-count structure (intra >> inter, 0->1 >> 1->0),
* Figure 6's constant forced-CLC count in cluster 0,
* Figure 7's zero unforced CLCs in cluster 1.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.app.workloads import TOTAL_TIME, table1_workload
from repro.config.timers import MINUTE
from repro.experiments.common import ExperimentResult, run_federation
from repro.experiments.registry import Experiment, derive_seed, register

__all__ = ["multi_seed_robustness"]

_METRICS = (
    "msgs 0->0",
    "msgs 1->1",
    "msgs 0->1",
    "msgs 1->0",
    "c0 unforced",
    "c0 forced",
    "c1 unforced",
    "c1 forced",
)


def _grid(
    seeds: Optional[Sequence[int]] = None,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    clc_period_0: float = 30 * MINUTE,
    seed: Optional[int] = None,
    repetitions: int = 10,
) -> list:
    """Ten historical seeds by default; a root ``seed`` derives fresh ones."""
    if not seeds:
        if seed is None:
            seeds = range(1, repetitions + 1)
        else:
            seeds = [derive_seed(seed, "robustness", i) for i in range(repetitions)]
    return [
        {
            "seed": s,
            "nodes": nodes,
            "total_time": total_time,
            "clc_period_0": clc_period_0,
        }
        for s in seeds
    ]


def _point(params: dict) -> dict:
    topology, application, timers = table1_workload(
        nodes=params["nodes"],
        total_time=params["total_time"],
        clc_period_0=params["clc_period_0"],
        clc_period_1=None,
    )
    _fed, results = run_federation(
        topology, application, timers, seed=params["seed"]
    )
    c0 = results.clc_counts(0)
    c1 = results.clc_counts(1)
    return {
        "msgs 0->0": results.app_messages(0, 0),
        "msgs 1->1": results.app_messages(1, 1),
        "msgs 0->1": results.app_messages(0, 1),
        "msgs 1->0": results.app_messages(1, 0),
        "c0 unforced": c0["unforced"],
        "c0 forced": c0["forced"],
        "c1 unforced": c1["unforced"],
        "c1 forced": c1["forced"],
    }


def _reduce(grid: list, points: list) -> ExperimentResult:
    seeds = [params["seed"] for params in grid]
    rows = []
    for name in _METRICS:
        arr = np.asarray([point[name] for point in points], dtype=float)
        rows.append(
            (
                name,
                round(float(arr.mean()), 1),
                round(float(arr.std(ddof=1)), 2) if len(arr) > 1 else 0.0,
                int(arr.min()),
                int(arr.max()),
            )
        )
    clc_period_0 = grid[0]["clc_period_0"]
    exp = ExperimentResult(
        name="Robustness -- headline results across seeds",
        description=(
            f"{len(seeds)} independent seeds of the Table 1 / Fig. 6-7 "
            "configuration (cluster-0 timer "
            f"{clc_period_0 / MINUTE:g} min, cluster-1 timer infinite)."
        ),
        headers=["metric", "mean", "std", "min", "max"],
        rows=rows,
        paper={
            "table1": "2920 / 2497 / 145 / 11",
            "fig6_forced": "~8, constant",
            "fig7_unforced": 0,
        },
    )
    exp.notes.append(f"seeds: {seeds}")
    return exp


EXPERIMENT = register(
    Experiment(
        name="robustness",
        title="Robustness -- headline results across independent seeds",
        artifact="Table 1 / Figures 6-7",
        grid=_grid,
        point=_point,
        reduce=_reduce,
    )
)


def multi_seed_robustness(
    seeds: Optional[Sequence[int]] = None,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    clc_period_0: float = 30 * MINUTE,
) -> ExperimentResult:
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        EXPERIMENT,
        seeds=list(seeds) if seeds is not None else None,
        nodes=nodes,
        total_time=total_time,
        clc_period_0=clc_period_0,
    )
