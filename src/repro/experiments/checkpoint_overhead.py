"""Cost of simulator checkpointing vs the snapshot interval.

The sweep engine can checkpoint a running simulation so a preempted
worker resumes instead of recomputing (:mod:`repro.experiments.checkpoint`).
That resilience is not free: each snapshot pickles the entire federation
-- event queue, protocol state, logs, RNG streams -- and the natural
question is how the cost scales with the snapshot interval.

This experiment runs the Table 1 workload sliced at a range of intervals
and reports, per interval, how many snapshots were taken, their sizes,
and how many kernel events each one covers.  Serialization wall time is
proportional to blob size (pickling is linear), so
bytes-per-simulated-hour is the portable cost metric -- wall-clock
numbers would vary by host and poison the byte-identical result
contract the sweep cache and cross-backend suites rely on.  One caveat:
snapshot counts and event columns are exact everywhere, but the byte
sizes themselves can drift by a few bytes between *interpreter
instances* (hash randomization reorders set iteration, which perturbs
the pickle memo layout), so the cross-backend suite compares only the
interval/events/snapshots columns for this experiment.

The control row (``interval_frac=None``) runs unsliced and proves the
slicing itself is free: its dispatch stream is identical to every sliced
row's (same seed, same events -- the golden digest covers all rows).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.app.workloads import TOTAL_TIME, table1_workload
from repro.cluster.federation import Federation
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import Experiment, register
from repro.sim import snapshot

__all__ = ["checkpoint_overhead"]

#: snapshot interval as a fraction of the run's horizon (None = no snapshots)
DEFAULT_INTERVAL_FRACS = [None, 0.5, 0.25, 0.1, 0.05]


def _grid(
    interval_fracs: Optional[Sequence[Optional[float]]] = None,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
) -> list:
    return [
        {
            "interval_frac": frac,
            "nodes": nodes,
            "total_time": total_time,
            "seed": seed,
        }
        for frac in (interval_fracs or DEFAULT_INTERVAL_FRACS)
    ]


def _point(params: dict) -> dict:
    topology, application, timers = table1_workload(
        nodes=params["nodes"],
        total_time=params["total_time"],
        messages_1_to_0=103,
    )
    fed = Federation(
        topology, application, timers, protocol="hc3i", seed=params["seed"]
    )
    fed.start()
    horizon = application.total_time
    frac = params["interval_frac"]
    sim = fed.sim
    sizes: list = []
    events_between: list = []
    if frac is None:
        sim.run(until=horizon)
    else:
        every = frac * horizon
        while not sim._stopped and sim.now < horizon:
            target = min(sim.now + every, horizon)
            before = sim._processed
            sim.run(until=target)
            if sim._stopped or target >= horizon:
                break
            sizes.append(len(snapshot.dumps(fed)))
            events_between.append(sim._processed - before)
    return {
        "events": sim._processed,
        "snapshots": len(sizes),
        "total_bytes": sum(sizes),
        "max_bytes": max(sizes, default=0),
        "mean_events_between": (
            round(sum(events_between) / len(events_between), 2)
            if events_between
            else None
        ),
    }


def _reduce(grid: list, points: list) -> ExperimentResult:
    rows = []
    for params, point in zip(grid, points):
        frac = params["interval_frac"]
        sim_hours = params["total_time"] / 3600.0
        rows.append(
            (
                "off" if frac is None else f"{frac:g}",
                point["events"],
                point["snapshots"],
                point["total_bytes"],
                point["max_bytes"],
                point["mean_events_between"] if point["snapshots"] else "-",
                round(point["total_bytes"] / sim_hours, 1),
            )
        )
    return ExperimentResult(
        name="Checkpoint overhead -- snapshot cost vs interval",
        description=(
            "Table 1 workload sliced at a range of snapshot intervals "
            "(fractions of the horizon).  Every row dispatches the same "
            "events -- slicing the run is free -- so the cost of resilience "
            "is purely the serialized bytes, linear in snapshot count."
        ),
        headers=[
            "interval",
            "events",
            "snapshots",
            "total B",
            "max B",
            "events/snap",
            "B per sim-hour",
        ],
        rows=rows,
        paper={
            "claim": "checkpointing cost is tunable via the interval; the "
            "simulation itself is unperturbed (identical dispatch stream)"
        },
    )


EXPERIMENT = register(
    Experiment(
        name="checkpoint_overhead",
        title="Snapshot cost vs checkpoint interval",
        artifact="engineering",
        grid=_grid,
        point=_point,
        reduce=_reduce,
    )
)


def checkpoint_overhead(
    interval_fracs: Optional[Sequence[Optional[float]]] = None,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
) -> ExperimentResult:
    """Snapshot count/size decomposition across checkpoint intervals."""
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        EXPERIMENT,
        interval_fracs=list(interval_fracs) if interval_fracs is not None else None,
        nodes=nodes,
        total_time=total_time,
        seed=seed,
    )
