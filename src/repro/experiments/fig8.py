"""Figure 8: storing more CLCs in cluster 1 does not disturb cluster 0.

Setup (§5.2): cluster 0's CLC timer fixed at 30 minutes, cluster 1's timer
swept from 15 to 60 minutes.  Paper claim: "cluster 0 ... do[es] not store
more CLCs even if cluster 1 timer is set to 15 minutes.  This is thanks to
the low number of messages from cluster 1 to cluster 0" -- the cluster 0
totals stay flat while cluster 1's totals fall with its timer.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.app.workloads import TOTAL_TIME, table1_workload
from repro.config.timers import MINUTE
from repro.experiments.common import ExperimentResult, run_federation
from repro.experiments.registry import Experiment, register

__all__ = ["cluster1_timer_sweep", "DEFAULT_C1_DELAYS_MIN"]

DEFAULT_C1_DELAYS_MIN = [15, 20, 25, 30, 40, 50, 60]


def _grid(
    delays_min: Optional[Sequence[float]] = None,
    cluster0_delay_min: float = 30.0,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
    protocol: str = "hc3i",
) -> list:
    return [
        {
            "delay_min": delay,
            "cluster0_delay_min": cluster0_delay_min,
            "nodes": nodes,
            "total_time": total_time,
            "seed": seed,
            "protocol": protocol,
        }
        for delay in (delays_min or DEFAULT_C1_DELAYS_MIN)
    ]


def _point(params: dict) -> dict:
    topology, application, timers = table1_workload(
        nodes=params["nodes"],
        total_time=params["total_time"],
        clc_period_0=params["cluster0_delay_min"] * MINUTE,
        clc_period_1=params["delay_min"] * MINUTE,
    )
    _fed, results = run_federation(
        topology,
        application,
        timers,
        protocol=params["protocol"],
        seed=params["seed"],
    )
    return {"c0": results.clc_counts(0), "c1": results.clc_counts(1)}


def _reduce(grid: list, points: list) -> ExperimentResult:
    series: dict = {"c0 total": [], "c1 total": [], "c1 forced": []}
    for point in points:
        series["c0 total"].append(point["c0"]["total"])
        series["c1 total"].append(point["c1"]["total"])
        series["c1 forced"].append(point["c1"]["forced"])
    return ExperimentResult(
        name="Figure 8 -- Impact of the number of CLCs in cluster 1",
        description=(
            "CLC counts vs cluster 1's timer (cluster 0 fixed at "
            f"{grid[0]['cluster0_delay_min']:g} min)."
        ),
        x_label="c1 delay (min)",
        xs=[params["delay_min"] for params in grid],
        series=series,
        paper={
            "c0_total": "flat (~insensitive to cluster 1's timer)",
            "c1_total": "decreasing with the timer",
        },
    )


EXPERIMENT = register(
    Experiment(
        name="fig8",
        title="Figure 8 -- cluster 1 timer sweep (§5.2)",
        artifact="Figure 8",
        grid=_grid,
        point=_point,
        reduce=_reduce,
    )
)


def cluster1_timer_sweep(
    delays_min: Optional[Sequence[float]] = None,
    cluster0_delay_min: float = 30.0,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
    protocol: str = "hc3i",
) -> ExperimentResult:
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        EXPERIMENT,
        delays_min=list(delays_min) if delays_min is not None else None,
        cluster0_delay_min=cluster0_delay_min,
        nodes=nodes,
        total_time=total_time,
        seed=seed,
        protocol=protocol,
    )
