"""Figure 8: storing more CLCs in cluster 1 does not disturb cluster 0.

Setup (§5.2): cluster 0's CLC timer fixed at 30 minutes, cluster 1's timer
swept from 15 to 60 minutes.  Paper claim: "cluster 0 ... do[es] not store
more CLCs even if cluster 1 timer is set to 15 minutes.  This is thanks to
the low number of messages from cluster 1 to cluster 0" -- the cluster 0
totals stay flat while cluster 1's totals fall with its timer.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.app.workloads import TOTAL_TIME, table1_workload
from repro.config.timers import MINUTE
from repro.experiments.common import ExperimentResult, run_federation

__all__ = ["cluster1_timer_sweep", "DEFAULT_C1_DELAYS_MIN"]

DEFAULT_C1_DELAYS_MIN = [15, 20, 25, 30, 40, 50, 60]


def cluster1_timer_sweep(
    delays_min: Optional[Sequence[float]] = None,
    cluster0_delay_min: float = 30.0,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
    protocol: str = "hc3i",
) -> ExperimentResult:
    delays = list(delays_min or DEFAULT_C1_DELAYS_MIN)
    series: dict = {"c0 total": [], "c1 total": [], "c1 forced": []}
    runs = []
    for delay in delays:
        topology, application, timers = table1_workload(
            nodes=nodes,
            total_time=total_time,
            clc_period_0=cluster0_delay_min * MINUTE,
            clc_period_1=delay * MINUTE,
        )
        _fed, results = run_federation(
            topology, application, timers, protocol=protocol, seed=seed
        )
        series["c0 total"].append(results.clc_counts(0)["total"])
        series["c1 total"].append(results.clc_counts(1)["total"])
        series["c1 forced"].append(results.clc_counts(1)["forced"])
        runs.append(results)
    return ExperimentResult(
        name="Figure 8 -- Impact of the number of CLCs in cluster 1",
        description=(
            "CLC counts vs cluster 1's timer (cluster 0 fixed at "
            f"{cluster0_delay_min:g} min)."
        ),
        x_label="c1 delay (min)",
        xs=delays,
        series=series,
        paper={
            "c0_total": "flat (~insensitive to cluster 1's timer)",
            "c1_total": "decreasing with the timer",
        },
        runs=runs,
    )
