"""Parallel sweep runner over the experiment registry.

Grid points are independent simulations, so a sweep is embarrassingly
parallel: cache misses fan out over a pluggable execution backend
(:mod:`repro.experiments.backends` -- local process pool, SSH hosts, or
an in-process test double) while hits return instantly from the
content-addressed cache.  Determinism is structural: every point's
params dict carries its own explicit seed, so ``--jobs 1``, ``--jobs N``
and ``--backend ssh`` produce byte-identical results, and the legacy
serial entry points share this exact pipeline.

The runner owns fault tolerance.  Results are written to the local
cache *as they arrive* (not after the sweep), so a partially failed
sweep re-executes only its missing points.  A worker/host dying
mid-point raises :class:`WorkerLostError` from the backend; the runner
puts the point back in the queue (bounded by ``max_retries`` per point)
and the backend stops assigning work to the casualty, so a sweep
survives losing hosts mid-flight -- the federation-of-scavenged-
resources model of the paper's setting.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.experiments import checkpoint, registry
from repro.experiments.backends import (
    Backend,
    PointTask,
    WorkerLostError,
    create_backend,
)
from repro.experiments.cache import ResultCache
from repro.experiments.registry import Experiment

__all__ = ["SweepError", "SweepReport", "run_experiment", "run_grid_inline"]

#: per-point reassignment budget after worker losses
DEFAULT_MAX_RETRIES = 3


class SweepError(RuntimeError):
    """A sweep could not be completed (retry budget or backend exhausted)."""


@dataclass
class SweepReport:
    """Outcome of one sweep: the paper artifact plus execution accounting."""

    name: str
    result: object  # ExperimentResult
    grid: list = field(default_factory=list)
    points: int = 0
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    elapsed: float = 0.0
    backend: str = "local"
    #: executed-point count per host, e.g. ``{"nodeA": 4, "nodeB": 3}``
    host_counts: dict = field(default_factory=dict)
    #: points resubmitted after a worker loss
    retries: int = 0

    def summary(self) -> str:
        executed = f"{self.executed} executed"
        if self.retries:
            executed += f" ({self.retries} retried)"
        text = (
            f"{self.name}: {self.points} points "
            f"({self.cache_hits} cached, {executed}, "
            f"jobs={self.jobs}, backend={self.backend}) in {self.elapsed:.2f}s"
        )
        if self.host_counts:
            per_host = " ".join(
                f"{host}={count}" for host, count in sorted(self.host_counts.items())
            )
            text += f" [hosts: {per_host}]"
        return text


def run_experiment(
    experiment: Union[str, Experiment],
    overrides: Optional[dict] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    backend: Union[str, Backend, None] = None,
    hosts: Optional[Union[str, list]] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> SweepReport:
    """Run one experiment's full grid; returns the reduced result + stats.

    ``overrides`` are grid kwargs (``nodes``, ``total_time``, ``seed``,
    ...); unknown keys are dropped per-grid so one scale profile can be
    applied across heterogeneous experiments.  ``cache=None`` disables
    caching; pass a :class:`ResultCache` to reuse/populate entries.

    ``backend`` selects where cache-missing points execute: a name
    (``"local"``, ``"ssh"``, ``"inprocess"``) resolved via
    :func:`repro.experiments.backends.create_backend` (``hosts`` feeds
    the SSH roster), or a ready :class:`Backend` instance, which the
    caller keeps ownership of (it is not shut down here).
    """
    exp = registry.get(experiment) if isinstance(experiment, str) else experiment
    start = time.perf_counter()
    grid = exp.build_grid(overrides)
    if not grid:
        raise ValueError(
            f"experiment {exp.name!r} produced an empty grid "
            f"(overrides: {overrides!r})"
        )
    results: list = [None] * len(grid)

    pending = []
    hits = 0
    for i, params in enumerate(grid):
        cached = cache.get(exp.name, params) if cache is not None else None
        if cached is not None:
            results[i] = cached
            hits += 1
        else:
            pending.append(i)

    host_counts: dict = {}
    retries = 0
    if pending:
        borrowed = isinstance(backend, Backend)
        resolved = create_backend(backend, jobs=jobs, hosts=hosts)
        try:
            retries = _execute_pending(
                resolved, exp, grid, pending, results, cache, host_counts, max_retries
            )
        finally:
            if not borrowed:
                resolved.shutdown()
        backend_name = resolved.name
    else:
        backend_name = backend.name if isinstance(backend, Backend) else (backend or "local")

    reduced = exp.reduce(grid, results)
    return SweepReport(
        name=exp.name,
        result=reduced,
        grid=grid,
        points=len(grid),
        cache_hits=hits,
        executed=len(pending),
        jobs=jobs,
        elapsed=time.perf_counter() - start,
        backend=backend_name,
        host_counts=host_counts,
        retries=retries,
    )


def _execute_pending(
    backend: Backend,
    exp: Experiment,
    grid: list,
    pending: list,
    results: list,
    cache: Optional[ResultCache],
    host_counts: dict,
    max_retries: int,
) -> int:
    """Fan ``pending`` grid indices out over ``backend`` with retry.

    Completed values land in ``results`` and the cache *immediately*, so
    an aborted sweep resumes from exactly where it failed.  Returns the
    number of worker-loss resubmissions.
    """
    def submit(i: int):
        return backend.submit(PointTask(experiment=exp.name, params=grid[i], fn=exp.point))

    backend.prepare(len(pending))
    in_flight: dict = {}
    attempts = dict.fromkeys(pending, 1)
    retries = 0
    failure: Optional[BaseException] = None

    def complete(future, i: int) -> None:
        """Record one finished future: store+cache a value, or requeue a loss."""
        nonlocal retries, failure
        try:
            outcome = future.result()
        except WorkerLostError as loss:
            if failure is not None:
                return  # already aborting; don't resubmit
            if attempts[i] > max_retries:
                error = SweepError(
                    f"grid point {i} of {exp.name!r} failed "
                    f"{attempts[i]} times (last host: {loss.host}); "
                    f"giving up after max_retries={max_retries}"
                )
                error.__cause__ = loss
                failure = error
                return
            attempts[i] += 1
            retries += 1
            in_flight[submit(i)] = i
            return
        except BaseException as exc:  # noqa: BLE001 - non-retryable, re-raised below
            if failure is None:
                failure = exc
            return
        results[i] = outcome.value
        host_counts[outcome.host] = host_counts.get(outcome.host, 0) + 1
        if cache is not None:
            cache.put(exp.name, grid[i], outcome.value)
            cache.record(exp.name, grid[i], host=outcome.host, elapsed=outcome.elapsed)
        # the point is durably recorded: its resume snapshots are garbage
        # (best-effort; the worker that died after writing its result may
        # not have gotten to its own GC)
        checkpoint.gc_for(exp.name, grid[i])

    try:
        for i in pending:
            if failure is not None:
                break  # fail fast: don't schedule points past a fatal error
            future = submit(i)
            if future.done():
                # synchronous backends (inline local, in-process) resolve at
                # submit time; handling them here preserves serial fail-fast
                complete(future, i)
            else:
                in_flight[future] = i
        if failure is None:
            backend.flush()  # batching backends: the submission burst is over
        while in_flight and failure is None:
            done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
            for future in done:
                complete(future, in_flight.pop(future))
            if failure is None:
                # dispatch any resubmissions as one batch -- but never for a
                # sweep that is already aborting: a fatal error recorded for
                # another future in the same `done` batch must not let a
                # batching backend (SLURM/k8s) submit a fresh job of
                # resubmissions that will only be cancelled below
                backend.flush()
        if failure is not None:
            # stop scheduling, but harvest every point that did finish --
            # with streaming cache writes, a re-run resumes from here
            for future in list(in_flight):
                future.cancel()
            for future, i in list(in_flight.items()):
                if future.done() and not future.cancelled():
                    complete(future, i)
            raise failure
    except BaseException:
        for future in in_flight:
            future.cancel()
        raise
    return retries


def run_grid_inline(experiment: Experiment, jobs: int = 1, **grid_kwargs):
    """Serial-compatible entry used by the legacy experiment functions.

    Runs the registered grid/point/reduce pipeline in-process (or across
    ``jobs`` workers) with no cache, returning the bare
    ``ExperimentResult`` exactly as the historical functions did.
    """
    return run_experiment(experiment, overrides=grid_kwargs, jobs=jobs).result
