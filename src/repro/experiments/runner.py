"""Parallel sweep runner over the experiment registry.

Grid points are independent simulations, so a sweep is embarrassingly
parallel: cache misses fan out over a :class:`ProcessPoolExecutor`
(simulations are CPU-bound; threads would serialize on the GIL) while
hits return instantly from the content-addressed cache.  Determinism is
structural: every point's params dict carries its own explicit seed, so
``--jobs 1`` and ``--jobs N`` produce byte-identical results, and the
legacy serial entry points share this exact pipeline.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.experiments import registry
from repro.experiments.cache import ResultCache
from repro.experiments.registry import Experiment

__all__ = ["SweepReport", "run_experiment", "run_grid_inline"]


@dataclass
class SweepReport:
    """Outcome of one sweep: the paper artifact plus execution accounting."""

    name: str
    result: object  # ExperimentResult
    grid: list = field(default_factory=list)
    points: int = 0
    cache_hits: int = 0
    executed: int = 0
    jobs: int = 1
    elapsed: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.name}: {self.points} points "
            f"({self.cache_hits} cached, {self.executed} executed, "
            f"jobs={self.jobs}) in {self.elapsed:.2f}s"
        )


def run_experiment(
    experiment: Union[str, Experiment],
    overrides: Optional[dict] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> SweepReport:
    """Run one experiment's full grid; returns the reduced result + stats.

    ``overrides`` are grid kwargs (``nodes``, ``total_time``, ``seed``,
    ...); unknown keys are dropped per-grid so one scale profile can be
    applied across heterogeneous experiments.  ``cache=None`` disables
    caching; pass a :class:`ResultCache` to reuse/populate entries.
    """
    exp = registry.get(experiment) if isinstance(experiment, str) else experiment
    start = time.perf_counter()
    grid = exp.build_grid(overrides)
    if not grid:
        raise ValueError(
            f"experiment {exp.name!r} produced an empty grid "
            f"(overrides: {overrides!r})"
        )
    results: list = [None] * len(grid)

    pending = []
    hits = 0
    for i, params in enumerate(grid):
        cached = cache.get(exp.name, params) if cache is not None else None
        if cached is not None:
            results[i] = cached
            hits += 1
        else:
            pending.append(i)

    if pending:
        if jobs <= 1 or len(pending) == 1:
            for i in pending:
                results[i] = exp.point(grid[i])
        else:
            # exp.point is a module-level function, so it pickles by
            # reference; unpickling it in a worker imports its module,
            # which re-populates the registry there as a side effect.
            workers = min(jobs, len(pending), os.cpu_count() or 1)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                mapped = pool.map(exp.point, [grid[i] for i in pending])
                for i, value in zip(pending, mapped):
                    results[i] = value
        if cache is not None:
            for i in pending:
                cache.put(exp.name, grid[i], results[i])

    reduced = exp.reduce(grid, results)
    return SweepReport(
        name=exp.name,
        result=reduced,
        grid=grid,
        points=len(grid),
        cache_hits=hits,
        executed=len(pending),
        jobs=jobs,
        elapsed=time.perf_counter() - start,
    )


def run_grid_inline(experiment: Experiment, jobs: int = 1, **grid_kwargs):
    """Serial-compatible entry used by the legacy experiment functions.

    Runs the registered grid/point/reduce pipeline in-process (or across
    ``jobs`` workers) with no cache, returning the bare
    ``ExperimentResult`` exactly as the historical functions did.
    """
    return run_experiment(experiment, overrides=grid_kwargs, jobs=jobs).result
