"""Host roster parsing for distributed backends.

Two spec formats feed ``--hosts``:

* an inline comma list -- ``nodeA,nodeB:4`` -- where an optional
  ``:slots`` suffix caps concurrent points per host (default 1), and
* a TOML file (``hosts.toml``) for anything richer::

      [defaults]
      python = "python3"          # interpreter on the remote host
      slots = 2

      [[hosts]]
      name = "nodeA"              # anything `ssh` resolves (~/.ssh/config aliases too)
      slots = 4

      [[hosts]]
      name = "nodeB"
      cwd = "/srv/hc3i-repro"     # cd here before launching the worker
      pythonpath = "src"          # prepended to PYTHONPATH (uninstalled checkouts)

Every host must be able to ``import repro`` at the same source version
as the submitting machine -- the SSH backend verifies this with a
code-hash handshake before trusting any result.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

__all__ = ["HostSpec", "parse_hosts"]

_DEFAULTS = {"slots": 1, "python": "python3", "cwd": None, "pythonpath": None}


@dataclass(frozen=True)
class HostSpec:
    """One remote execution target."""

    name: str
    slots: int = 1
    python: str = "python3"
    #: directory to ``cd`` into before launching the worker (repo checkout)
    cwd: Optional[str] = None
    #: prepended to PYTHONPATH on the remote (e.g. ``src`` for src layouts)
    pythonpath: Optional[str] = None


def parse_hosts(spec: str) -> list:
    """Parse a ``--hosts`` value into a list of :class:`HostSpec`.

    A value naming an existing file (or ending in ``.toml``) is read as a
    TOML roster; anything else is an inline comma list.
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("empty --hosts spec")
    if spec.endswith(".toml") or Path(spec).is_file():
        return _parse_toml(Path(spec))
    return _parse_inline(spec)


def _parse_inline(spec: str) -> list:
    hosts = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, slots = chunk.rpartition(":")
        if sep and slots.isdigit():
            hosts.append(HostSpec(name=name, slots=max(1, int(slots))))
        else:
            hosts.append(HostSpec(name=chunk))
    if not hosts:
        raise ValueError(f"no hosts in spec {spec!r}")
    _reject_duplicates(hosts)
    return hosts


def _parse_toml(path: Path) -> list:
    try:
        with open(path, "rb") as fh:
            data = tomllib.load(fh)
    except FileNotFoundError:
        raise ValueError(f"hosts file not found: {path}") from None
    except tomllib.TOMLDecodeError as exc:
        raise ValueError(f"invalid hosts file {path}: {exc}") from None
    defaults = {**_DEFAULTS, **data.get("defaults", {})}
    entries = data.get("hosts", [])
    if not entries:
        raise ValueError(f"hosts file {path} defines no [[hosts]] entries")
    hosts = []
    for entry in entries:
        if "name" not in entry:
            raise ValueError(f"hosts file {path}: [[hosts]] entry without a name")
        merged = {**defaults, **entry}
        unknown = set(merged) - {"name", *_DEFAULTS}
        if unknown:
            raise ValueError(
                f"hosts file {path}: unknown keys {sorted(unknown)} "
                f"for host {entry['name']!r}"
            )
        hosts.append(
            HostSpec(
                name=str(merged["name"]),
                slots=max(1, int(merged["slots"])),
                python=str(merged["python"]),
                cwd=None if merged["cwd"] is None else str(merged["cwd"]),
                pythonpath=(
                    None if merged["pythonpath"] is None else str(merged["pythonpath"])
                ),
            )
        )
    _reject_duplicates(hosts)
    return hosts


def _reject_duplicates(hosts: list) -> None:
    seen = set()
    for host in hosts:
        if host.name in seen:
            raise ValueError(f"duplicate host {host.name!r} in --hosts spec")
        seen.add(host.name)
