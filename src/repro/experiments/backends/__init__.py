"""Pluggable execution backends for the sweep engine.

A grid point is location-independent -- its params dict (seed included)
fully determines the simulation -- so *where* points execute is a
pluggable policy behind the :class:`Backend` protocol:

* ``local`` (:class:`LocalProcessBackend`) -- the default; inline for
  ``jobs <= 1``, a :class:`~concurrent.futures.ProcessPoolExecutor`
  otherwise.  Byte-identical to the pre-backend runner.
* ``ssh`` (:class:`SSHBackend`) -- fans cache-missing points out to a
  roster of hosts (``--hosts nodeA,nodeB:4`` or a ``hosts.toml``) via
  ``ssh host python -m repro.experiments.remote_worker``.
* ``slurm`` (:class:`SlurmBackend`) -- batches points into SLURM array
  jobs submitted through ``sbatch`` and polled via ``squeue``/``sacct``
  (pluggable :class:`SchedulerTransport`; results spool through a shared
  directory).
* ``k8s`` (:class:`KubernetesBackend`) -- batches points into
  indexed-completion Kubernetes Jobs driven through ``kubectl``
  (pluggable :class:`K8sTransport`; same spool-directory envelopes).
* ``inprocess`` (:class:`InProcessBackend`) -- synchronous test double
  with fake hosts and fault injection.

``slurm`` and ``k8s`` share the scheduler-agnostic
:class:`~repro.experiments.backends.batch.BatchBackend` substrate
(linger batching, poll-loop grace counters, requeue taxonomy, spool
hygiene); each contributes only its scheduler's dialect.

``create_backend`` is the CLI/runner factory.  The runner owns retry:
a :class:`WorkerLostError` puts the point back in the queue and the
backend stops assigning to the dead host, so a sweep survives losing
workers mid-flight.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.experiments.backends.base import (
    Backend,
    BackendUnavailableError,
    PointOutcome,
    PointTask,
    RemoteCodeMismatchError,
    RemotePointError,
    WorkerLostError,
)
from repro.experiments.backends.batch import BatchBackend, BatchTransport
from repro.experiments.backends.hosts import HostSpec, parse_hosts
from repro.experiments.backends.k8s import K8sCliTransport, K8sTransport, KubernetesBackend
from repro.experiments.backends.local import InProcessBackend, LocalProcessBackend
from repro.experiments.backends.slurm import SchedulerTransport, SlurmBackend, SlurmCliTransport
from repro.experiments.backends.ssh import SSHBackend

__all__ = [
    "Backend",
    "BackendUnavailableError",
    "BACKEND_NAMES",
    "BatchBackend",
    "BatchTransport",
    "HostSpec",
    "InProcessBackend",
    "K8sCliTransport",
    "K8sTransport",
    "KubernetesBackend",
    "LocalProcessBackend",
    "PointOutcome",
    "PointTask",
    "RemoteCodeMismatchError",
    "RemotePointError",
    "SchedulerTransport",
    "SlurmBackend",
    "SlurmCliTransport",
    "SSHBackend",
    "WorkerLostError",
    "create_backend",
    "parse_hosts",
]

#: names accepted by ``--backend`` / :func:`create_backend`
BACKEND_NAMES = ("local", "ssh", "slurm", "k8s", "inprocess")


def create_backend(
    spec: Union[str, Backend, None],
    jobs: int = 1,
    hosts: Optional[Union[str, list]] = None,
    **kwargs,
) -> Backend:
    """Resolve a backend name (or pass an instance through) to a Backend.

    ``hosts`` is required for ``ssh``: either a ``--hosts`` spec string
    (comma list / TOML path, see :func:`parse_hosts`) or a prepared list
    of :class:`HostSpec`.  Extra ``kwargs`` go to the backend
    constructor (e.g. ``ssh_command`` or ``point_timeout`` for SSH).
    """
    if isinstance(spec, Backend):
        return spec
    name = spec or "local"
    if name == "local":
        return LocalProcessBackend(jobs=jobs, **kwargs)
    if name == "inprocess":
        return InProcessBackend(**kwargs)
    if name == "ssh":
        if not hosts:
            raise ValueError("--backend ssh requires --hosts (comma list or hosts.toml)")
        roster = parse_hosts(hosts) if isinstance(hosts, str) else list(hosts)
        return SSHBackend(roster, **kwargs)
    if name == "slurm":
        return SlurmBackend(**kwargs)
    if name == "k8s":
        return KubernetesBackend(**kwargs)
    raise ValueError(
        f"unknown backend {name!r}; choose from {', '.join(BACKEND_NAMES)}"
    )
