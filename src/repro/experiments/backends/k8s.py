"""Kubernetes batch backend: submit grid points as indexed-completion Jobs.

The second big scheduler family real federations run today.  Where the
SLURM backend speaks ``sbatch --array``, this backend batches the
sweep's cache-missing grid points into one Kubernetes **Job** with
``completionMode: Indexed``: pod *i* (``$JOB_COMPLETION_INDEX``) runs
``python -m repro.experiments.remote_worker`` with stdin/stdout
redirected to ``tasks/<i>.json`` / ``results/<i>.json`` in the job's
spool directory -- the exact wire format and write-then-rename result
envelopes every distributed backend shares.  The spool must be visible
to both the submitting machine and the pods; the default manifest
mounts it (plus ``cwd``, when set) as ``hostPath`` volumes at identical
paths, which fits single-node/dev clusters and CI -- production
clusters typically swap in a shared PVC (see ``docs/sweeps.md``).

All the scheduler-agnostic machinery (linger batching, the poll loop
with unknown/completed grace, requeue taxonomy, spool hygiene) comes
from :class:`~repro.experiments.backends.batch.BatchBackend`; this
module contributes the Kubernetes dialect: the Job manifest, the
``kubectl`` conversation, and the pod-phase vocabulary.

Scheduler interaction goes through a pluggable :class:`K8sTransport`.
The default :class:`K8sCliTransport` shells out to ``kubectl
create/get/delete``; ``$REPRO_KUBECTL_COMMAND`` prefixes every
invocation (mirroring ``$REPRO_SLURM_COMMAND``), which is how tests and
CI substitute ``tools/stub_k8s.py`` -- a synchronous mini-scheduler --
for a real cluster.

Failure semantics follow the backend contract: a pod that fails, is
evicted, hits the Job deadline, or vanishes raises
:class:`WorkerLostError`, so the runner requeues the point --
resubmissions are batched into a fresh Job.  The manifest pins
``backoffLimit: 0`` / ``restartPolicy: Never`` because retry is *the
runner's* job: letting kubelet restart a pod would re-run a point the
runner may already have requeued elsewhere.  A point *raising* inside
the worker comes back in the envelope as a deterministic
:class:`RemotePointError` (not retryable), and the code-hash handshake
refuses results from out-of-sync checkouts exactly as over SSH/SLURM.
"""

from __future__ import annotations

import json
import os
import shlex
import subprocess
from pathlib import Path
from typing import Optional

from repro.experiments.backends.base import (
    BackendUnavailableError,
    WorkerLostError,
    tail_text as _tail,
)
from repro.experiments.backends.batch import (
    WORKER_MODULE as _WORKER_MODULE,
    BatchBackend,
    BatchTransport,
)
from repro.experiments.cache import default_cache_dir

__all__ = [
    "K8sCliTransport",
    "K8sTransport",
    "KubernetesBackend",
    "default_k8s_spool_dir",
    "default_kubectl_command",
]

#: prefixes every kubectl command line (shlex-split), e.g. to substitute
#: tools/stub_k8s.py in tests/CI or to route through a wrapper script
_K8S_COMMAND_ENV = "REPRO_KUBECTL_COMMAND"

#: overrides the default spool location
_K8S_SPOOL_ENV = "REPRO_K8S_SPOOL"

#: the label every pod of an indexed Job carries; also set as an
#: annotation on older control planes, so the transport checks both
_INDEX_KEY = "batch.kubernetes.io/job-completion-index"

#: pod phases (or failure reasons) meaning "may still produce a result"
ACTIVE_PHASES = frozenset({"PENDING", "RUNNING"})

#: terminal pod phases/reasons meaning "died without a result": retryable.
#: ``FAILED`` is the bare phase; the rest are ``status.reason`` refinements
#: the transport surfaces when the control plane provides them.
LOST_PHASES = frozenset(
    {
        "FAILED",
        "EVICTED",
        "DEADLINEEXCEEDED",
        "OOMKILLED",
        "NODELOST",
        "SHUTDOWN",
    }
)


def default_kubectl_command() -> tuple:
    """The kubectl argv prefix: ``$REPRO_KUBECTL_COMMAND`` or ``kubectl``."""
    env = os.environ.get(_K8S_COMMAND_ENV)
    if env:
        return tuple(shlex.split(env))
    return ("kubectl",)


def default_k8s_spool_dir() -> Path:
    """``$REPRO_K8S_SPOOL`` or ``<cache dir>/k8s-spool`` (shared filesystem)."""
    env = os.environ.get(_K8S_SPOOL_ENV)
    if env:
        return Path(env)
    return default_cache_dir() / "k8s-spool"


class K8sTransport(BatchTransport):
    """How the backend talks to a Kubernetes control plane.  Stubbable.

    The Kubernetes-flavoured name for the shared :class:`BatchTransport`
    protocol; ``spec`` in :meth:`submit` is the rendered Job manifest
    (JSON -- also valid input for real ``kubectl create -f``).
    """


class K8sCliTransport(K8sTransport):
    """The real thing: shell out to ``kubectl create``/``get``/``delete``.

    ``namespace`` adds ``-n <ns>`` and ``kubectl_options`` appends extra
    arguments (``--context=...``, ``--kubeconfig=...``) to every
    invocation.
    """

    def __init__(
        self,
        command_prefix: Optional[tuple] = None,
        namespace: Optional[str] = None,
        kubectl_options: tuple = (),
        timeout: float = 60.0,
    ) -> None:
        self.prefix = (
            tuple(command_prefix) if command_prefix is not None else default_kubectl_command()
        )
        self.namespace = namespace
        self.kubectl_options = tuple(kubectl_options)
        self.timeout = timeout

    def _argv(self, *args: str) -> list:
        argv = [*self.prefix, *args]
        if self.namespace:
            argv += ["-n", self.namespace]
        argv += list(self.kubectl_options)
        return argv

    def submit(self, job_dir: Path, spec: Path, n_tasks: int) -> str:
        argv = self._argv("create", "-f", str(spec), "-o", "name")
        try:
            proc = subprocess.run(argv, capture_output=True, timeout=self.timeout)
        except OSError as exc:
            raise BackendUnavailableError(
                f"cannot launch kubectl ({argv[0]!r}): {exc}"
            ) from None
        except subprocess.TimeoutExpired:
            # the API server may have accepted the Job without the client
            # reporting it; delete by (unique) manifest name so the orphan
            # cannot run the same points the retry will resubmit
            self._cancel_by_manifest_name(spec)
            raise WorkerLostError(
                "k8s", f"kubectl create gave no job name within {self.timeout:g}s"
            ) from None
        if proc.returncode != 0:
            raise WorkerLostError(
                "k8s", f"kubectl create exit {proc.returncode}: {_tail(proc.stderr)}"
            )
        # -o name prints "job.batch/<name>"
        name = proc.stdout.decode(errors="replace").strip().rsplit("/", 1)[-1]
        if not name:
            raise WorkerLostError("k8s", "kubectl create printed no job name")
        return name

    def poll(self, job_id: str) -> dict:
        out = self._run_quiet(
            "get", "pods", "-l", f"job-name={job_id}", "-o", "json"
        )
        if out is None:
            return {}
        try:
            pods = json.loads(out)
        except json.JSONDecodeError:
            return {}
        states: dict = {}
        for pod in pods.get("items", []):
            if not isinstance(pod, dict):
                continue
            meta = pod.get("metadata") or {}
            index = (meta.get("labels") or {}).get(_INDEX_KEY)
            if index is None:
                index = (meta.get("annotations") or {}).get(_INDEX_KEY)
            try:
                index = int(index)
            except (TypeError, ValueError):
                continue
            status = pod.get("status") or {}
            phase = str(status.get("phase") or "").upper()
            if phase == "FAILED":
                # surface the control plane's refinement (Evicted,
                # DeadlineExceeded, ...) when present; all map to "lost"
                reason = str(status.get("reason") or "").upper()
                phase = reason or phase
            if phase:
                states[index] = phase
        return states

    def _run_quiet(self, *args: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                self._argv(*args), capture_output=True, timeout=self.timeout
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            # e.g. the namespace disappeared mid-sweep
            return None
        return proc.stdout.decode(errors="replace")

    def cancel(self, target: str) -> None:
        try:
            subprocess.run(
                self._argv(
                    "delete", "job", target, "--ignore-not-found=true", "--wait=false"
                ),
                capture_output=True,
                timeout=self.timeout,
            )
        except (OSError, subprocess.TimeoutExpired):
            pass

    def _cancel_by_manifest_name(self, spec: Path) -> None:
        """Best-effort delete of a Job whose creation was never confirmed."""
        try:
            manifest = json.loads(Path(spec).read_text(encoding="utf-8"))
            name = manifest["metadata"]["name"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            return
        self.cancel(str(name))


class KubernetesBackend(BatchBackend):
    """Batch cache-missing grid points into indexed-completion k8s Jobs."""

    name = "k8s"
    task_noun = "completion index"
    active_states = ACTIVE_PHASES
    lost_states = LOST_PHASES
    completed_states = frozenset({"SUCCEEDED"})

    def __init__(
        self,
        transport: Optional[K8sTransport] = None,
        spool: Optional[Path] = None,
        python: str = "python3",
        cwd: Optional[str] = None,
        pythonpath: Optional[str] = None,
        namespace: Optional[str] = None,
        image: str = "python:3.12-slim",
        kubectl_options: tuple = (),
        batch_size: int = 500,
        linger: float = 0.2,
        poll_interval: float = 1.0,
        point_timeout: Optional[float] = None,
        unknown_grace: int = 10,
        completed_grace: int = 5,
        keep_spool: bool = False,
        verify_code: bool = True,
        checkpoint: Optional[dict] = None,
    ) -> None:
        super().__init__(
            transport=(
                transport
                if transport is not None
                else K8sCliTransport(namespace=namespace, kubectl_options=kubectl_options)
            ),
            spool=spool if spool is not None else default_k8s_spool_dir(),
            python=python,
            cwd=cwd,
            pythonpath=pythonpath,
            batch_size=batch_size,
            linger=linger,
            poll_interval=poll_interval,
            point_timeout=point_timeout,
            unknown_grace=unknown_grace,
            completed_grace=completed_grace,
            keep_spool=keep_spool,
            verify_code=verify_code,
            checkpoint=checkpoint,
        )
        self.namespace = namespace
        self.image = image
        self.kubectl_options = tuple(kubectl_options)

    # -- BatchBackend hooks ----------------------------------------------

    def _write_submission(self, job_dir: Path, n_tasks: int) -> Path:
        manifest = job_dir / "job.json"
        manifest.write_text(
            json.dumps(self._render_manifest(job_dir, n_tasks), indent=2, sort_keys=True),
            encoding="utf-8",
        )
        return manifest

    # a timed-out point deletes the whole Job: Kubernetes has no per-index
    # cancel, and every index of one Job shares the same submission clock,
    # so its siblings are timing out in the same poll anyway
    # (the default _cancel_target already names the job)

    def _job_name(self, job_dir: Path) -> str:
        # DNS-1123: the spool components are already lowercase [a-z0-9-]
        # ("sweep-<pid>-<hex>", "job-<seq>"), so this stays a valid name
        return f"hc3i-{job_dir.parent.name}-{job_dir.name}"

    def _render_pod_script(self, job_dir: Path) -> str:
        lines = ["set -u"]
        if self.cwd:
            lines.append(f"cd {shlex.quote(self.cwd)}")
        if self.pythonpath:
            lines.append(
                f"export PYTHONPATH={shlex.quote(self.pythonpath)}"
                + "${PYTHONPATH:+:$PYTHONPATH}"
            )
        quoted = shlex.quote(str(job_dir))
        lines.append(f'task={quoted}/tasks/"$JOB_COMPLETION_INDEX".json')
        lines.append(f'out={quoted}/results/"$JOB_COMPLETION_INDEX".json')
        # write-then-rename: a result file is complete the instant it exists
        lines.append(
            f'{shlex.quote(self.python)} -m {_WORKER_MODULE} '
            '< "$task" > "$out.tmp" && mv "$out.tmp" "$out"'
        )
        return "\n".join(lines) + "\n"

    def _render_manifest(self, job_dir: Path, n_tasks: int) -> dict:
        name = self._job_name(job_dir)
        mounts = [str(self.spool)]
        if self.cwd and not Path(self.cwd).resolve().is_relative_to(
            self.spool.resolve()
        ):
            # a cwd under the spool is already mounted; anything else --
            # including a sibling sharing a string prefix -- needs its own
            mounts.append(str(self.cwd))
        volumes = [
            {"name": f"spool-{i}", "hostPath": {"path": path, "type": "Directory"}}
            for i, path in enumerate(mounts)
        ]
        volume_mounts = [
            {"name": f"spool-{i}", "mountPath": path} for i, path in enumerate(mounts)
        ]
        metadata: dict = {"name": name, "labels": {"app.kubernetes.io/name": "hc3i-repro"}}
        if self.namespace:
            metadata["namespace"] = self.namespace
        return {
            "apiVersion": "batch/v1",
            "kind": "Job",
            "metadata": metadata,
            "spec": {
                "completionMode": "Indexed",
                "completions": n_tasks,
                "parallelism": n_tasks,
                # retry is the runner's job (requeue taxonomy), never kubelet's
                "backoffLimit": 0,
                "template": {
                    "metadata": {"labels": {"app.kubernetes.io/name": "hc3i-repro"}},
                    "spec": {
                        "restartPolicy": "Never",
                        "containers": [
                            {
                                "name": "point",
                                "image": self.image,
                                "command": [
                                    "/bin/bash",
                                    "-c",
                                    self._render_pod_script(job_dir),
                                ],
                                "volumeMounts": volume_mounts,
                            }
                        ],
                        "volumes": volumes,
                    },
                },
            },
        }
