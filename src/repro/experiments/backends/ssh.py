"""SSH fan-out backend: execute grid points on a federation of hosts.

Each cache-missing point travels as a self-contained JSON job over
``ssh <host> python -m repro.experiments.remote_worker`` -- the params
dict fully determines the simulation (seed included), so the only state
a remote host needs is the same ``repro`` sources.  The worker streams
back a JSON envelope carrying the pickled point value, so the submitter
receives exactly the object a local run would have produced; the
envelope's code hash is checked against ours before the value is
trusted (accepting results from out-of-sync sources would poison the
content-addressed cache).

Scheduling: every host contributes ``slots`` concurrent seats.  A thread
pool sized to the total seat count runs one SSH session per in-flight
point; seats are handed to the least-loaded live host.  Transport-level
failures (connect refused, non-zero exit, truncated stream, timeout)
raise :class:`WorkerLostError`; after ``max_host_strikes`` such failures
a host is retired and its in-flight points are reassigned by the
runner's retry loop.  A point function *raising* remotely is reported in
the envelope and is not retryable -- points are deterministic, so it
would fail identically anywhere.

Values arrive pickled from hosts the operator listed in ``--hosts``;
only point your roster at machines you trust (the same trust ``ssh``
itself implies).
"""

from __future__ import annotations

import json
import os
import shlex
import subprocess
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Optional

from repro.experiments.backends.base import (
    Backend,
    BackendUnavailableError,
    PointOutcome,
    PointTask,
    WorkerLostError,
    _HostState,
    tail_text as _tail,
)
from repro.experiments.backends.hosts import HostSpec
from repro.experiments.remote_worker import decode_envelope, make_wire_job

__all__ = ["SSHBackend", "DEFAULT_SSH_COMMAND", "default_ssh_command"]

#: BatchMode forbids password prompts -- a sweep must never hang on a tty
DEFAULT_SSH_COMMAND = ("ssh", "-o", "BatchMode=yes", "-o", "ConnectTimeout=10")

#: overrides the transport command line (shlex-split), e.g. to add jump
#: hosts/options or to substitute a stub transport in tests and CI
_SSH_COMMAND_ENV = "REPRO_SSH_COMMAND"

_WORKER_MODULE = "repro.experiments.remote_worker"


def default_ssh_command() -> tuple:
    """The transport argv prefix: ``$REPRO_SSH_COMMAND`` or plain ssh."""
    env = os.environ.get(_SSH_COMMAND_ENV)
    if env:
        return tuple(shlex.split(env))
    return DEFAULT_SSH_COMMAND


class SSHBackend(Backend):
    """Fan grid points out over SSH to a roster of :class:`HostSpec`."""

    name = "ssh"

    def __init__(
        self,
        hosts: list,
        ssh_command: Optional[tuple] = None,
        point_timeout: Optional[float] = None,
        max_host_strikes: int = 2,
        verify_code: bool = True,
    ) -> None:
        if not hosts:
            raise ValueError("SSHBackend needs at least one host")
        self.ssh_command = tuple(ssh_command) if ssh_command else default_ssh_command()
        self.point_timeout = point_timeout
        self.max_host_strikes = max(1, int(max_host_strikes))
        self.verify_code = verify_code
        self._states = {
            spec.name: _HostState(
                name=spec.name, slots=spec.slots, free=spec.slots, extra={"spec": spec}
            )
            for spec in hosts
        }
        if len(self._states) != len(hosts):
            raise ValueError("duplicate host names in roster")
        self._cond = threading.Condition()
        self._closing = False
        total_slots = sum(spec.slots for spec in hosts)
        self._pool = ThreadPoolExecutor(
            max_workers=total_slots, thread_name_prefix="ssh-sweep"
        )

    # -- seat allocation ----------------------------------------------

    def _acquire(self) -> HostSpec:
        with self._cond:
            while not self._closing:
                live = [s for s in self._states.values() if s.alive]
                if not live:
                    raise BackendUnavailableError(
                        "all SSH hosts are dead: "
                        + ", ".join(sorted(self._states))
                    )
                seated = [s for s in live if s.free > 0]
                if seated:
                    state = max(seated, key=lambda s: s.free)
                    state.free -= 1
                    return state.extra["spec"]
                self._cond.wait(timeout=0.25)
            raise BackendUnavailableError("SSH backend is shutting down")

    def _release(self, host: str) -> None:
        with self._cond:
            self._states[host].free += 1
            self._cond.notify_all()

    def _strike(self, host: str) -> None:
        with self._cond:
            state = self._states[host]
            state.strikes += 1
            if state.strikes >= self.max_host_strikes:
                state.alive = False
            else:
                state.free += 1
            self._cond.notify_all()

    # -- Backend protocol ----------------------------------------------

    def submit(self, task: PointTask) -> "Future[PointOutcome]":
        return self._pool.submit(self._run, task)

    def _run(self, task: PointTask) -> PointOutcome:
        spec = self._acquire()
        try:
            outcome = self._execute(spec, task)
        except WorkerLostError:
            self._strike(spec.name)
            raise
        except BaseException:
            self._release(spec.name)
            raise
        self._release(spec.name)
        return outcome

    def _execute(self, spec: HostSpec, task: PointTask) -> PointOutcome:
        job = json.dumps(make_wire_job(task.experiment, task.params))
        argv = [*self.ssh_command, spec.name, _remote_command(spec)]
        start = time.perf_counter()
        try:
            proc = subprocess.run(
                argv,
                input=job.encode(),
                capture_output=True,
                timeout=self.point_timeout,
            )
        except subprocess.TimeoutExpired:
            raise WorkerLostError(
                spec.name, f"no result within {self.point_timeout:g}s"
            ) from None
        except OSError as exc:
            raise WorkerLostError(spec.name, f"cannot launch ssh: {exc}") from None
        elapsed = time.perf_counter() - start
        if proc.returncode != 0:
            raise WorkerLostError(
                spec.name,
                f"exit {proc.returncode}: {_tail(proc.stderr)}",
            )
        try:
            envelope = json.loads(proc.stdout.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise WorkerLostError(
                spec.name, f"truncated/garbled result stream: {_tail(proc.stdout)}"
            ) from None
        value = decode_envelope(envelope, spec.name, verify_code=self.verify_code)
        return PointOutcome(value=value, host=spec.name, elapsed=elapsed)

    def shutdown(self) -> None:
        with self._cond:
            self._closing = True
            self._cond.notify_all()
        self._pool.shutdown(wait=False, cancel_futures=True)

    def hosts(self) -> list:
        with self._cond:
            return sorted(s.name for s in self._states.values() if s.alive)


def _remote_command(spec: HostSpec) -> str:
    """The shell line executed on the remote host, safely quoted."""
    parts = []
    if spec.cwd:
        parts.append(f"cd {shlex.quote(spec.cwd)} &&")
    if spec.pythonpath:
        # assignment context: no word splitting on the expanded suffix
        parts.append(
            f"PYTHONPATH={shlex.quote(spec.pythonpath)}" + "${PYTHONPATH:+:$PYTHONPATH}"
        )
    parts.append(f"{shlex.quote(spec.python)} -m {_WORKER_MODULE}")
    return " ".join(parts)


