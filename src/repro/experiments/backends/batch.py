"""Scheduler-agnostic substrate for batch-submission backends.

Real federation sites take work through a batch scheduler, and the two
big scheduler families -- SLURM-style array jobs and Kubernetes-style
indexed Jobs -- share almost all of their sweep-side machinery.  This
module is that shared machinery, extracted so each concrete backend only
has to answer two questions: *how is one batch described to the
scheduler* (an ``sbatch`` script, a Job manifest) and *what do the
scheduler's task states mean*.

The common shape:

* Cache-missing grid points submitted close together are buffered
  (``linger`` window, ``prepare``/``flush`` hints from the runner) and
  dispatched as **one** scheduler batch of up to ``batch_size`` tasks.
* Each batch gets a job directory under a shared spool: every point's
  wire job (the exact :func:`make_wire_job` format the SSH backend
  ships) is written to ``tasks/<i>.json``, and task *i* is expected to
  leave its response envelope at ``results/<i>.json`` --
  write-then-rename, so a result file is complete the instant it exists.
* A polling thread harvests result envelopes (an envelope always beats
  possibly-stale scheduler state) and maps the remaining task states
  through the subclass's ``active`` / ``lost`` / ``completed``
  vocabularies, with ``unknown_grace`` / ``completed_grace`` tolerances
  for scheduler amnesia and shared-filesystem lag.
* Failure semantics follow the backend contract: a task that ends in a
  lost state, times out, or vanishes raises :class:`WorkerLostError`, so
  the runner requeues the point and resubmissions go out as a fresh
  batch.  A point *raising* inside the worker comes back in the envelope
  as a deterministic :class:`RemotePointError` (not retryable), and the
  code-hash handshake refuses results from out-of-sync checkouts.

Scheduler interaction goes through a pluggable :class:`BatchTransport`
(``sbatch``/``squeue``/``sacct`` for SLURM, ``kubectl`` for Kubernetes),
which is also the test seam: in-memory transports and the
``tools/stub_slurm.py`` / ``tools/stub_k8s.py`` mini-schedulers drive the
exact same code paths CI cannot reach with a real cluster.
"""

from __future__ import annotations

import abc
import json
import os
import re
import shutil
import threading
import time
from concurrent.futures import Future, InvalidStateError
from pathlib import Path
from typing import Optional

from repro.experiments import checkpoint as checkpoint_mod
from repro.experiments.backends.base import (
    Backend,
    BackendUnavailableError,
    PointOutcome,
    PointTask,
    WorkerLostError,
)
from repro.experiments.remote_worker import decode_envelope, make_wire_job

__all__ = [
    "BatchBackend",
    "BatchJob",
    "BatchTransport",
    "WORKER_MODULE",
    "expand_indices",
    "normalize_state",
]

#: the stdin/stdout worker every batch task runs
WORKER_MODULE = "repro.experiments.remote_worker"


#: one array-index chunk: ``7``, ``0-15``, ``0-15:4``, each with an optional
#: ``%limit`` throttle suffix (squeue prints the array throttle inline)
_CHUNK_RE = re.compile(r"^(\d+)(?:-(\d+)(?::(\d+))?)?(?:%(\d+))?$")


def expand_indices(token: str) -> list:
    """Expand a scheduler task-index token into a list of task indices.

    Understands every form the real ``squeue``/``sacct`` emit: single
    indices (``3``), ranges (``[0-4]``), stepped ranges (``0-15:4``),
    ``%limit`` throttle suffixes (``[0-31%8]``, ``5%1``, ``0-15:4%2``),
    and comma lists mixing all of the above (``0,4-12:4``).

    Anything else raises :class:`ValueError` **loudly**.  The old
    behavior -- silently skipping malformed chunks, so an unrecognized
    token expanded to ``[]`` -- meant the affected tasks were never
    marked and burned ``unknown_grace`` polls before being declared
    vanished.  Poll-path callers that must not raise catch this and
    treat the token as "no state learned" explicitly (with a warning),
    instead of the parser hiding the problem.
    """
    text = token.strip()
    if text.startswith("[") and text.endswith("]"):
        text = text[1:-1]
    indices: list = []
    for chunk in text.split(","):
        match = _CHUNK_RE.match(chunk.strip())
        if match is None:
            raise ValueError(
                f"unrecognized scheduler array-index token {token!r} "
                f"(cannot parse chunk {chunk.strip()!r})"
            )
        lo, hi, step, limit = match.groups()
        if limit is not None and int(limit) < 1:
            raise ValueError(
                f"unrecognized scheduler array-index token {token!r} "
                f"(throttle %{limit} must be >= 1)"
            )
        if hi is None:
            indices.append(int(lo))
            continue
        lo_i, hi_i = int(lo), int(hi)
        step_i = int(step) if step is not None else 1
        if step_i < 1:
            raise ValueError(
                f"unrecognized scheduler array-index token {token!r} "
                f"(step :{step} must be >= 1)"
            )
        if hi_i < lo_i:
            raise ValueError(
                f"unrecognized scheduler array-index token {token!r} "
                f"(descending range {lo_i}-{hi_i})"
            )
        indices.extend(range(lo_i, hi_i + 1, step_i))
    return indices


def normalize_state(state: str) -> str:
    """One canonical state word from raw scheduler output.

    Schedulers decorate states -- ``CANCELLED by 0`` (sacct's actor
    suffix), ``COMPLETED+`` (truncation marker) -- and the decoration
    varies between commands.  Every parser must normalize identically or
    a state drifts between "lost" and "unknown" depending on which
    command reported it first.  Whitespace-only input yields ``""``
    (treated as unknown), never an exception.
    """
    words = state.split()
    return words[0].upper().rstrip("+") if words else ""


class BatchTransport(abc.ABC):
    """How a batch backend talks to its scheduler.  Stubbable in tests."""

    @abc.abstractmethod
    def submit(self, job_dir: Path, spec: Path, n_tasks: int) -> str:
        """Submit the batch described by ``spec``; returns the job id.

        ``spec`` is whatever :meth:`BatchBackend._write_submission`
        produced (an sbatch script, a Job manifest).  Raises
        :class:`WorkerLostError` for a failed submission (retryable: the
        queue may have been momentarily full) and
        :class:`BackendUnavailableError` when the scheduler cannot be
        reached at all (submission binary missing).
        """

    @abc.abstractmethod
    def poll(self, job_id: str) -> dict:
        """Best-effort state per task index, e.g. ``{0: "RUNNING"}``.

        Missing indices mean "unknown"; the backend tolerates a few
        unknown polls before declaring a task lost.  Never raises.
        """

    @abc.abstractmethod
    def cancel(self, target: str) -> None:
        """Best-effort cancellation of a job (or one task).  Never raises."""


class _TaskSlot:
    """One submitted point waiting on a batch task."""

    __slots__ = ("task", "future", "unknown_polls", "completed_polls")

    def __init__(self, task: PointTask, future: Future) -> None:
        self.task = task
        self.future = future
        self.unknown_polls = 0
        self.completed_polls = 0


class BatchJob:
    """One submitted scheduler batch and its per-index slots."""

    def __init__(self, job_id: str, job_dir: Path, slots: list) -> None:
        self.job_id = job_id
        self.dir = job_dir
        self.slots = dict(enumerate(slots))
        self.submitted = time.monotonic()
        self.failed = False

    def unresolved(self) -> dict:
        return {i: s for i, s in self.slots.items() if not s.future.done()}


class BatchBackend(Backend):
    """Batch cache-missing grid points into scheduler jobs.

    Subclasses provide the scheduler vocabulary (``active_states`` /
    ``lost_states`` / ``completed_states``, a ``task_noun`` for error
    messages) and two hooks: :meth:`_write_submission` renders the
    per-batch submission artifact into the job directory, and
    :meth:`_cancel_target` names what to cancel when one task times out.
    """

    #: scheduler states that mean "the task can still produce a result"
    active_states: frozenset = frozenset()
    #: terminal states that mean "the task died without a result": retryable
    lost_states: frozenset = frozenset()
    #: terminal success states; a result envelope must (eventually) exist
    completed_states: frozenset = frozenset({"COMPLETED"})
    #: how error messages name one task ("array task 3", "completion index 3")
    task_noun: str = "task"

    def __init__(
        self,
        transport: BatchTransport,
        spool: Path,
        python: str = "python3",
        cwd: Optional[str] = None,
        pythonpath: Optional[str] = None,
        batch_size: int = 500,
        linger: float = 0.2,
        poll_interval: float = 1.0,
        point_timeout: Optional[float] = None,
        unknown_grace: int = 10,
        completed_grace: int = 5,
        keep_spool: bool = False,
        verify_code: bool = True,
        checkpoint: Optional[dict] = None,
    ) -> None:
        self.transport = transport
        self.spool = Path(spool)
        self.python = python
        self.cwd = cwd
        self.pythonpath = pythonpath
        self.batch_size = max(1, int(batch_size))
        self.linger = max(0.0, float(linger))
        self.poll_interval = max(0.005, float(poll_interval))
        self.point_timeout = point_timeout
        self.unknown_grace = max(1, int(unknown_grace))
        self.completed_grace = max(1, int(completed_grace))
        self.keep_spool = keep_spool
        self.verify_code = verify_code
        # Checkpoint policy shipped with every wire job ({"every", "wall",
        # "dir"}): snapshots land next to the spool by default, so a
        # requeued task (fresh batch, same key) finds its predecessor's
        # latest envelope and resumes instead of recomputing.
        self.checkpoint = dict(checkpoint) if checkpoint else None
        if self.checkpoint is not None and not self.checkpoint.get("dir"):
            self.checkpoint["dir"] = str(self.spool / "snapshots")

        self._cond = threading.Condition()
        self._buffer: list = []
        self._buffer_since = 0.0
        self._flush_asap = False
        self._expected: Optional[int] = None
        self._jobs: list = []
        self._job_seq = 0
        self._closing = False
        self._thread: Optional[threading.Thread] = None
        self._sweep_dir: Optional[Path] = None

    # -- subclass hooks ------------------------------------------------

    @abc.abstractmethod
    def _write_submission(self, job_dir: Path, n_tasks: int) -> Path:
        """Render the submission artifact for one batch; returns its path.

        Called after ``tasks/<i>.json`` wire jobs are in place.  The
        returned path is handed to :meth:`BatchTransport.submit` as
        ``spec``.  May raise :class:`OSError` (treated as a retryable
        spool-write failure).
        """

    def _cancel_target(self, job_id: str, index: int) -> str:
        """What to cancel when task ``index`` times out (default: the job)."""
        return job_id

    # -- Backend protocol ----------------------------------------------

    def prepare(self, n_tasks: int) -> None:
        with self._cond:
            self._expected = max(1, n_tasks)

    def submit(self, task: PointTask) -> "Future[PointOutcome]":
        future: Future = Future()
        with self._cond:
            if self._closing:
                raise BackendUnavailableError(f"{self.name} backend is shutting down")
            if not self._buffer:
                self._buffer_since = time.monotonic()
            self._buffer.append(_TaskSlot(task, future))
            self._ensure_thread()
            self._cond.notify_all()
        return future

    def flush(self) -> None:
        with self._cond:
            if self._buffer:
                self._flush_asap = True
                self._cond.notify_all()

    def shutdown(self) -> None:
        with self._cond:
            if self._closing:
                return
            self._closing = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout=30.0)
        # fail anything still unresolved and cancel scheduler leftovers
        for job in self._jobs:
            leftovers = job.unresolved()
            if leftovers:
                self.transport.cancel(job.job_id)
            for slot in leftovers.values():
                slot.future.cancel()
        for slot in self._buffer:
            slot.future.cancel()
        self._buffer.clear()
        self._cleanup_sweep_dir()

    def hosts(self) -> list:
        return [self.name]

    # -- submission loop -----------------------------------------------

    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._loop, name=f"{self.name}-sweep", daemon=True
            )
            self._thread.start()

    def _loop(self) -> None:
        next_poll = time.monotonic()
        while True:
            with self._cond:
                if self._closing:
                    return
                timeout = min(
                    self.poll_interval,
                    self.linger if self._buffer else self.poll_interval,
                    max(0.0, next_poll - time.monotonic()),
                    0.2,
                )
                self._cond.wait(timeout=max(0.005, timeout))
                if self._closing:
                    return
                batch = self._take_ready_batch()
            if batch:
                self._submit_batch_job(batch)
            if time.monotonic() >= next_poll:
                self._poll_jobs()
                next_poll = time.monotonic() + self.poll_interval

    def _take_ready_batch(self) -> list:
        """Under the lock: pop the buffer if it is ripe for submission."""
        if not self._buffer:
            return []
        ripe = (
            self._flush_asap
            or len(self._buffer) >= self.batch_size
            or (self._expected is not None and len(self._buffer) >= self._expected)
            or time.monotonic() - self._buffer_since >= self.linger
        )
        if not ripe:
            return []
        batch, self._buffer = self._buffer[: self.batch_size], self._buffer[self.batch_size:]
        if not self._buffer:
            self._flush_asap = False
        if self._expected is not None:
            # once the prepared burst is dispatched, later submissions are
            # retries of unknown count: fall back to linger/flush batching
            remaining = self._expected - len(batch)
            self._expected = remaining if remaining > 0 else None
        return batch

    # -- batch job lifecycle -------------------------------------------

    def _ensure_sweep_dir(self) -> Path:
        if self._sweep_dir is None:
            root = self.spool / f"sweep-{os.getpid()}-{int(time.time() * 1000):x}"
            root.mkdir(parents=True, exist_ok=True)
            self._sweep_dir = root
        return self._sweep_dir

    def _submit_batch_job(self, slots: list) -> None:
        self._job_seq += 1
        try:
            job_dir = self._ensure_sweep_dir() / f"job-{self._job_seq:04d}"
            (job_dir / "tasks").mkdir(parents=True)
            (job_dir / "results").mkdir()
            (job_dir / "logs").mkdir()
            for i, slot in enumerate(slots):
                wire = make_wire_job(
                    slot.task.experiment,
                    slot.task.params,
                    checkpoint=self._wire_checkpoint(slot.task),
                )
                (job_dir / "tasks" / f"{i}.json").write_text(
                    json.dumps(wire, sort_keys=True), encoding="utf-8"
                )
            spec = self._write_submission(job_dir, len(slots))
        except OSError as exc:
            self._fail_slots(slots, WorkerLostError(self.name, f"cannot write spool: {exc}"))
            return
        try:
            job_id = self.transport.submit(job_dir, spec, len(slots))
        except BaseException as exc:  # noqa: BLE001 - delivered through the futures
            self._fail_slots(slots, exc)
            return
        with self._cond:
            self._jobs.append(BatchJob(job_id, job_dir, slots))

    def _wire_checkpoint(self, task: PointTask) -> Optional[dict]:
        """The snapshot ref this task ships: policy + its stable point key.

        The key is derived from (code, experiment, params) -- identical
        for the original submission and every requeue -- which is what
        lets attempt N+1 pick up attempt N's latest snapshot.
        """
        if self.checkpoint is None:
            return None
        return {
            "every": self.checkpoint.get("every"),
            "wall": self.checkpoint.get("wall"),
            "dir": self.checkpoint["dir"],
            "key": checkpoint_mod.point_key(task.experiment, task.params),
        }

    @staticmethod
    def _fail_slots(slots: list, exc: BaseException) -> None:
        for slot in slots:
            _set_exception(slot.future, exc)

    # -- polling -------------------------------------------------------

    def _poll_jobs(self) -> None:
        with self._cond:
            jobs = list(self._jobs)
        for job in jobs:
            self._poll_job(job)
        with self._cond:
            self._jobs = [j for j in self._jobs if j.unresolved()]
        for job in jobs:
            if not job.unresolved():
                self._finalize_job(job)

    def _poll_job(self, job: BatchJob) -> None:
        unresolved = job.unresolved()
        if not unresolved:
            return
        # harvest result files first: a finished task's envelope beats any
        # (possibly stale) scheduler state
        need_states = {}
        for i, slot in list(unresolved.items()):
            result_path = job.dir / "results" / f"{i}.json"
            if result_path.exists():
                self._resolve_from_file(job, i, slot, result_path)
            else:
                need_states[i] = slot
        if not need_states:
            return
        states = self.transport.poll(job.job_id)
        timed_out = (
            self.point_timeout is not None
            and time.monotonic() - job.submitted > self.point_timeout
        )
        cancelled_targets: set = set()
        for i, slot in need_states.items():
            if slot.future.done():
                continue
            state = states.get(i)
            if timed_out:
                # dedupe: schedulers without per-task cancel (k8s) name the
                # whole job for every index, and one delete is enough
                target = self._cancel_target(job.job_id, i)
                if target not in cancelled_targets:
                    cancelled_targets.add(target)
                    self.transport.cancel(target)
                self._lose(job, i, slot, f"no result within {self.point_timeout:g}s")
            elif state in self.active_states:
                slot.unknown_polls = 0
                slot.completed_polls = 0
            elif state in self.lost_states:
                self._lose(job, i, slot, f"{self.task_noun} {i} ended {state}")
            elif state in self.completed_states:
                # completed per the scheduler but the result file has not
                # appeared: allow for shared-filesystem lag, then give up
                slot.completed_polls += 1
                if slot.completed_polls >= self.completed_grace:
                    self._lose(
                        job, i, slot, f"{self.task_noun} {i} completed without a result"
                    )
            else:
                slot.unknown_polls += 1
                if slot.unknown_polls >= self.unknown_grace:
                    self._lose(
                        job, i, slot, f"{self.task_noun} {i} vanished from the scheduler"
                    )

    def _resolve_from_file(self, job: BatchJob, i: int, slot: _TaskSlot, path: Path) -> None:
        host = f"{self.name}:{job.job_id}"
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._lose(job, i, slot, f"garbled result file {path.name}: {exc}")
            return
        try:
            value = decode_envelope(envelope, host, verify_code=self.verify_code)
        except BaseException as exc:  # noqa: BLE001 - delivered through the future
            _set_exception(slot.future, exc)
            job.failed = True
            return
        elapsed = float(envelope.get("elapsed", 0.0) or 0.0)
        _set_result(slot.future, PointOutcome(value=value, host=host, elapsed=elapsed))

    def _lose(self, job: BatchJob, i: int, slot: _TaskSlot, reason: str) -> None:
        job.failed = True
        _set_exception(slot.future, WorkerLostError(f"{self.name}:{job.job_id}", reason))

    def _finalize_job(self, job: BatchJob) -> None:
        if self.keep_spool or job.failed:
            return  # keep failed-job spools around for post-mortems
        shutil.rmtree(job.dir, ignore_errors=True)

    def _cleanup_sweep_dir(self) -> None:
        if self.checkpoint is not None and not self.keep_spool:
            # killed writers leave *.tmp behind; snapshots of completed
            # points were GC'd as they finished
            checkpoint_mod.sweep_orphans(self.checkpoint["dir"])
        if self._sweep_dir is None or self.keep_spool:
            return
        try:
            self._sweep_dir.rmdir()  # only if every job dir was cleaned up
        except OSError:
            pass


def _set_result(future: Future, outcome: PointOutcome) -> None:
    try:
        future.set_result(outcome)
    except InvalidStateError:
        pass  # the runner cancelled this point (sweep aborting)


def _set_exception(future: Future, exc: BaseException) -> None:
    try:
        future.set_exception(exc)
    except InvalidStateError:
        pass
