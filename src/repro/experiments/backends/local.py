"""Local execution backends: in-process (tests) and process-pool.

``LocalProcessBackend`` is the default and wraps the exact execution
strategy the runner used before backends existed: points run inline for
``jobs <= 1`` (no pool spawn, fail-fast, debugger-friendly) and fan out
over a :class:`~concurrent.futures.ProcessPoolExecutor` otherwise
(simulations are CPU-bound; threads would serialize on the GIL).
Determinism is structural -- every params dict carries its seed -- so
results are byte-identical across ``jobs`` settings and backends.

``InProcessBackend`` is the test double: synchronous execution with a
configurable roster of fake hosts and a fault-injection hook, so
worker-loss/retry behaviour is testable without processes or SSH.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional

from repro.experiments import checkpoint
from repro.experiments.backends.base import (
    Backend,
    BackendUnavailableError,
    PointOutcome,
    PointTask,
    WorkerLostError,
    resolve_future,
)

__all__ = ["InProcessBackend", "LocalProcessBackend"]

LOCAL_HOST = "local"


class LocalProcessBackend(Backend):
    """Today's process-pool path behind the :class:`Backend` protocol."""

    name = "local"

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))
        self._hint: Optional[int] = None
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ------------------------------------------------

    def prepare(self, n_tasks: int) -> None:
        self._hint = max(1, n_tasks)

    def _inline(self) -> bool:
        """Mirror the historical runner: no pool for one job or one point."""
        return self.jobs <= 1 or self._hint == 1

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            workers = min(self.jobs, self._hint or self.jobs, os.cpu_count() or 1)
            self._pool = ProcessPoolExecutor(max_workers=workers)
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- Backend protocol ----------------------------------------------

    def submit(self, task: PointTask) -> "Future[PointOutcome]":
        if self._inline():
            future: Future = Future()
            resolve_future(future, lambda: _run_inline(task))
            return future
        # task.fn is a module-level function, so it pickles by reference;
        # unpickling it in a worker imports its module, which re-populates
        # the registry there as a side effect.
        outer: Future = Future()
        try:
            inner = self._ensure_pool().submit(
                _timed_point, task.fn, task.params, task.experiment
            )
        except BrokenProcessPool:
            # the previous pool died; build a fresh one so a retry can run
            self._discard_pool()
            inner = self._ensure_pool().submit(
                _timed_point, task.fn, task.params, task.experiment
            )
        inner.add_done_callback(lambda fut: self._finish(outer, fut))
        return outer

    def _finish(self, outer: Future, inner: Future) -> None:
        if outer.cancelled():
            return  # the runner aborted this sweep; nobody wants the value
        exc = inner.exception()
        if isinstance(exc, BrokenProcessPool):
            # a crashed worker poisons the whole pool; replace it so the
            # runner's resubmission lands on live processes
            self._discard_pool()
            outer.set_exception(WorkerLostError(LOCAL_HOST, "process pool worker died"))
        elif exc is not None:
            outer.set_exception(exc)
        else:
            value, elapsed = inner.result()
            outer.set_result(PointOutcome(value=value, host=LOCAL_HOST, elapsed=elapsed))

    def shutdown(self) -> None:
        if self._pool is not None:
            # cancel_futures: after an aborted sweep, queued points must not
            # keep burning CPU (and delaying exit) for results nobody reads
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def hosts(self) -> list:
        return [LOCAL_HOST]


class InProcessBackend(Backend):
    """Synchronous backend with fake hosts and injectable worker faults.

    ``fault(task, host, attempt)`` is consulted before each execution;
    returning ``True`` simulates that host dying mid-task: the host is
    retired (no further assignments) and :class:`WorkerLostError` is
    raised exactly as a real backend would.  ``attempt`` counts per-task
    submissions (1-based), so tests can kill the first attempt and let
    the reassigned retry through.
    """

    name = "inprocess"

    def __init__(
        self,
        hosts: Optional[list] = None,
        fault: Optional[Callable[[PointTask, str, int], bool]] = None,
    ) -> None:
        self._hosts = list(hosts) if hosts else ["w0"]
        self._alive = set(self._hosts)
        self._fault = fault
        self._attempts: dict = {}
        self._rr = 0
        self.submitted = 0

    def kill_host(self, host: str) -> None:
        """Retire a host by name, as an external failure detector would."""
        self._alive.discard(host)

    def _pick_host(self) -> str:
        live = [h for h in self._hosts if h in self._alive]
        if not live:
            raise BackendUnavailableError(
                f"all {len(self._hosts)} in-process workers are dead"
            )
        host = live[self._rr % len(live)]
        self._rr += 1
        return host

    def submit(self, task: PointTask) -> "Future[PointOutcome]":
        future: Future = Future()
        resolve_future(future, lambda: self._run(task))
        return future

    def _run(self, task: PointTask) -> PointOutcome:
        host = self._pick_host()
        self.submitted += 1
        key = (task.experiment, _freeze(task.params))
        attempt = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempt
        if self._fault is not None and self._fault(task, host, attempt):
            self.kill_host(host)
            raise WorkerLostError(host, "fault injected")
        start = time.perf_counter()
        value = checkpoint.run_point(task.fn, task.params, experiment=task.experiment)
        return PointOutcome(value=value, host=host, elapsed=time.perf_counter() - start)

    def hosts(self) -> list:
        return [h for h in self._hosts if h in self._alive]


def _timed_point(
    fn: Callable[[dict], object], params: dict, experiment: Optional[str] = None
) -> tuple:
    """Worker-side wrapper: run a point and report its wall time.

    Routed through :func:`checkpoint.run_point` so pool workers honor the
    ``$REPRO_CHECKPOINT_*`` environment (inherited at fork/spawn) exactly
    as batch workers honor their wire policy.
    """
    start = time.perf_counter()
    value = checkpoint.run_point(fn, params, experiment=experiment)
    return value, time.perf_counter() - start


def _run_inline(task: PointTask) -> PointOutcome:
    value, elapsed = _timed_point(task.fn, task.params, task.experiment)
    return PointOutcome(value=value, host=LOCAL_HOST, elapsed=elapsed)


def _freeze(obj):
    """Hashable identity for a canonical-JSON params dict."""
    if isinstance(obj, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in obj.items()))
    if isinstance(obj, list):
        return tuple(_freeze(v) for v in obj)
    return obj
