"""SLURM batch backend: submit grid points as array jobs at a federation site.

Real federation sites do not hand out interactive shells -- they take
work through a batch scheduler.  This backend turns the sweep's
cache-missing grid points into SLURM *array jobs*: points submitted
close together are batched into one job directory under a shared spool,
each point's wire job (the exact :func:`make_wire_job` format the SSH
backend ships) written to ``tasks/<i>.json``, and one ``sbatch`` script
whose array task ``i`` runs ``python -m repro.experiments.remote_worker``
with stdin/stdout redirected to ``tasks/<i>.json`` / ``results/<i>.json``.
The spool directory must be visible to both the submitting machine and
the compute nodes (home directories usually are).

Scheduler interaction goes through a pluggable
:class:`SchedulerTransport`.  The default
:class:`SlurmCliTransport` shells out to ``sbatch``/``squeue``/``sacct``/
``scancel``; ``$REPRO_SLURM_COMMAND`` prefixes every invocation (like
``$REPRO_SSH_COMMAND`` for the SSH backend), which is how tests and CI
substitute a stub scheduler without a real SLURM installation.

Failure semantics follow the backend contract: an array task that ends
in a failed state (killed job, node failure, timeout) or vanishes from
the scheduler raises :class:`WorkerLostError`, so the runner requeues
the point -- resubmissions are batched into a fresh array job.  A point
*raising* inside the worker comes back in the envelope as a
deterministic :class:`RemotePointError` (not retryable), and the
code-hash handshake refuses results from out-of-sync checkouts exactly
as over SSH.
"""

from __future__ import annotations

import abc
import json
import os
import re
import shlex
import shutil
import subprocess
import threading
import time
from concurrent.futures import Future, InvalidStateError
from pathlib import Path
from typing import Optional

from repro.experiments.backends.base import (
    Backend,
    BackendUnavailableError,
    PointOutcome,
    PointTask,
    WorkerLostError,
    tail_text as _tail,
)
from repro.experiments.cache import default_cache_dir
from repro.experiments.remote_worker import decode_envelope, make_wire_job

__all__ = [
    "SchedulerTransport",
    "SlurmBackend",
    "SlurmCliTransport",
    "default_slurm_command",
    "default_spool_dir",
]

#: prefixes every scheduler command line (shlex-split), e.g. to substitute
#: a stub scheduler in tests/CI or to route through a login-node wrapper
_SLURM_COMMAND_ENV = "REPRO_SLURM_COMMAND"

#: overrides the default spool location
_SLURM_SPOOL_ENV = "REPRO_SLURM_SPOOL"

_WORKER_MODULE = "repro.experiments.remote_worker"

#: scheduler states that mean "the task can still produce a result"
ACTIVE_STATES = frozenset(
    {
        "PENDING",
        "RUNNING",
        "CONFIGURING",
        "COMPLETING",
        "SUSPENDED",
        "REQUEUED",
        "RESIZING",
        "STAGE_OUT",
    }
)

#: terminal states that mean "the task died without a result": retryable
LOST_STATES = frozenset(
    {
        "FAILED",
        "CANCELLED",
        "TIMEOUT",
        "NODE_FAIL",
        "OUT_OF_MEMORY",
        "PREEMPTED",
        "BOOT_FAIL",
        "DEADLINE",
        "REVOKED",
    }
)


def default_slurm_command() -> tuple:
    """The scheduler argv prefix: ``$REPRO_SLURM_COMMAND`` or nothing."""
    env = os.environ.get(_SLURM_COMMAND_ENV)
    if env:
        return tuple(shlex.split(env))
    return ()


def default_spool_dir() -> Path:
    """``$REPRO_SLURM_SPOOL`` or ``<cache dir>/slurm-spool`` (shared $HOME)."""
    env = os.environ.get(_SLURM_SPOOL_ENV)
    if env:
        return Path(env)
    return default_cache_dir() / "slurm-spool"


class SchedulerTransport(abc.ABC):
    """How the backend talks to a batch scheduler.  Stubbable in tests."""

    @abc.abstractmethod
    def submit(self, job_dir: Path, script: Path, n_tasks: int) -> str:
        """Submit ``script`` as an array job of ``n_tasks``; returns the job id.

        Raises :class:`WorkerLostError` for a failed submission (retryable:
        the queue may have been momentarily full) and
        :class:`BackendUnavailableError` when the scheduler cannot be
        reached at all (``sbatch`` missing).
        """

    @abc.abstractmethod
    def poll(self, job_id: str) -> dict:
        """Best-effort state per array index, e.g. ``{0: "RUNNING"}``.

        Missing indices mean "unknown"; the backend tolerates a few
        unknown polls before declaring a task lost.  Never raises.
        """

    @abc.abstractmethod
    def cancel(self, job_id: str) -> None:
        """Best-effort ``scancel``.  Never raises."""


class SlurmCliTransport(SchedulerTransport):
    """The real thing: shell out to ``sbatch``/``squeue``/``sacct``/``scancel``."""

    def __init__(self, command_prefix: Optional[tuple] = None, timeout: float = 60.0) -> None:
        self.prefix = (
            tuple(command_prefix) if command_prefix is not None else default_slurm_command()
        )
        self.timeout = timeout

    def _argv(self, *args: str) -> list:
        return [*self.prefix, *args]

    def submit(self, job_dir: Path, script: Path, n_tasks: int) -> str:
        argv = self._argv("sbatch", "--parsable", str(script))
        try:
            proc = subprocess.run(argv, capture_output=True, timeout=self.timeout)
        except OSError as exc:
            raise BackendUnavailableError(
                f"cannot launch sbatch ({argv[0]!r}): {exc}"
            ) from None
        except subprocess.TimeoutExpired:
            # sbatch may have accepted the job without printing its id yet;
            # cancel by (unique) job name so the orphan cannot run the same
            # points the retry will resubmit
            self._cancel_by_script_name(script)
            raise WorkerLostError("slurm", f"sbatch gave no job id within {self.timeout:g}s") from None
        if proc.returncode != 0:
            raise WorkerLostError(
                "slurm", f"sbatch exit {proc.returncode}: {_tail(proc.stderr)}"
            )
        # --parsable prints "jobid" or "jobid;cluster"
        job_id = proc.stdout.decode(errors="replace").strip().split(";")[0]
        if not job_id:
            raise WorkerLostError("slurm", "sbatch printed no job id")
        return job_id

    def poll(self, job_id: str) -> dict:
        states: dict = {}
        # sacct first (terminal states), squeue second so live queue state
        # wins for tasks both can see
        out = self._run_quiet(
            "sacct", "-n", "-P", "-X", "-j", job_id, "-o", "JobID,State"
        )
        if out is not None:
            states.update(_parse_sacct(out, job_id))
        out = self._run_quiet("squeue", "-h", "-j", job_id, "-o", "%K|%T")
        if out is not None:
            states.update(_parse_squeue(out))
        return states

    def _run_quiet(self, *args: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                self._argv(*args), capture_output=True, timeout=self.timeout
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            # e.g. squeue "Invalid job id" once the job left the queue
            return None
        return proc.stdout.decode(errors="replace")

    def cancel(self, job_id: str) -> None:
        try:
            subprocess.run(
                self._argv("scancel", job_id), capture_output=True, timeout=self.timeout
            )
        except (OSError, subprocess.TimeoutExpired):
            pass

    def _cancel_by_script_name(self, script: Path) -> None:
        """Best-effort scancel of a job whose id was never read."""
        try:
            text = Path(script).read_text(encoding="utf-8")
        except OSError:
            return
        match = re.search(r"^#SBATCH --job-name=(\S+)", text, re.MULTILINE)
        if match is None:
            return
        try:
            subprocess.run(
                self._argv("scancel", "--name", match.group(1)),
                capture_output=True,
                timeout=self.timeout,
            )
        except (OSError, subprocess.TimeoutExpired):
            pass


def _parse_sacct(out: str, job_id: str) -> dict:
    """``sacct -n -P -X -o JobID,State`` lines -> {array index: STATE}."""
    states: dict = {}
    pattern = re.compile(rf"^{re.escape(job_id)}_(\d+|\[[\d,\-%]+\])$")
    for line in out.splitlines():
        jid, _, state = line.strip().partition("|")
        match = pattern.match(jid)
        if not match or not state:
            continue
        token = match.group(1)
        normalized = state.split()[0].upper().rstrip("+")  # "CANCELLED by 0"
        for idx in _expand_indices(token):
            states[idx] = normalized
    return states


def _parse_squeue(out: str) -> dict:
    """``squeue -h -o "%K|%T"`` lines -> {array index: STATE}."""
    states: dict = {}
    for line in out.splitlines():
        token, _, state = line.strip().partition("|")
        if not token or not state:
            continue
        for idx in _expand_indices(token):
            states[idx] = state.split()[0].upper()
    return states


def _expand_indices(token: str) -> list:
    """Array-index tokens: ``3``, ``[0-4]``, ``0,2-5`` (``%limit`` stripped)."""
    token = token.strip().strip("[]").split("%")[0]
    indices = []
    for chunk in token.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        lo, sep, hi = chunk.partition("-")
        try:
            if sep:
                indices.extend(range(int(lo), int(hi) + 1))
            else:
                indices.append(int(chunk))
        except ValueError:
            continue
    return indices


class _TaskSlot:
    """One submitted point waiting on an array task."""

    __slots__ = ("task", "future", "unknown_polls", "completed_polls")

    def __init__(self, task: PointTask, future: Future) -> None:
        self.task = task
        self.future = future
        self.unknown_polls = 0
        self.completed_polls = 0


class _ArrayJob:
    """One submitted sbatch array job and its per-index slots."""

    def __init__(self, job_id: str, job_dir: Path, slots: list) -> None:
        self.job_id = job_id
        self.dir = job_dir
        self.slots = dict(enumerate(slots))
        self.submitted = time.monotonic()
        self.failed = False

    def unresolved(self) -> dict:
        return {i: s for i, s in self.slots.items() if not s.future.done()}


class SlurmBackend(Backend):
    """Batch cache-missing grid points into SLURM array jobs."""

    name = "slurm"

    def __init__(
        self,
        transport: Optional[SchedulerTransport] = None,
        spool: Optional[Path] = None,
        python: str = "python3",
        cwd: Optional[str] = None,
        pythonpath: Optional[str] = None,
        sbatch_options: tuple = (),
        batch_size: int = 500,
        linger: float = 0.2,
        poll_interval: float = 1.0,
        point_timeout: Optional[float] = None,
        unknown_grace: int = 10,
        completed_grace: int = 5,
        keep_spool: bool = False,
        verify_code: bool = True,
    ) -> None:
        self.transport = transport if transport is not None else SlurmCliTransport()
        self.spool = Path(spool) if spool is not None else default_spool_dir()
        self.python = python
        self.cwd = cwd
        self.pythonpath = pythonpath
        self.sbatch_options = tuple(sbatch_options)
        self.batch_size = max(1, int(batch_size))
        self.linger = max(0.0, float(linger))
        self.poll_interval = max(0.005, float(poll_interval))
        self.point_timeout = point_timeout
        self.unknown_grace = max(1, int(unknown_grace))
        self.completed_grace = max(1, int(completed_grace))
        self.keep_spool = keep_spool
        self.verify_code = verify_code

        self._cond = threading.Condition()
        self._buffer: list = []
        self._buffer_since = 0.0
        self._flush_asap = False
        self._expected: Optional[int] = None
        self._jobs: list = []
        self._job_seq = 0
        self._closing = False
        self._thread: Optional[threading.Thread] = None
        self._sweep_dir: Optional[Path] = None

    # -- Backend protocol ----------------------------------------------

    def prepare(self, n_tasks: int) -> None:
        with self._cond:
            self._expected = max(1, n_tasks)

    def submit(self, task: PointTask) -> "Future[PointOutcome]":
        future: Future = Future()
        with self._cond:
            if self._closing:
                raise BackendUnavailableError("SLURM backend is shutting down")
            if not self._buffer:
                self._buffer_since = time.monotonic()
            self._buffer.append(_TaskSlot(task, future))
            self._ensure_thread()
            self._cond.notify_all()
        return future

    def flush(self) -> None:
        with self._cond:
            if self._buffer:
                self._flush_asap = True
                self._cond.notify_all()

    def shutdown(self) -> None:
        with self._cond:
            if self._closing:
                return
            self._closing = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout=30.0)
        # fail anything still unresolved and cancel scheduler leftovers
        for job in self._jobs:
            leftovers = job.unresolved()
            if leftovers:
                self.transport.cancel(job.job_id)
            for slot in leftovers.values():
                slot.future.cancel()
        for slot in self._buffer:
            slot.future.cancel()
        self._buffer.clear()
        self._cleanup_sweep_dir()

    def hosts(self) -> list:
        return ["slurm"]

    # -- submission loop -----------------------------------------------

    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._loop, name="slurm-sweep", daemon=True
            )
            self._thread.start()

    def _loop(self) -> None:
        next_poll = time.monotonic()
        while True:
            with self._cond:
                if self._closing:
                    return
                timeout = min(
                    self.poll_interval,
                    self.linger if self._buffer else self.poll_interval,
                    max(0.0, next_poll - time.monotonic()),
                    0.2,
                )
                self._cond.wait(timeout=max(0.005, timeout))
                if self._closing:
                    return
                batch = self._take_ready_batch()
            if batch:
                self._submit_array_job(batch)
            if time.monotonic() >= next_poll:
                self._poll_jobs()
                next_poll = time.monotonic() + self.poll_interval

    def _take_ready_batch(self) -> list:
        """Under the lock: pop the buffer if it is ripe for submission."""
        if not self._buffer:
            return []
        ripe = (
            self._flush_asap
            or len(self._buffer) >= self.batch_size
            or (self._expected is not None and len(self._buffer) >= self._expected)
            or time.monotonic() - self._buffer_since >= self.linger
        )
        if not ripe:
            return []
        batch, self._buffer = self._buffer[: self.batch_size], self._buffer[self.batch_size:]
        if not self._buffer:
            self._flush_asap = False
        if self._expected is not None:
            # once the prepared burst is dispatched, later submissions are
            # retries of unknown count: fall back to linger/flush batching
            remaining = self._expected - len(batch)
            self._expected = remaining if remaining > 0 else None
        return batch

    # -- array job lifecycle -------------------------------------------

    def _ensure_sweep_dir(self) -> Path:
        if self._sweep_dir is None:
            root = self.spool / f"sweep-{os.getpid()}-{int(time.time() * 1000):x}"
            root.mkdir(parents=True, exist_ok=True)
            self._sweep_dir = root
        return self._sweep_dir

    def _submit_array_job(self, slots: list) -> None:
        self._job_seq += 1
        try:
            job_dir = self._ensure_sweep_dir() / f"job-{self._job_seq:04d}"
            (job_dir / "tasks").mkdir(parents=True)
            (job_dir / "results").mkdir()
            (job_dir / "logs").mkdir()
            for i, slot in enumerate(slots):
                wire = make_wire_job(slot.task.experiment, slot.task.params)
                (job_dir / "tasks" / f"{i}.json").write_text(
                    json.dumps(wire, sort_keys=True), encoding="utf-8"
                )
            script = job_dir / "job.sh"
            script.write_text(self._render_script(job_dir, len(slots)), encoding="utf-8")
        except OSError as exc:
            self._fail_slots(slots, WorkerLostError("slurm", f"cannot write spool: {exc}"))
            return
        try:
            job_id = self.transport.submit(job_dir, script, len(slots))
        except BaseException as exc:  # noqa: BLE001 - delivered through the futures
            self._fail_slots(slots, exc)
            return
        with self._cond:
            self._jobs.append(_ArrayJob(job_id, job_dir, slots))

    def _render_script(self, job_dir: Path, n_tasks: int) -> str:
        lines = [
            "#!/bin/bash",
            # unique name: lets a submission whose id was lost (sbatch
            # timeout) still be cancelled via `scancel --name`
            f"#SBATCH --job-name=hc3i-{job_dir.parent.name}-{job_dir.name}",
            f"#SBATCH --array=0-{n_tasks - 1}",
            f"#SBATCH --output={job_dir / 'logs'}/%a.log",
        ]
        lines.extend(f"#SBATCH {opt}" for opt in self.sbatch_options)
        lines.append("set -u")
        if self.cwd:
            lines.append(f"cd {shlex.quote(self.cwd)}")
        if self.pythonpath:
            lines.append(
                f"export PYTHONPATH={shlex.quote(self.pythonpath)}"
                + "${PYTHONPATH:+:$PYTHONPATH}"
            )
        quoted = shlex.quote(str(job_dir))
        lines.append(f'task={quoted}/tasks/"$SLURM_ARRAY_TASK_ID".json')
        lines.append(f'out={quoted}/results/"$SLURM_ARRAY_TASK_ID".json')
        # write-then-rename: a result file is complete the instant it exists
        lines.append(
            f'{shlex.quote(self.python)} -m {_WORKER_MODULE} '
            '< "$task" > "$out.tmp" && mv "$out.tmp" "$out"'
        )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _fail_slots(slots: list, exc: BaseException) -> None:
        for slot in slots:
            _set_exception(slot.future, exc)

    # -- polling -------------------------------------------------------

    def _poll_jobs(self) -> None:
        with self._cond:
            jobs = list(self._jobs)
        for job in jobs:
            self._poll_job(job)
        with self._cond:
            self._jobs = [j for j in self._jobs if j.unresolved()]
        for job in jobs:
            if not job.unresolved():
                self._finalize_job(job)

    def _poll_job(self, job: _ArrayJob) -> None:
        unresolved = job.unresolved()
        if not unresolved:
            return
        # harvest result files first: a finished task's envelope beats any
        # (possibly stale) scheduler state
        need_states = {}
        for i, slot in list(unresolved.items()):
            result_path = job.dir / "results" / f"{i}.json"
            if result_path.exists():
                self._resolve_from_file(job, i, slot, result_path)
            else:
                need_states[i] = slot
        if not need_states:
            return
        states = self.transport.poll(job.job_id)
        timed_out = (
            self.point_timeout is not None
            and time.monotonic() - job.submitted > self.point_timeout
        )
        for i, slot in need_states.items():
            if slot.future.done():
                continue
            state = states.get(i)
            if timed_out:
                self.transport.cancel(f"{job.job_id}_{i}")
                self._lose(job, i, slot, f"no result within {self.point_timeout:g}s")
            elif state in ACTIVE_STATES:
                slot.unknown_polls = 0
                slot.completed_polls = 0
            elif state in LOST_STATES:
                self._lose(job, i, slot, f"array task {i} ended {state}")
            elif state == "COMPLETED":
                # completed per the scheduler but the result file has not
                # appeared: allow for shared-filesystem lag, then give up
                slot.completed_polls += 1
                if slot.completed_polls >= self.completed_grace:
                    self._lose(job, i, slot, f"array task {i} completed without a result")
            else:
                slot.unknown_polls += 1
                if slot.unknown_polls >= self.unknown_grace:
                    self._lose(job, i, slot, f"array task {i} vanished from the scheduler")

    def _resolve_from_file(self, job: _ArrayJob, i: int, slot: _TaskSlot, path: Path) -> None:
        host = f"slurm:{job.job_id}"
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._lose(job, i, slot, f"garbled result file {path.name}: {exc}")
            return
        try:
            value = decode_envelope(envelope, host, verify_code=self.verify_code)
        except BaseException as exc:  # noqa: BLE001 - delivered through the future
            _set_exception(slot.future, exc)
            job.failed = True
            return
        elapsed = float(envelope.get("elapsed", 0.0) or 0.0)
        _set_result(slot.future, PointOutcome(value=value, host=host, elapsed=elapsed))

    def _lose(self, job: _ArrayJob, i: int, slot: _TaskSlot, reason: str) -> None:
        job.failed = True
        _set_exception(slot.future, WorkerLostError(f"slurm:{job.job_id}", reason))

    def _finalize_job(self, job: _ArrayJob) -> None:
        if self.keep_spool or job.failed:
            return  # keep failed-job spools around for post-mortems
        shutil.rmtree(job.dir, ignore_errors=True)

    def _cleanup_sweep_dir(self) -> None:
        if self._sweep_dir is None or self.keep_spool:
            return
        try:
            self._sweep_dir.rmdir()  # only if every job dir was cleaned up
        except OSError:
            pass


def _set_result(future: Future, outcome: PointOutcome) -> None:
    try:
        future.set_result(outcome)
    except InvalidStateError:
        pass  # the runner cancelled this point (sweep aborting)


def _set_exception(future: Future, exc: BaseException) -> None:
    try:
        future.set_exception(exc)
    except InvalidStateError:
        pass


