"""SLURM batch backend: submit grid points as array jobs at a federation site.

Real federation sites do not hand out interactive shells -- they take
work through a batch scheduler.  This backend turns the sweep's
cache-missing grid points into SLURM *array jobs*: points submitted
close together are batched into one job directory under a shared spool,
each point's wire job (the exact :func:`make_wire_job` format the SSH
backend ships) written to ``tasks/<i>.json``, and one ``sbatch`` script
whose array task ``i`` runs ``python -m repro.experiments.remote_worker``
with stdin/stdout redirected to ``tasks/<i>.json`` / ``results/<i>.json``.
The spool directory must be visible to both the submitting machine and
the compute nodes (home directories usually are).

All of that machinery -- spooling, linger batching, the poll loop with
its unknown/completed grace counters, the requeue taxonomy -- lives in
the scheduler-agnostic :class:`~repro.experiments.backends.batch.
BatchBackend`; this module contributes only SLURM's dialect: the
``sbatch`` script, the ``sacct``/``squeue`` conversation, and the state
vocabulary.

Scheduler interaction goes through a pluggable
:class:`SchedulerTransport`.  The default
:class:`SlurmCliTransport` shells out to ``sbatch``/``squeue``/``sacct``/
``scancel``; ``$REPRO_SLURM_COMMAND`` prefixes every invocation (like
``$REPRO_SSH_COMMAND`` for the SSH backend), which is how tests and CI
substitute a stub scheduler without a real SLURM installation.

Failure semantics follow the backend contract: an array task that ends
in a failed state (killed job, node failure, timeout) or vanishes from
the scheduler raises :class:`WorkerLostError`, so the runner requeues
the point -- resubmissions are batched into a fresh array job.  A point
*raising* inside the worker comes back in the envelope as a
deterministic :class:`RemotePointError` (not retryable), and the
code-hash handshake refuses results from out-of-sync checkouts exactly
as over SSH.
"""

from __future__ import annotations

import logging
import os
import re
import shlex
import subprocess
from pathlib import Path
from typing import Optional

from repro.experiments.backends.base import (
    BackendUnavailableError,
    WorkerLostError,
    tail_text as _tail,
)
from repro.experiments.backends.batch import (
    WORKER_MODULE as _WORKER_MODULE,
    BatchBackend,
    BatchTransport,
    expand_indices as _expand_indices,
    normalize_state as _normalize_state,
)
from repro.experiments.cache import default_cache_dir

__all__ = [
    "SchedulerTransport",
    "SlurmBackend",
    "SlurmCliTransport",
    "default_slurm_command",
    "default_spool_dir",
]

#: prefixes every scheduler command line (shlex-split), e.g. to substitute
#: a stub scheduler in tests/CI or to route through a login-node wrapper
_SLURM_COMMAND_ENV = "REPRO_SLURM_COMMAND"

#: overrides the default spool location
_SLURM_SPOOL_ENV = "REPRO_SLURM_SPOOL"

#: scheduler states that mean "the task can still produce a result"
ACTIVE_STATES = frozenset(
    {
        "PENDING",
        "RUNNING",
        "CONFIGURING",
        "COMPLETING",
        "SUSPENDED",
        "REQUEUED",
        "RESIZING",
        "STAGE_OUT",
    }
)

#: terminal states that mean "the task died without a result": retryable
LOST_STATES = frozenset(
    {
        "FAILED",
        "CANCELLED",
        "TIMEOUT",
        "NODE_FAIL",
        "OUT_OF_MEMORY",
        "PREEMPTED",
        "BOOT_FAIL",
        "DEADLINE",
        "REVOKED",
    }
)


def default_slurm_command() -> tuple:
    """The scheduler argv prefix: ``$REPRO_SLURM_COMMAND`` or nothing."""
    env = os.environ.get(_SLURM_COMMAND_ENV)
    if env:
        return tuple(shlex.split(env))
    return ()


def default_spool_dir() -> Path:
    """``$REPRO_SLURM_SPOOL`` or ``<cache dir>/slurm-spool`` (shared $HOME)."""
    env = os.environ.get(_SLURM_SPOOL_ENV)
    if env:
        return Path(env)
    return default_cache_dir() / "slurm-spool"


class SchedulerTransport(BatchTransport):
    """How the backend talks to a batch scheduler.  Stubbable in tests.

    The SLURM-flavoured name for the shared :class:`BatchTransport`
    protocol; ``spec`` in :meth:`submit` is the rendered ``sbatch``
    script.
    """


class SlurmCliTransport(SchedulerTransport):
    """The real thing: shell out to ``sbatch``/``squeue``/``sacct``/``scancel``."""

    def __init__(self, command_prefix: Optional[tuple] = None, timeout: float = 60.0) -> None:
        self.prefix = (
            tuple(command_prefix) if command_prefix is not None else default_slurm_command()
        )
        self.timeout = timeout

    def _argv(self, *args: str) -> list:
        return [*self.prefix, *args]

    def submit(self, job_dir: Path, spec: Path, n_tasks: int) -> str:
        argv = self._argv("sbatch", "--parsable", str(spec))
        try:
            proc = subprocess.run(argv, capture_output=True, timeout=self.timeout)
        except OSError as exc:
            raise BackendUnavailableError(
                f"cannot launch sbatch ({argv[0]!r}): {exc}"
            ) from None
        except subprocess.TimeoutExpired:
            # sbatch may have accepted the job without printing its id yet;
            # cancel by (unique) job name so the orphan cannot run the same
            # points the retry will resubmit
            self._cancel_by_script_name(spec)
            raise WorkerLostError("slurm", f"sbatch gave no job id within {self.timeout:g}s") from None
        if proc.returncode != 0:
            raise WorkerLostError(
                "slurm", f"sbatch exit {proc.returncode}: {_tail(proc.stderr)}"
            )
        # --parsable prints "jobid" or "jobid;cluster"
        job_id = proc.stdout.decode(errors="replace").strip().split(";")[0]
        if not job_id:
            raise WorkerLostError("slurm", "sbatch printed no job id")
        return job_id

    def poll(self, job_id: str) -> dict:
        states: dict = {}
        # sacct first (terminal states), squeue second so live queue state
        # wins for tasks both can see
        out = self._run_quiet(
            "sacct", "-n", "-P", "-X", "-j", job_id, "-o", "JobID,State"
        )
        if out is not None:
            states.update(_parse_sacct(out, job_id))
        out = self._run_quiet("squeue", "-h", "-j", job_id, "-o", "%K|%T")
        if out is not None:
            states.update(_parse_squeue(out))
        return states

    def _run_quiet(self, *args: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                self._argv(*args), capture_output=True, timeout=self.timeout
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            # e.g. squeue "Invalid job id" once the job left the queue
            return None
        return proc.stdout.decode(errors="replace")

    def cancel(self, target: str) -> None:
        try:
            subprocess.run(
                self._argv("scancel", target), capture_output=True, timeout=self.timeout
            )
        except (OSError, subprocess.TimeoutExpired):
            pass

    def _cancel_by_script_name(self, script: Path) -> None:
        """Best-effort scancel of a job whose id was never read."""
        try:
            text = Path(script).read_text(encoding="utf-8")
        except OSError:
            return
        match = re.search(r"^#SBATCH --job-name=(\S+)", text, re.MULTILINE)
        if match is None:
            return
        try:
            subprocess.run(
                self._argv("scancel", "--name", match.group(1)),
                capture_output=True,
                timeout=self.timeout,
            )
        except (OSError, subprocess.TimeoutExpired):
            pass


_log = logging.getLogger(__name__)

#: tokens already warned about -- scheduler output repeats every poll, the
#: warning must not
_warned_tokens: set = set()


def _expand_quiet(token: str) -> list:
    """Poll-path wrapper around the (loud) :func:`expand_indices`.

    The poll loop must never raise, but an unrecognized squeue/sacct
    token must not be *silent* either: it is logged once, and the empty
    expansion means "no state learned" -- the affected tasks keep their
    unknown-grace budget instead of being mis-marked.
    """
    try:
        return _expand_indices(token)
    except ValueError as exc:
        if token not in _warned_tokens:
            _warned_tokens.add(token)
            _log.warning("ignoring scheduler output: %s", exc)
        return []


def _parse_sacct(out: str, job_id: str) -> dict:
    """``sacct -n -P -X -o JobID,State`` lines -> {array index: STATE}."""
    states: dict = {}
    pattern = re.compile(rf"^{re.escape(job_id)}_(\d+|\[[\d,\-:%]+\])$")
    for line in out.splitlines():
        jid, _, state = line.strip().partition("|")
        match = pattern.match(jid)
        if not match or not state:
            continue
        token = match.group(1)
        normalized = _normalize_state(state)  # "CANCELLED by 0", "COMPLETED+"
        if not normalized:
            continue
        for idx in _expand_quiet(token):
            states[idx] = normalized
    return states


def _parse_squeue(out: str) -> dict:
    """``squeue -h -o "%K|%T"`` lines -> {array index: STATE}."""
    states: dict = {}
    for line in out.splitlines():
        token, _, state = line.strip().partition("|")
        if not token or not state:
            continue
        normalized = _normalize_state(state)
        if not normalized:
            continue
        for idx in _expand_quiet(token):
            states[idx] = normalized
    return states


class SlurmBackend(BatchBackend):
    """Batch cache-missing grid points into SLURM array jobs."""

    name = "slurm"
    task_noun = "array task"
    active_states = ACTIVE_STATES
    lost_states = LOST_STATES
    completed_states = frozenset({"COMPLETED"})

    def __init__(
        self,
        transport: Optional[SchedulerTransport] = None,
        spool: Optional[Path] = None,
        python: str = "python3",
        cwd: Optional[str] = None,
        pythonpath: Optional[str] = None,
        sbatch_options: tuple = (),
        batch_size: int = 500,
        linger: float = 0.2,
        poll_interval: float = 1.0,
        point_timeout: Optional[float] = None,
        unknown_grace: int = 10,
        completed_grace: int = 5,
        keep_spool: bool = False,
        verify_code: bool = True,
        checkpoint: Optional[dict] = None,
    ) -> None:
        super().__init__(
            transport=transport if transport is not None else SlurmCliTransport(),
            spool=spool if spool is not None else default_spool_dir(),
            python=python,
            cwd=cwd,
            pythonpath=pythonpath,
            batch_size=batch_size,
            linger=linger,
            poll_interval=poll_interval,
            point_timeout=point_timeout,
            unknown_grace=unknown_grace,
            completed_grace=completed_grace,
            keep_spool=keep_spool,
            verify_code=verify_code,
            checkpoint=checkpoint,
        )
        self.sbatch_options = tuple(sbatch_options)

    # -- BatchBackend hooks ----------------------------------------------

    def _write_submission(self, job_dir: Path, n_tasks: int) -> Path:
        script = job_dir / "job.sh"
        script.write_text(self._render_script(job_dir, n_tasks), encoding="utf-8")
        return script

    def _cancel_target(self, job_id: str, index: int) -> str:
        return f"{job_id}_{index}"

    def _render_script(self, job_dir: Path, n_tasks: int) -> str:
        lines = [
            "#!/bin/bash",
            # unique name: lets a submission whose id was lost (sbatch
            # timeout) still be cancelled via `scancel --name`
            f"#SBATCH --job-name=hc3i-{job_dir.parent.name}-{job_dir.name}",
            f"#SBATCH --array=0-{n_tasks - 1}",
            f"#SBATCH --output={job_dir / 'logs'}/%a.log",
        ]
        lines.extend(f"#SBATCH {opt}" for opt in self.sbatch_options)
        lines.append("set -u")
        if self.cwd:
            lines.append(f"cd {shlex.quote(self.cwd)}")
        if self.pythonpath:
            lines.append(
                f"export PYTHONPATH={shlex.quote(self.pythonpath)}"
                + "${PYTHONPATH:+:$PYTHONPATH}"
            )
        quoted = shlex.quote(str(job_dir))
        lines.append(f'task={quoted}/tasks/"$SLURM_ARRAY_TASK_ID".json')
        lines.append(f'out={quoted}/results/"$SLURM_ARRAY_TASK_ID".json')
        # write-then-rename: a result file is complete the instant it exists
        lines.append(
            f'{shlex.quote(self.python)} -m {_WORKER_MODULE} '
            '< "$task" > "$out.tmp" && mv "$out.tmp" "$out"'
        )
        return "\n".join(lines) + "\n"
