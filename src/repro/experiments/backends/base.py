"""Execution-backend protocol for the sweep engine.

The paper's setting is a *cluster federation*: loosely-coupled clusters
whose resources are aggregated over WAN links.  The sweep engine mirrors
that shape.  A grid point is a :class:`PointTask` -- experiment name +
canonical-JSON params + the local point callable -- and because the
params dict fully determines the simulation (seed included), a task can
execute *anywhere*: in this process, in a local process pool, or on a
remote host reached over SSH.  A :class:`Backend` is the "where".

The contract is deliberately narrow:

* ``submit(task) -> concurrent.futures.Future[PointOutcome]`` -- schedule
  one task; the future resolves to the point's value plus the host that
  computed it.
* ``map_grid(tasks) -> list[PointOutcome]`` -- convenience fan-out in
  task order, no retry (the runner layers retry/reassignment on top of
  ``submit``).
* ``shutdown()`` -- release pools/connections; backends are context
  managers.

Failure semantics split in two, and the split is what makes retry safe:

* :class:`WorkerLostError` -- the *worker* died (SSH transport failure,
  crashed pool process, killed host).  The task itself is fine; the
  runner puts it back in the queue and the backend stops assigning work
  to the dead host.  Retryable.
* Any other exception out of ``future.result()`` -- the *point function*
  raised.  Re-running it elsewhere would fail identically (points are
  deterministic), so this propagates and aborts the sweep.  Not
  retryable.
"""

from __future__ import annotations

import abc
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = [
    "Backend",
    "BackendUnavailableError",
    "PointOutcome",
    "PointTask",
    "RemoteCodeMismatchError",
    "RemotePointError",
    "WorkerLostError",
]


@dataclass(frozen=True)
class PointTask:
    """One schedulable grid point.

    ``experiment`` + ``params`` are the location-independent description
    (what a remote worker needs); ``fn`` is the already-resolved local
    callable (what in-process backends call directly).
    """

    experiment: str
    params: dict
    fn: Callable[[dict], object]


@dataclass(frozen=True)
class PointOutcome:
    """A completed point: its value plus execution provenance."""

    value: object
    host: str
    elapsed: float = 0.0


class WorkerLostError(RuntimeError):
    """A worker/host died while (or before) executing a task.

    Retryable: the task is unharmed and can be reassigned.  ``host`` is
    the casualty so accounting and host-retirement know whom to blame.
    """

    def __init__(self, host: str, reason: str = "") -> None:
        self.host = host
        self.reason = reason
        super().__init__(f"worker lost on host {host!r}" + (f": {reason}" if reason else ""))


class BackendUnavailableError(RuntimeError):
    """No live workers remain; retrying cannot help.  Aborts the sweep."""


class RemotePointError(RuntimeError):
    """The point function raised *on the remote host*.

    Points are deterministic, so this would fail identically anywhere:
    not retryable.  Carries the remote traceback for diagnosis.
    """

    def __init__(self, host: str, error: str, remote_traceback: str = "") -> None:
        self.host = host
        self.remote_traceback = remote_traceback
        detail = f"point failed on host {host!r}: {error}"
        if remote_traceback:
            detail += f"\n--- remote traceback ---\n{remote_traceback}"
        super().__init__(detail)


class RemoteCodeMismatchError(RuntimeError):
    """The remote host runs different ``repro`` sources than we do.

    Results are cached under the *local* code-version hash, so accepting
    a value computed by different code would poison the cache.  Fail
    loudly instead.
    """

    def __init__(self, host: str, local_hash: str, remote_hash: str) -> None:
        self.host = host
        super().__init__(
            f"host {host!r} runs different repro sources "
            f"(local code hash {local_hash[:12]}..., remote {remote_hash[:12]}...); "
            "sync the repo on that host before sweeping"
        )


class Backend(abc.ABC):
    """Where grid points execute.  See the module docstring for the contract."""

    #: short identifier used in reports and the CLI (``--backend NAME``)
    name: str = "?"

    @abc.abstractmethod
    def submit(self, task: PointTask) -> "Future[PointOutcome]":
        """Schedule one task; the future resolves to a :class:`PointOutcome`."""

    def prepare(self, n_tasks: int) -> None:
        """Optional hint: about this many tasks are coming.

        Lets pooled backends size themselves to the actual fan-out (e.g.
        not spawning eight processes for one cache-missing point).  No-op
        by default.
        """

    def flush(self) -> None:
        """Optional hint: no more submissions are imminent.

        Batching backends (SLURM array jobs) buffer submitted tasks
        briefly to group them into one scheduler job; the runner calls
        this after each submission burst so buffered tasks are dispatched
        immediately instead of waiting out the linger window.  No-op by
        default.
        """

    def map_grid(self, tasks: Iterable[PointTask]) -> list:
        """Run every task, returning outcomes in task order (no retry)."""
        futures = [self.submit(task) for task in tasks]
        self.flush()
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        """Release worker pools/connections.  Idempotent."""

    def hosts(self) -> list:
        """Names of hosts this backend can currently assign work to."""
        return []

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


@dataclass
class _HostState:
    """Shared bookkeeping for backends that juggle multiple hosts."""

    name: str
    slots: int = 1
    free: int = 0
    alive: bool = True
    strikes: int = 0
    extra: dict = field(default_factory=dict)


def resolve_future(future: Future, compute: Callable[[], PointOutcome]) -> None:
    """Run ``compute`` and store its outcome (or exception) on ``future``."""
    try:
        outcome = compute()
    except BaseException as exc:  # noqa: BLE001 - forwarded to the caller
        future.set_exception(exc)
    else:
        future.set_result(outcome)


def tail_text(blob: bytes, limit: int = 300) -> str:
    """The last ``limit`` characters of a subprocess stream, for error messages."""
    text = blob.decode(errors="replace").strip()
    return text[-limit:] if len(text) > limit else text
