"""Availability under increasing failure rates (HC3I vs baselines).

The paper evaluates overhead in failure-free runs and argues about
rollback scope qualitatively.  This sweep quantifies the end-to-end
consequence: for a range of federation MTBFs, how much useful work
survives?

``goodput`` here is ``1 - lost_node_seconds / total_node_seconds``: the
fraction of computed node-time that was never rolled back.  HC3I's small
rollback scope (sender logs!) should keep goodput high where the global
and independent baselines degrade.

Goodput can go *negative*: when the failure inter-arrival time drops below
the typical rollback depth, the same wall-clock interval is rolled back
and re-executed repeatedly, so cumulative lost work exceeds the total
node-time budget -- utilization collapse, exactly what a checkpoint
interval mis-tuned against the MTBF looks like (§5.2's advice: set the
CLC timer "much smaller than the MTBF").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.app.workloads import table1_workload
from repro.cluster.federation import Federation
from repro.config.timers import HOUR, MINUTE
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import Experiment, register
from repro.sim.trace import TraceLevel

__all__ = ["mtbf_sweep"]

DEFAULT_MTBFS = [4 * HOUR, 2 * HOUR, HOUR, HOUR / 2]
DEFAULT_PROTOCOLS = ("hc3i", "global-coordinated", "pessimistic-log")


def _grid(
    mtbfs: Optional[Sequence[float]] = None,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    nodes: int = 10,
    total_time: float = 8 * HOUR,
    clc_period: float = 20 * MINUTE,
    seed: int = 42,
) -> list:
    mtbfs = list(mtbfs or DEFAULT_MTBFS)
    return [
        {
            "protocol": protocol,
            "mtbf": mtbf,
            "nodes": nodes,
            "total_time": total_time,
            "clc_period": clc_period,
            "seed": seed,
        }
        for protocol in protocols
        for mtbf in mtbfs
    ]


def _point(params: dict) -> dict:
    topology, application, timers = table1_workload(
        nodes=params["nodes"],
        total_time=params["total_time"],
        clc_period_0=params["clc_period"],
        clc_period_1=params["clc_period"],
        messages_1_to_0=103,
    )
    topology.mtbf = params["mtbf"]
    fed = Federation(
        topology,
        application,
        timers,
        protocol=params["protocol"],
        seed=params["seed"],
        trace_level=TraceLevel.PROTOCOL,
    )
    results = fed.run()
    lost = results.stats.get("rollback/lost_work", {})
    return {
        "failures": results.counter("failures/injected"),
        "lost_total": lost["total"] if isinstance(lost, dict) else 0.0,
        "node_seconds": topology.total_nodes * params["total_time"],
    }


def _reduce(grid: list, points: list) -> ExperimentResult:
    rows = []
    for params, point in zip(grid, points):
        goodput = 1.0 - point["lost_total"] / point["node_seconds"]
        rows.append(
            (
                params["protocol"],
                f"{params['mtbf'] / HOUR:g}h",
                point["failures"],
                round(point["lost_total"], 0),
                round(goodput, 4),
            )
        )
    nodes = grid[0]["nodes"]
    total_time = grid[0]["total_time"]
    return ExperimentResult(
        name="MTBF sweep -- surviving work under increasing failure rates",
        description=(
            "Goodput = 1 - lost node-seconds / total node-seconds; "
            f"{nodes}-node clusters, {total_time / HOUR:g}h application, "
            "MTBF-driven single faults."
        ),
        headers=["protocol", "MTBF", "failures", "lost node-s", "goodput"],
        rows=rows,
        paper={
            "expectation": "HC3I's bounded rollback scope keeps goodput "
            "above the whole-federation rollback of global coordination"
        },
    )


EXPERIMENT = register(
    Experiment(
        name="mtbf",
        title="MTBF sweep -- goodput vs failure rate, HC3I vs baselines",
        artifact="§6 extension",
        grid=_grid,
        point=_point,
        reduce=_reduce,
        scaled=False,
    )
)


def mtbf_sweep(
    mtbfs: Optional[Sequence[float]] = None,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    nodes: int = 10,
    total_time: float = 8 * HOUR,
    clc_period: float = 20 * MINUTE,
    seed: int = 42,
) -> ExperimentResult:
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        EXPERIMENT,
        mtbfs=list(mtbfs) if mtbfs is not None else None,
        protocols=list(protocols),
        nodes=nodes,
        total_time=total_time,
        clc_period=clc_period,
        seed=seed,
    )
