"""Figure 9: communication patterns -- increasing the 1->0 message flow.

Setup (§5.3): both CLC timers at 30 minutes; the number of messages from
cluster 1 to cluster 0 swept along the x axis (10..110).  Paper claim:
"The number of forced CLCs increases fast with the number of messages from
cluster 1 to cluster 0.  If the two clusters communicate a lot in both
ways, SNs will grow very fast and most of the messages will induce a forced
CLC.  The overhead of our protocol will not be good in that case."
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.app.workloads import TOTAL_TIME, fig9_workload
from repro.config.timers import MINUTE
from repro.experiments.common import ExperimentResult, run_federation
from repro.experiments.registry import Experiment, register

__all__ = ["communication_pattern_sweep", "DEFAULT_MESSAGE_COUNTS"]

DEFAULT_MESSAGE_COUNTS = [10, 30, 50, 70, 90, 110]


def _grid(
    message_counts: Optional[Sequence[int]] = None,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    clc_period_min: float = 30.0,
    seed: int = 42,
    protocol: str = "hc3i",
) -> list:
    return [
        {
            "messages_1_to_0": target,
            "nodes": nodes,
            "total_time": total_time,
            "clc_period_min": clc_period_min,
            "seed": seed,
            "protocol": protocol,
        }
        for target in (message_counts or DEFAULT_MESSAGE_COUNTS)
    ]


def _point(params: dict) -> dict:
    topology, application, timers = fig9_workload(
        messages_1_to_0=params["messages_1_to_0"],
        nodes=params["nodes"],
        total_time=params["total_time"],
        clc_period=params["clc_period_min"] * MINUTE,
    )
    _fed, results = run_federation(
        topology,
        application,
        timers,
        protocol=params["protocol"],
        seed=params["seed"],
    )
    return {
        "c0": results.clc_counts(0),
        "c1": results.clc_counts(1),
        "msgs_1_to_0": results.app_messages(1, 0),
    }


def _reduce(grid: list, points: list) -> ExperimentResult:
    series: dict = {
        "c0 total": [],
        "c0 forced": [],
        "c1 total": [],
        "c1 forced": [],
        "msgs 1->0": [],
    }
    for point in points:
        series["c0 total"].append(point["c0"]["total"])
        series["c0 forced"].append(point["c0"]["forced"])
        series["c1 total"].append(point["c1"]["total"])
        series["c1 forced"].append(point["c1"]["forced"])
        series["msgs 1->0"].append(point["msgs_1_to_0"])
    return ExperimentResult(
        name="Figure 9 -- Increasing communication from cluster 1 to cluster 0",
        description=(
            "Committed CLCs vs the number of 1->0 messages (both CLC timers "
            f"at {grid[0]['clc_period_min']:g} min)."
        ),
        x_label="target msgs 1->0",
        xs=[params["messages_1_to_0"] for params in grid],
        series=series,
        paper={
            "c0_forced": "grows fast with the 1->0 message count",
            "c1_forced": "grows as well (bidirectional SN growth)",
        },
    )


EXPERIMENT = register(
    Experiment(
        name="fig9",
        title="Figure 9 -- communication pattern sweep (§5.3)",
        artifact="Figure 9",
        grid=_grid,
        point=_point,
        reduce=_reduce,
    )
)


def communication_pattern_sweep(
    message_counts: Optional[Sequence[int]] = None,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    clc_period_min: float = 30.0,
    seed: int = 42,
    protocol: str = "hc3i",
) -> ExperimentResult:
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        EXPERIMENT,
        message_counts=list(message_counts) if message_counts is not None else None,
        nodes=nodes,
        total_time=total_time,
        clc_period_min=clc_period_min,
        seed=seed,
        protocol=protocol,
    )
