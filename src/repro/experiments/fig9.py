"""Figure 9: communication patterns -- increasing the 1->0 message flow.

Setup (§5.3): both CLC timers at 30 minutes; the number of messages from
cluster 1 to cluster 0 swept along the x axis (10..110).  Paper claim:
"The number of forced CLCs increases fast with the number of messages from
cluster 1 to cluster 0.  If the two clusters communicate a lot in both
ways, SNs will grow very fast and most of the messages will induce a forced
CLC.  The overhead of our protocol will not be good in that case."
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.app.workloads import TOTAL_TIME, fig9_workload
from repro.config.timers import MINUTE
from repro.experiments.common import ExperimentResult, run_federation

__all__ = ["communication_pattern_sweep", "DEFAULT_MESSAGE_COUNTS"]

DEFAULT_MESSAGE_COUNTS = [10, 30, 50, 70, 90, 110]


def communication_pattern_sweep(
    message_counts: Optional[Sequence[int]] = None,
    nodes: int = 100,
    total_time: float = TOTAL_TIME,
    clc_period_min: float = 30.0,
    seed: int = 42,
    protocol: str = "hc3i",
) -> ExperimentResult:
    counts = list(message_counts or DEFAULT_MESSAGE_COUNTS)
    series: dict = {
        "c0 total": [],
        "c0 forced": [],
        "c1 total": [],
        "c1 forced": [],
        "msgs 1->0": [],
    }
    runs = []
    for target in counts:
        topology, application, timers = fig9_workload(
            messages_1_to_0=target,
            nodes=nodes,
            total_time=total_time,
            clc_period=clc_period_min * MINUTE,
        )
        _fed, results = run_federation(
            topology, application, timers, protocol=protocol, seed=seed
        )
        c0 = results.clc_counts(0)
        c1 = results.clc_counts(1)
        series["c0 total"].append(c0["total"])
        series["c0 forced"].append(c0["forced"])
        series["c1 total"].append(c1["total"])
        series["c1 forced"].append(c1["forced"])
        series["msgs 1->0"].append(results.app_messages(1, 0))
        runs.append(results)
    return ExperimentResult(
        name="Figure 9 -- Increasing communication from cluster 1 to cluster 0",
        description=(
            "Committed CLCs vs the number of 1->0 messages (both CLC timers "
            f"at {clc_period_min:g} min)."
        ),
        x_label="target msgs 1->0",
        xs=counts,
        series=series,
        paper={
            "c0_forced": "grows fast with the 1->0 message count",
            "c1_forced": "grows as well (bidirectional SN growth)",
        },
        runs=runs,
    )
