"""Stdin/stdout worker for the SSH backend: run one grid point, emit JSON.

Invoked on a remote host as::

    python -m repro.experiments.remote_worker

with one JSON job object on stdin::

    {"experiment": "fig8", "params": {...}, "code_hash": "<submitter's hash>"}

and exactly one JSON envelope on stdout.  Success::

    {"ok": true, "code_hash": "<this host's hash>",
     "elapsed": 1.23, "pickle": "<base64 pickled point value>"}

The value travels pickled (base64 inside the JSON envelope) so the
submitter receives *exactly* the object the point produced -- a plain
JSON body would silently turn tuples into lists and break byte-identical
caching.  Point failure::

    {"ok": false, "error": "...", "traceback": "..."}

with exit status 0: a deterministic point raising is a *point* error the
submitter must not retry.  Transport-level death (import failure, kill,
connection drop) surfaces as a non-zero exit / truncated stream, which
the SSH backend maps to a retryable worker loss.

The worker never touches the result cache -- caching is the submitter's
job, keyed by the submitter's code hash.  ``code_hash`` lets the backend
refuse results computed by out-of-sync sources (see
:class:`repro.experiments.backends.base.RemoteCodeMismatchError`).
Stray prints from experiment code are redirected to stderr so the
envelope stays parseable.
"""

from __future__ import annotations

import base64
import contextlib
import json
import pickle
import sys
import time
import traceback
from typing import Optional

from repro.experiments import registry
from repro.experiments.cache import code_version_hash

__all__ = ["main", "run_job"]


def run_job(job: dict) -> dict:
    """Execute one job dict and return the response envelope (pure)."""
    try:
        # the redirect covers registry.get too: load_all() imports every
        # experiment module, and import-time prints must not corrupt the
        # stdout protocol stream any more than point-time prints
        with contextlib.redirect_stdout(sys.stderr):
            experiment = registry.get(str(job["experiment"]))
            params = registry.canonical_params(job["params"])
            start = time.perf_counter()
            value = experiment.point(params)
            elapsed = time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - reported in the envelope
        return {
            "ok": False,
            # the hash lets the submitter distinguish "this point is broken"
            # from "this host runs stale sources where it never existed"
            "code_hash": code_version_hash(),
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    return {
        "ok": True,
        "code_hash": code_version_hash(),
        "elapsed": elapsed,
        "pickle": base64.b64encode(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
    }


def main(argv: Optional[list] = None) -> int:
    try:
        job = json.load(sys.stdin)
    except json.JSONDecodeError as exc:
        json.dump({"ok": False, "error": f"bad job JSON: {exc}", "traceback": ""}, sys.stdout)
        sys.stdout.write("\n")
        return 0
    json.dump(run_job(job), sys.stdout)
    sys.stdout.write("\n")
    sys.stdout.flush()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
