"""Stdin/stdout worker for the distributed backends: run one grid point, emit JSON.

This module *owns the wire format* shared by every distributed backend:
the SSH backend pipes a job over ``ssh <host> python -m
repro.experiments.remote_worker``; the SLURM backend writes the same job
to a spool file and an array task runs the same command with stdin/stdout
redirected.  Build jobs with :func:`make_wire_job` and interpret
responses with :func:`decode_envelope` so every backend applies the same
code-hash handshake and failure taxonomy.

A job is one JSON object::

    {"experiment": "fig8", "params": {...}, "code_hash": "<submitter's hash>"}

and the response is exactly one JSON envelope.  Success::

    {"ok": true, "code_hash": "<this host's hash>",
     "elapsed": 1.23, "pickle": "<base64 pickled point value>"}

The value travels pickled (base64 inside the JSON envelope) so the
submitter receives *exactly* the object the point produced -- a plain
JSON body would silently turn tuples into lists and break byte-identical
caching.  Point failure::

    {"ok": false, "error": "...", "traceback": "..."}

with exit status 0: a deterministic point raising is a *point* error the
submitter must not retry.  Transport-level death (import failure, kill,
connection drop) surfaces as a non-zero exit / truncated stream, which
the SSH backend maps to a retryable worker loss.

The worker never touches the result cache -- caching is the submitter's
job, keyed by the submitter's code hash.  ``code_hash`` lets the backend
refuse results computed by out-of-sync sources (see
:class:`repro.experiments.backends.base.RemoteCodeMismatchError`).
Stray prints from experiment code are redirected to stderr so the
envelope stays parseable.
"""

from __future__ import annotations

import base64
import contextlib
import json
import pickle
import sys
import time
import traceback
from typing import Optional

from repro.experiments import checkpoint, registry
from repro.experiments.cache import code_version_hash

__all__ = ["decode_envelope", "main", "make_wire_job", "run_job"]


def make_wire_job(
    experiment: str, params: dict, checkpoint: Optional[dict] = None
) -> dict:
    """The self-contained job object a worker consumes, handshake included.

    ``checkpoint`` (optional -- jobs without it are byte-identical to the
    old format) is the snapshot ref a requeued point ships: the policy
    dict (``every``/``wall``/``dir``/``key``) under which the worker runs
    the point via :func:`repro.experiments.checkpoint.run_point`, resuming
    from the latest envelope at that key if one exists.
    """
    wire = {
        "experiment": experiment,
        "params": params,
        "code_hash": code_version_hash(),
    }
    if checkpoint is not None:
        wire["checkpoint"] = checkpoint
    return wire


def decode_envelope(envelope: dict, host: str, verify_code: bool = True):
    """Interpret one response envelope; returns the point value.

    Applies the shared failure taxonomy: code skew raises
    :class:`~repro.experiments.backends.base.RemoteCodeMismatchError`
    (checked *before* ``ok`` -- a stale host's point error is really a
    sync problem), a reported point failure raises
    :class:`~repro.experiments.backends.base.RemotePointError` (not
    retryable), and an undecodable payload raises
    :class:`~repro.experiments.backends.base.WorkerLostError` (retryable
    transport damage).
    """
    from repro.experiments.backends.base import (
        RemoteCodeMismatchError,
        RemotePointError,
        WorkerLostError,
    )

    if verify_code and "code_hash" in envelope:
        local, remote = code_version_hash(), str(envelope["code_hash"])
        if remote != local:
            raise RemoteCodeMismatchError(host, local, remote)
    if not envelope.get("ok"):
        raise RemotePointError(
            host,
            str(envelope.get("error", "unknown error")),
            str(envelope.get("traceback", "")),
        )
    if verify_code and "code_hash" not in envelope:
        raise RemoteCodeMismatchError(host, code_version_hash(), "(missing)")
    try:
        return pickle.loads(base64.b64decode(envelope["pickle"]))
    except Exception as exc:  # noqa: BLE001 - any decode failure is transport-level
        raise WorkerLostError(host, f"undecodable result payload: {exc}") from None


def run_job(job: dict) -> dict:
    """Execute one job dict and return the response envelope (pure)."""
    try:
        # the redirect covers registry.get too: load_all() imports every
        # experiment module, and import-time prints must not corrupt the
        # stdout protocol stream any more than point-time prints
        with contextlib.redirect_stdout(sys.stderr):
            experiment = registry.get(str(job["experiment"]))
            params = registry.canonical_params(job["params"])
            start = time.perf_counter()
            # Checkpoint policy: the wire field if the submitter sent one,
            # otherwise whatever $REPRO_CHECKPOINT_* says on this host.
            value = checkpoint.run_point(
                experiment.point,
                params,
                experiment=str(job["experiment"]),
                wire=job.get("checkpoint"),
            )
            elapsed = time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - reported in the envelope
        return {
            "ok": False,
            # the hash lets the submitter distinguish "this point is broken"
            # from "this host runs stale sources where it never existed"
            "code_hash": code_version_hash(),
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    return {
        "ok": True,
        "code_hash": code_version_hash(),
        "elapsed": elapsed,
        "pickle": base64.b64encode(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
    }


def main(argv: Optional[list] = None) -> int:
    try:
        job = json.load(sys.stdin)
    except json.JSONDecodeError as exc:
        json.dump({"ok": False, "error": f"bad job JSON: {exc}", "traceback": ""}, sys.stdout)
        sys.stdout.write("\n")
        return 0
    json.dump(run_job(job), sys.stdout)
    sys.stdout.write("\n")
    sys.stdout.flush()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    raise SystemExit(main())
