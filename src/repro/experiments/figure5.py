"""The Figure 5 worked example as an executable scenario.

Three clusters; deterministic (scripted) sends; a fault in the middle
cluster.  The script mirrors the paper's §4 narrative (clusters renumbered
0..2 for code, paper uses 1..3):

====  =====  ============================  ===============================
time  event  paper                         expected protocol reaction
====  =====  ============================  ===============================
0     init   first CLC everywhere          SN=1 in every cluster
10    m1     C0 -> C1 (SN 1)               forced CLC in C1 (SN 2), ack 2
20    m2     C0 -> C1 (SN 1)               no forced CLC, ack 3
30    clc    unforced CLC in C1            C1 SN 3
40    m3     C1 -> C2 (SN 3)               forced CLC in C2 (SN 2), ack 2
50    clc    unforced CLC in C1            C1 SN 4
60    m4     C1 -> C2 (SN 4)               forced CLC in C2 (SN 3), ack 3
70    m5     C2 -> C0 (SN 3)               forced CLC in C0 (SN 2), ack 2
80    fault  node crash in C1              C1 rolls to SN 4, alert(4);
                                           C2 rolls to SN 3 (m4's forced
                                           CLC), alert(3); C0 rolls to SN 2
                                           (m5's forced CLC), alert(2);
                                           nobody rolls further
====  =====  ============================  ===============================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.app.process import scripted_sender_factory
from repro.cluster.federation import Federation
from repro.config.application import ApplicationConfig, ClusterAppSpec
from repro.config.timers import TimersConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import Experiment, register
from repro.network.message import NodeId
from repro.network.topology import ClusterSpec, Topology
from repro.sim.trace import TraceLevel

__all__ = ["Figure5Outcome", "figure5_scenario"]


@dataclass
class Figure5Outcome:
    """Everything the worked example lets us assert on."""

    pre_fault_sns: list = field(default_factory=list)
    pre_fault_ddvs: list = field(default_factory=list)
    pre_fault_forced: list = field(default_factory=list)
    acks: dict = field(default_factory=dict)          # label -> ack SN
    post_fault_sns: list = field(default_factory=list)
    rollbacks: list = field(default_factory=list)     # (cluster, to_sn) in order
    alerts: list = field(default_factory=list)        # (faulty, sn) in order
    replays: int = 0
    federation: Federation = None


def figure5_scenario(
    seed: int = 0,
    nodes_per_cluster: int = 2,
    protocol_options: dict | None = None,
) -> Figure5Outcome:
    """Run the worked example; returns the recorded outcome.

    ``protocol_options`` lets the same scenario run under variants (e.g.
    ``{"mode": "ddv"}``): for this communication pattern the rollback
    cascade is identical, only the recorded DDVs grow extra entries.
    """
    topology = Topology(
        clusters=[ClusterSpec(f"c{i}", nodes_per_cluster) for i in range(3)],
    )
    # The application model is irrelevant here (scripted senders), but the
    # config must exist and bound the run time.
    application = ApplicationConfig(
        clusters=[ClusterAppSpec(mean_compute=1e9) for _ in range(3)],
        total_time=200.0,
    )
    timers = TimersConfig(
        clc_periods=[None, None, None],
        failure_detection_delay=1.0,
        checkpoint_restore_time=0.5,
        node_repair_time=2.0,
    )
    size = 1024
    scripts = {
        NodeId(0, nodes_per_cluster - 1): [
            (10.0, NodeId(1, nodes_per_cluster - 1), size),   # m1
            (20.0, NodeId(1, nodes_per_cluster - 1), size),   # m2
        ],
        NodeId(1, nodes_per_cluster - 1): [
            (40.0, NodeId(2, nodes_per_cluster - 1), size),   # m3
            (60.0, NodeId(2, nodes_per_cluster - 1), size),   # m4
        ],
        NodeId(2, nodes_per_cluster - 1): [
            (70.0, NodeId(0, nodes_per_cluster - 1), size),   # m5
        ],
    }
    fed = Federation(
        topology,
        application,
        timers,
        protocol="hc3i",
        protocol_options=protocol_options,
        seed=seed,
        trace_level=TraceLevel.MESSAGE,
        app_factory=scripted_sender_factory(scripts),
    )
    fed.start()
    # Unforced CLCs in cluster 1 at t=30 and t=50 (the paper's timer CLCs).
    fed.sim.schedule_at(30.0, fed.protocol.request_checkpoint, 1)
    fed.sim.schedule_at(50.0, fed.protocol.request_checkpoint, 1)

    outcome = Figure5Outcome(federation=fed)

    # Phase 1: run just past m5 and snapshot the pre-fault state.
    # (fed.run, not fed.sim.run, so sweep checkpointing can slice it.)
    fed.run(until=75.0)
    for cs in fed.protocol.cluster_states:
        outcome.pre_fault_sns.append(cs.sn)
        outcome.pre_fault_ddvs.append(cs.ddv_tuple())
    for c in range(3):
        outcome.pre_fault_forced.append(fed.results().clc_counts(c)["forced"])

    # Ack bookkeeping: label messages m1..m5 in send order per flow.
    logs = fed.protocol.cluster_states
    c0_entries = sorted(logs[0].sent_log, key=lambda e: e.msg.msg_id)
    c1_entries = sorted(logs[1].sent_log, key=lambda e: e.msg.msg_id)
    c2_entries = sorted(logs[2].sent_log, key=lambda e: e.msg.msg_id)
    for label, entry in zip(("m1", "m2"), c0_entries):
        outcome.acks[label] = entry.ack_sn
    for label, entry in zip(("m3", "m4"), c1_entries):
        outcome.acks[label] = entry.ack_sn
    for label, entry in zip(("m5",), c2_entries):
        outcome.acks[label] = entry.ack_sn

    # Phase 2: the fault in (paper) cluster 2 == index 1.
    fed.inject_failure(NodeId(1, nodes_per_cluster - 1))
    fed.run(until=200.0)

    for cs in fed.protocol.cluster_states:
        outcome.post_fault_sns.append(cs.sn)
    for record in fed.tracer.find("rollback"):
        outcome.rollbacks.append((record["cluster"], record["to_sn"]))
    for record in fed.tracer.find("alert_received"):
        pair = (record["faulty"], record["sn"])
        if pair not in outcome.alerts:
            outcome.alerts.append(pair)
    outcome.replays = fed.results().counter("rollback/replays")
    return outcome


# --------------------------------------------------------------------------
# sweep-engine registration: the worked example as a one-point grid


def _grid(seed: int = 0, nodes_per_cluster: int = 2) -> list:
    return [{"seed": seed, "nodes_per_cluster": nodes_per_cluster}]


def _point(params: dict) -> dict:
    """Run the worked example and keep only the picklable summary."""
    outcome = figure5_scenario(
        seed=params["seed"], nodes_per_cluster=params["nodes_per_cluster"]
    )
    return {
        "pre_fault_sns": list(outcome.pre_fault_sns),
        "pre_fault_forced": list(outcome.pre_fault_forced),
        "acks": dict(outcome.acks),
        "post_fault_sns": list(outcome.post_fault_sns),
        "rollbacks": [list(r) for r in outcome.rollbacks],
        "alerts": [list(a) for a in outcome.alerts],
        "replays": outcome.replays,
    }


def _reduce(grid: list, points: list) -> ExperimentResult:
    point = points[0]
    rows = [
        ("pre-fault SNs", str(point["pre_fault_sns"])),
        ("pre-fault forced CLCs", str(point["pre_fault_forced"])),
        ("acks (m1..m5)", str(point["acks"])),
        ("post-fault SNs", str(point["post_fault_sns"])),
        ("rollbacks (cluster, to SN)", str(point["rollbacks"])),
        ("alerts (faulty, SN)", str(point["alerts"])),
        ("replays", point["replays"]),
    ]
    return ExperimentResult(
        name="Figure 5 -- worked example (§4)",
        description=(
            "Three clusters, scripted sends m1..m5, one fault in the middle "
            "cluster; the rollback cascade must stop after one hop per "
            "neighbour."
        ),
        headers=["quantity", "value"],
        rows=rows,
        paper={
            "rollbacks": "C1 to SN 4, C2 to SN 3, C0 to SN 2; nobody further"
        },
    )


EXPERIMENT = register(
    Experiment(
        name="figure5",
        title="Figure 5 -- §4 worked example as an executable scenario",
        artifact="Figure 5",
        grid=_grid,
        point=_point,
        reduce=_reduce,
        scaled=False,
    )
)
