"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.reporting import format_series, format_table
from repro.cluster.federation import Federation
from repro.sim.trace import TraceLevel

__all__ = ["ExperimentResult", "run_federation"]


def run_federation(
    topology,
    application,
    timers,
    protocol: str = "hc3i",
    protocol_options: Optional[dict] = None,
    seed: int = 0,
    trace_level: TraceLevel = TraceLevel.NONE,
    app_factory=None,
    until: Optional[float] = None,
) -> tuple:
    """Build and run one federation; returns ``(federation, results)``."""
    fed = Federation(
        topology,
        application,
        timers,
        protocol=protocol,
        protocol_options=protocol_options,
        seed=seed,
        trace_level=trace_level,
        app_factory=app_factory,
    )
    results = fed.run(until=until)
    return fed, results


@dataclass
class ExperimentResult:
    """Uniform container every experiment returns.

    ``rows``/``headers`` hold table-style output; sweep experiments fill
    ``xs``/``series`` instead (or additionally).  ``paper`` records the
    reference values/claims from the publication so EXPERIMENTS.md and the
    bench output can show paper-vs-measured side by side.

    Everything here is plain data (scalars, strings, lists) so results
    pickle cleanly through the sweep cache and across worker processes.
    """

    name: str
    description: str
    headers: list = field(default_factory=list)
    rows: list = field(default_factory=list)
    x_label: str = ""
    xs: list = field(default_factory=list)
    series: dict = field(default_factory=dict)
    paper: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)

    def render(self) -> str:
        parts = [f"== {self.name} ==", self.description]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.series:
            parts.append(format_series(self.x_label, self.xs, self.series))
        if self.paper:
            parts.append("paper reference: " + ", ".join(
                f"{k}={v}" for k, v in self.paper.items()
            ))
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(str(p) for p in parts)

    def series_list(self, name: str) -> list:
        return list(self.series[name])
