"""Paper experiments: one module per table/figure of §5.

Every experiment function is pure configuration + execution: it builds the
calibrated workload, runs the federation, and returns an
:class:`~repro.experiments.common.ExperimentResult` whose ``render()``
prints the same rows/series the paper reports, with the paper's reference
values alongside.  The benchmark harness under ``benchmarks/`` wraps these
one-to-one.

All experiments accept ``nodes`` and ``total_time`` so tests can exercise
them at reduced scale; defaults reproduce the paper (100 nodes per cluster,
10-hour application).
"""

from repro.experiments.common import ExperimentResult, run_federation
from repro.experiments.table1 import table1_message_counts
from repro.experiments.fig6_fig7 import clc_delay_sweep
from repro.experiments.fig8 import cluster1_timer_sweep
from repro.experiments.fig9 import communication_pattern_sweep
from repro.experiments.table2_table3 import (
    gc_three_clusters,
    gc_two_clusters,
    no_gc_reference,
)
from repro.experiments.figure5 import figure5_scenario
from repro.experiments.overhead import protocol_overhead
from repro.experiments.robustness import multi_seed_robustness
from repro.experiments.failure_sweep import mtbf_sweep
from repro.experiments.scalability import federation_scaling
from repro.experiments.ablations import (
    baseline_comparison,
    gc_period_sweep,
    incremental_checkpoint_ablation,
    message_logging_ablation,
    replication_degree_sweep,
    transitive_ddv_ablation,
)

__all__ = [
    "ExperimentResult",
    "baseline_comparison",
    "clc_delay_sweep",
    "cluster1_timer_sweep",
    "communication_pattern_sweep",
    "figure5_scenario",
    "gc_period_sweep",
    "federation_scaling",
    "gc_three_clusters",
    "gc_two_clusters",
    "incremental_checkpoint_ablation",
    "message_logging_ablation",
    "mtbf_sweep",
    "multi_seed_robustness",
    "no_gc_reference",
    "protocol_overhead",
    "replication_degree_sweep",
    "run_federation",
    "table1_message_counts",
    "transitive_ddv_ablation",
]
