"""Paper experiments: one module per table/figure of §5.

Every experiment is declared as three pure pieces -- a parameter ``grid``,
a picklable per-point function, and a ``reduce`` step that assembles the
paper's table/series -- registered in
:mod:`repro.experiments.registry`.  The sweep engine
(:mod:`repro.experiments.runner`) fans grid points out over a pluggable
execution backend (:mod:`repro.experiments.backends` -- local process
pool, SSH multi-host fan-out, or an in-process test double) and memoizes
them in a content-addressed cache (:mod:`repro.experiments.cache`);
``repro sweep <name>`` is the CLI entry point, and ``docs/sweeps.md`` the
user guide.

The historical one-call-per-experiment functions below remain the
library API; they run the same grid/point/reduce pipeline serially, so
both paths produce identical results.

All scaled experiments accept ``nodes`` and ``total_time`` so tests can
exercise them at reduced scale; defaults reproduce the paper (100 nodes
per cluster, 10-hour application).
"""

from repro.experiments.common import ExperimentResult, run_federation
from repro.experiments.registry import (
    Experiment,
    all_experiments,
    derive_seed,
    load_all,
)
from repro.experiments.table1 import table1_message_counts
from repro.experiments.fig6_fig7 import clc_delay_sweep
from repro.experiments.fig8 import cluster1_timer_sweep
from repro.experiments.fig9 import communication_pattern_sweep
from repro.experiments.table2_table3 import (
    gc_three_clusters,
    gc_two_clusters,
    no_gc_reference,
)
from repro.experiments.figure5 import figure5_scenario
from repro.experiments.overhead import protocol_overhead
from repro.experiments.robustness import multi_seed_robustness
from repro.experiments.failure_sweep import mtbf_sweep
from repro.experiments.scalability import federation_scaling
from repro.experiments.ablations import (
    baseline_comparison,
    gc_period_sweep,
    incremental_checkpoint_ablation,
    message_logging_ablation,
    replication_degree_sweep,
    transitive_ddv_ablation,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "baseline_comparison",
    "clc_delay_sweep",
    "cluster1_timer_sweep",
    "communication_pattern_sweep",
    "derive_seed",
    "figure5_scenario",
    "gc_period_sweep",
    "federation_scaling",
    "gc_three_clusters",
    "gc_two_clusters",
    "incremental_checkpoint_ablation",
    "load_all",
    "message_logging_ablation",
    "mtbf_sweep",
    "multi_seed_robustness",
    "no_gc_reference",
    "protocol_overhead",
    "replication_degree_sweep",
    "run_federation",
    "table1_message_counts",
    "transitive_ddv_ablation",
]
