"""Protocol tournament: every registered family on one workload.

Extends the paper's baseline comparison (§2.2/§6) to the full protocol
registry -- HC3I, the three paper baselines, the always-force strawman,
and the two post-paper families (minimum-process coordinated, index-based
CIC under both forced-checkpoint predicates) -- on the same pipeline
workload with an identical failure schedule, so a single table answers
"which protocol loses the least work, at what checkpoint/log cost?".
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.rollback_cost import rollback_costs
from repro.app.workloads import pipeline_workload
from repro.config.timers import HOUR
from repro.experiments.ablations import _run_with_failures
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import Experiment, register
from repro.network.message import NodeId

__all__ = ["ENTRANTS", "protocol_tournament"]

#: (label, protocol, protocol_options) -- every family in the registry,
#: with clc-cic entered once per forced-checkpoint predicate
ENTRANTS = (
    ("hc3i", "hc3i", None),
    ("global-coordinated", "global-coordinated", None),
    ("independent", "independent", None),
    ("pessimistic-log", "pessimistic-log", None),
    ("cic-always", "cic-always", None),
    ("min-process", "min-process", None),
    ("clc-cic/bcs", "clc-cic", {"predicate": "bcs"}),
    ("clc-cic/bcs-aftersend", "clc-cic", {"predicate": "bcs-aftersend"}),
)


def _tournament_grid(
    nodes: int = 20,
    total_time: float = 4 * HOUR,
    seed: int = 42,
    failure_times: Optional[Sequence[float]] = None,
) -> list:
    failure_times = list(
        failure_times or [total_time * 0.45, total_time * 0.8]
    )
    return [
        {
            "label": label,
            "protocol": protocol,
            "protocol_options": options,
            "nodes": nodes,
            "total_time": total_time,
            "seed": seed,
            "failure_times": failure_times,
        }
        for label, protocol, options in ENTRANTS
    ]


def _tournament_point(params: dict) -> dict:
    # Pipeline workload: steady inter-cluster flow at every scale, so the
    # families' dependency handling actually differentiates them (table1 at
    # tiny scale exchanges almost no inter-cluster messages).
    topology, application, timers = pipeline_workload(
        nodes_per_stage=params["nodes"],
        n_stages=3,
        total_time=params["total_time"],
        skip_probability=0.02,
    )
    fed, results = _run_with_failures(
        topology,
        application,
        timers,
        protocol=params["protocol"],
        seed=params["seed"],
        failure_times=params["failure_times"],
        victims=[NodeId(0, 1), NodeId(1, 1)],
        protocol_options=params["protocol_options"],
    )
    costs = rollback_costs(fed)
    checkpoints = sum(
        results.clc_counts(c)["total"] for c in range(topology.n_clusters)
    )
    log_bytes = results.counter("pessimistic/log_bytes")
    for c in range(topology.n_clusters):
        log_bytes += results.clusters[c].get("log_bytes", 0) or 0
    return {
        "checkpoints": checkpoints,
        "failures": costs.failures,
        "mean_clusters": costs.mean_clusters_per_failure,
        "replays": costs.replays,
        "lost_work": costs.lost_work_node_seconds,
        "log_bytes": log_bytes,
    }


def _tournament_reduce(grid: list, points: list) -> ExperimentResult:
    rows = [
        (
            params["label"],
            point["checkpoints"],
            round(point["mean_clusters"], 2),
            round(point["lost_work"], 1),
            point["replays"],
            point["log_bytes"],
        )
        for params, point in zip(grid, points)
    ]
    labels = [params["label"] for params in grid]
    series = {
        metric: [point[metric] for point in points]
        for metric in ("checkpoints", "mean_clusters", "lost_work", "log_bytes")
    }
    ranked = sorted(zip(labels, series["lost_work"]), key=lambda lw: lw[1])
    return ExperimentResult(
        name="Protocol tournament -- every family, one workload",
        description=(
            "3-stage pipeline workload, identical failure schedule; rollback "
            "scope, lost work and logging cost per checkpointing family."
        ),
        headers=[
            "protocol",
            "checkpoints",
            "clusters rolled/failure",
            "lost node-seconds",
            "replays",
            "log bytes",
        ],
        rows=rows,
        x_label="protocol",
        xs=labels,
        series=series,
        paper={
            "scope": "post-paper extension: the §2.2/§6 comparison over the "
            "full protocol registry"
        },
        notes=[
            "ranking by lost work: "
            + " < ".join(f"{label} ({value:.0f})" for label, value in ranked)
        ],
    )


TOURNAMENT = register(
    Experiment(
        name="protocol-tournament",
        title="Protocol tournament -- all registered families, one workload",
        artifact="§2.2/§6 extension",
        grid=_tournament_grid,
        point=_tournament_point,
        reduce=_tournament_reduce,
        scaled=True,
    )
)


def protocol_tournament(
    nodes: int = 20,
    total_time: float = 4 * HOUR,
    seed: int = 42,
    failure_times: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Every protocol family on the Table 1 workload, identical failures."""
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        TOURNAMENT,
        nodes=nodes,
        total_time=total_time,
        seed=seed,
        failure_times=list(failure_times) if failure_times is not None else None,
    )
