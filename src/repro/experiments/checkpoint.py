"""Checkpoint/resume policy for sweep points (the paper's medicine, taken).

:mod:`repro.sim.snapshot` knows how to freeze and thaw a live federation;
this module decides *when* -- simulated-time intervals and wall-clock
throttles -- and *where* -- write-then-rename envelopes in the sweep
spool, keyed like result-cache entries -- and wires restore into the
point-execution path so a requeued (evicted) grid point resumes from its
latest snapshot instead of recomputing from zero.

How it plugs in
---------------

:func:`run_point` wraps every point execution (in-process runners, the
local process pool, and ``remote_worker`` all route through it).  When a
checkpoint config is active -- from an :func:`activate` block, from the
``$REPRO_CHECKPOINT_*`` environment, or shipped in the wire job -- it
installs :meth:`CheckpointConfig.drive` as the federation run hook:
instead of one ``sim.run(until=horizon)``, the driver slices the run into
``every``-second intervals and snapshots the federation between slices.
Slicing adds *zero* simulated events, so the dispatch stream (and hence
the trace digest) is bit-identical to the uninterrupted run.

On entry, each ``Federation.run`` call checks for its own envelope
(``<key>.c<call>.ckpt``): an ``inflight`` snapshot is restored *in place*
(the caller's federation object is transplanted with the restored state,
so multi-phase experiments that hold the federation across several
``run()`` calls keep working) and the run resumes from the snapshot's
simulated time; a ``completed`` envelope short-circuits the call
entirely.  Corrupt or stale envelopes (different ``code_version_hash``,
exactly the cache-sync rule) are discarded with a warning and the point
runs from zero -- a damaged snapshot must never crash a sweep or, worse,
poison its results.

Once a point finishes, a ``<key>.done.json`` manifest records the
per-call digests (CI's resume-equivalence lane compares these) and the
superseded ``.ckpt`` envelopes are garbage-collected.

Fault injection for tests and CI: ``$REPRO_CHECKPOINT_KILL_EVENT=N``
raises :class:`SimulatedEviction` -- a ``BaseException``, so it sails
past the worker's failure envelope -- after N more dispatched events,
which to the batch backend looks exactly like a worker dying mid-point.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import time as _time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Optional

from repro.experiments.cache import code_version_hash
from repro.sim import snapshot
from repro.sim.snapshot import SnapshotError, StaleSnapshotError
from repro.sim.trace_digest import ChainedTraceDigest

__all__ = [
    "CheckpointConfig",
    "SimulatedEviction",
    "activate",
    "from_env",
    "from_wire",
    "gc_for",
    "gc_point",
    "point_key",
    "run_point",
    "sweep_orphans",
]

ENV_EVERY = "REPRO_CHECKPOINT_EVERY"
ENV_WALL = "REPRO_CHECKPOINT_WALL"
ENV_DIR = "REPRO_CHECKPOINT_DIR"
ENV_KILL = "REPRO_CHECKPOINT_KILL_EVENT"

#: config installed by :func:`activate` for the current thread of execution
_active: Optional["CheckpointConfig"] = None


class SimulatedEviction(BaseException):
    """Injected mid-run death (CI fault injection).

    A ``BaseException`` on purpose: the worker's ``except Exception``
    failure envelope must *not* catch it -- a real eviction writes no
    result file at all, and this has to look the same to the backend.
    """


class _EvictingDigest:
    """Digest wrapper that kills the run after a budgeted number of events.

    Wraps the real digest so the countdown sees every dispatched event;
    ``snapshot_safe`` is False so a snapshot taken between slices stores
    the *inner* digest (the wrapper is swapped out around each write --
    the kill budget is per-attempt state and must not resurrect on
    resume).
    """

    __slots__ = ("inner", "cfg")

    snapshot_safe = False

    def __init__(self, inner, cfg: "CheckpointConfig"):
        self.inner = inner
        self.cfg = cfg

    def update(self, time: float, seq: int, fn) -> None:
        self.inner.update(time, seq, fn)
        remaining = self.cfg._kill_remaining - 1
        self.cfg._kill_remaining = remaining
        if remaining <= 0:
            raise SimulatedEviction(
                f"simulated eviction after event #{self.inner.events}"
            )

    @property
    def events(self) -> int:
        return self.inner.events

    def hexdigest(self) -> str:
        return self.inner.hexdigest()

    def summary(self) -> dict:
        return self.inner.summary()


class CheckpointConfig:
    """One point-execution's checkpoint policy and progress."""

    def __init__(
        self,
        every: Optional[float] = None,
        wall: Optional[float] = None,
        directory: Optional[Path] = None,
        key: Optional[str] = None,
        kill_at_event: Optional[int] = None,
    ):
        if every is not None and every <= 0:
            raise ValueError(f"checkpoint interval must be positive: {every}")
        if wall is not None and wall < 0:
            raise ValueError(f"wall-clock throttle must be >= 0: {wall}")
        self.every = every
        self.wall = wall
        self.directory = Path(directory) if directory is not None else None
        self.key = key
        self.kill_at_event = kill_at_event
        # per-attempt state
        self._calls = 0
        self._kill_remaining = kill_at_event
        self._call_records: list = []
        self._last_write: Optional[float] = None

    # ------------------------------------------------------------------
    def _snapshot_path(self, idx: int) -> Optional[Path]:
        if self.directory is None or self.key is None:
            return None
        return self.directory / f"{self.key}.c{idx}.ckpt"

    def _record_call(self, idx: int, digest, events, sim_time, resumed_at=None) -> None:
        self._call_records.append(
            {
                "call": idx,
                "digest": digest,
                "events": events,
                "sim_time": sim_time,
                "resumed_at": resumed_at,
            }
        )

    # ------------------------------------------------------------------
    def drive(self, fed, horizon: float) -> None:
        """The ``Federation.run`` hook: restore, slice, snapshot.

        Must dispatch exactly the events ``sim.run(until=horizon)`` would:
        slicing stops and restarts the kernel loop from the *outside*, so
        no simulated event is added, reordered, or dropped.
        """
        idx = self._calls
        self._calls += 1
        resumed_at = None
        path = self._snapshot_path(idx)
        if path is not None and path.exists():
            header = self._try_restore(fed, path)
            if header is not None and header.get("state") == "completed":
                # This run() call already finished in a previous attempt;
                # the transplant put its final state in place.
                self._record_call(
                    idx,
                    digest=header.get("digest"),
                    events=header.get("events"),
                    sim_time=header.get("sim_time"),
                    resumed_at=header.get("sim_time"),
                )
                return
            if header is not None:
                resumed_at = header.get("sim_time")
        sim = fed.sim  # re-fetch: _try_restore may have transplanted fed
        if sim._digest is None:
            # Chained (picklable) digest so kill-and-resume comparisons
            # can span snapshots; never clobber an explicitly attached one.
            sim.attach_digest(ChainedTraceDigest())
        wrapper = None
        if self.kill_at_event is not None:
            wrapper = _EvictingDigest(sim._digest, self)
            sim.attach_digest(wrapper)
        try:
            if self.every is None:
                sim.run(until=horizon)
            else:
                while True:
                    if sim._stopped or sim.now >= horizon:
                        break
                    target = min(sim.now + self.every, horizon)
                    sim.run(until=target)
                    if sim._stopped or target >= horizon:
                        break
                    self._write_snapshot(fed, idx, state="inflight")
        finally:
            if wrapper is not None and sim._digest is wrapper:
                sim.attach_digest(wrapper.inner)
        self._write_snapshot(fed, idx, state="completed", force=True)
        digest = fed.sim._digest
        self._record_call(
            idx,
            digest=digest.hexdigest() if digest is not None else None,
            events=digest.events if digest is not None else None,
            sim_time=fed.sim.now,
            resumed_at=resumed_at,
        )

    def _try_restore(self, fed, path: Path) -> Optional[dict]:
        """Transplant the envelope's state into ``fed``; header on success.

        Any unusable snapshot -- corrupt, truncated, or from different
        sources -- is discarded (with a warning) and the call runs from
        zero: resume is an optimization, never a correctness hazard.
        """
        try:
            header, payload = snapshot.read_envelope(path)
            if header.get("code") != code_version_hash():
                raise StaleSnapshotError(
                    f"snapshot {path} was taken by a different repro version"
                )
            restored = snapshot.loads(payload)
        except SnapshotError as exc:
            print(
                f"checkpoint: discarding unusable snapshot {path.name}: {exc}",
                file=sys.stderr,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        # In-place transplant: callers (and experiment code between run()
        # calls) hold references to this federation object, so it must
        # *become* the restored one rather than be replaced by it.
        fed.__dict__.update(restored.__dict__)
        return header

    def _write_snapshot(self, fed, idx: int, state: str, force: bool = False) -> None:
        path = self._snapshot_path(idx)
        if path is None:
            return
        if not force and self.wall is not None:
            now = _time.monotonic()
            if self._last_write is not None and now - self._last_write < self.wall:
                return  # wall-clock throttle: skip this interval boundary
        sim = fed.sim
        digest = sim._digest
        swapped = isinstance(digest, _EvictingDigest)
        if swapped:
            # The kill wrapper is per-attempt; snapshot the inner digest
            # so a resumed attempt continues the chain, not the countdown.
            sim.attach_digest(digest.inner)
        try:
            payload = snapshot.dumps(fed)
        finally:
            if swapped:
                sim.attach_digest(digest)
        inner = digest.inner if swapped else digest
        meta = {
            "code": code_version_hash(),
            "state": state,
            "key": self.key,
            "call": idx,
            "sim_time": sim.now,
            "digest": inner.hexdigest() if inner is not None else None,
            "events": inner.events if inner is not None else None,
        }
        snapshot.write_envelope(path, meta, payload)
        self._last_write = _time.monotonic()


# ---------------------------------------------------------------------------
# config sources


def from_env(environ=None) -> Optional[CheckpointConfig]:
    """Config from ``$REPRO_CHECKPOINT_*``, or ``None`` when unset."""
    env = os.environ if environ is None else environ
    every = env.get(ENV_EVERY)
    wall = env.get(ENV_WALL)
    directory = env.get(ENV_DIR)
    if not every and not wall and not directory:
        return None
    return CheckpointConfig(
        every=float(every) if every else None,
        wall=float(wall) if wall else None,
        directory=Path(directory) if directory else None,
    )


def from_wire(wire) -> Optional[CheckpointConfig]:
    """Config from a wire job's ``checkpoint`` field (see remote_worker)."""
    if not wire:
        return None
    return CheckpointConfig(
        every=wire.get("every"),
        wall=wire.get("wall"),
        directory=Path(wire["dir"]) if wire.get("dir") else None,
        key=wire.get("key"),
    )


def point_key(experiment: str, params: dict) -> str:
    """Stable snapshot key for one grid point (the result-cache recipe)."""
    material = {
        "code": code_version_hash(),
        "experiment": experiment,
        "params": {k: params[k] for k in sorted(params)},
    }
    blob = json.dumps(material, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@contextmanager
def activate(cfg: CheckpointConfig) -> Iterator[CheckpointConfig]:
    """Install ``cfg`` as the active checkpoint policy for this block."""
    global _active
    prev_active = _active
    prev_hook = snapshot._drive_hook
    _active = cfg
    snapshot._drive_hook = cfg.drive
    try:
        yield cfg
    finally:
        _active = prev_active
        snapshot._drive_hook = prev_hook


# ---------------------------------------------------------------------------
# point execution


def run_point(
    fn: Callable[[dict], Any],
    params: dict,
    experiment: Optional[str] = None,
    wire: Optional[dict] = None,
) -> Any:
    """Run one grid point under the applicable checkpoint policy.

    Policy precedence: an explicit ``wire`` job field, then an
    :func:`activate` block, then the environment.  With no policy and no
    kill injection this is exactly ``fn(params)``.
    """
    if wire:
        base = from_wire(wire)
    else:
        base = _active if _active is not None else from_env()
    kill_env = os.environ.get(ENV_KILL)
    kill = int(kill_env) if kill_env else None
    if base is None and kill is None:
        return fn(params)
    if base is None:
        cfg = CheckpointConfig(kill_at_event=kill)
    else:
        key = base.key
        if key is None and base.directory is not None and experiment is not None:
            key = point_key(experiment, params)
        # Fresh per-point config: _calls/_kill_remaining/_call_records are
        # attempt state and must not leak between points.
        cfg = CheckpointConfig(
            every=base.every,
            wall=base.wall,
            directory=base.directory,
            key=key,
            kill_at_event=kill if kill is not None else base.kill_at_event,
        )
    with activate(cfg):
        value = fn(params)
    if cfg.directory is not None and cfg.key is not None:
        write_done_manifest(cfg, experiment)
        gc_point(cfg.directory, cfg.key)
    return value


def write_done_manifest(cfg: CheckpointConfig, experiment: Optional[str]) -> Path:
    """Record the finished point's per-call digests (atomic write).

    Written *before* the snapshots are GC'd so the resume-equivalence
    check always has the digests, even though the envelopes are gone.
    """
    path = cfg.directory / f"{cfg.key}.done.json"
    doc = {
        "format": snapshot.FORMAT,
        "code": code_version_hash(),
        "key": cfg.key,
        "experiment": experiment,
        "calls": cfg._call_records,
    }
    blob = json.dumps(doc, sort_keys=True).encode("utf-8") + b"\n"
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        fh = os.fdopen(fd, "wb")
    except BaseException:
        os.close(fd)
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        with fh:
            fh.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


# ---------------------------------------------------------------------------
# spool hygiene


def gc_point(directory, key: str) -> int:
    """Delete a completed point's snapshot envelopes (keeps the manifest)."""
    removed = 0
    for path in Path(directory).glob(f"{key}.c*.ckpt"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def gc_for(experiment: Optional[str], params: dict) -> None:
    """Best-effort snapshot GC once the runner records a point's success.

    Covers the case where the point ran on a worker that died *after*
    writing its result but before its own GC (the runner is the only
    place that reliably observes completion).
    """
    try:
        cfg = _active if _active is not None else from_env()
        if cfg is None or cfg.directory is None or experiment is None:
            return
        key = cfg.key or point_key(experiment, params)
        gc_point(cfg.directory, key)
    except Exception:
        pass


def sweep_orphans(directory) -> int:
    """Remove temp files a killed writer left behind (cache-clear style)."""
    removed = 0
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    for path in directory.glob("*.tmp"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed
