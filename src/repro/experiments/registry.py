"""Declarative registry of the paper's experiments.

Every experiment is three pure pieces:

* ``grid(**scale_kwargs) -> list[dict]`` -- the ordered parameter grid.
  Each point is a JSON-serializable dict (numbers, strings, lists,
  ``None``); the dict fully determines the simulation, including its
  random seed, so any point can run anywhere (another process, another
  machine, a cache lookup) and produce the same answer.
* ``point(params) -> dict`` -- run ONE grid point and return a picklable
  summary (plain scalars/lists only -- no live federation objects).
  Must be a module-level function so :mod:`concurrent.futures` can ship
  it to worker processes.
* ``reduce(grid, points) -> ExperimentResult`` -- assemble the paper's
  table/series from the per-point summaries, in grid order.

The legacy per-experiment entry points (``table1_message_counts`` & co.)
are thin wrappers that run the same grid/point/reduce pipeline serially
in-process, so the parallel sweep path is identical-by-construction to
the historical serial path.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = [
    "Experiment",
    "all_experiments",
    "canonical_params",
    "derive_seed",
    "get",
    "load_all",
    "names",
    "register",
]

#: modules whose import registers experiments (one per paper artifact group)
_EXPERIMENT_MODULES = (
    "repro.experiments.table1",
    "repro.experiments.fig6_fig7",
    "repro.experiments.fig8",
    "repro.experiments.fig9",
    "repro.experiments.figure5",
    "repro.experiments.table2_table3",
    "repro.experiments.overhead",
    "repro.experiments.robustness",
    "repro.experiments.failure_sweep",
    "repro.experiments.scalability",
    "repro.experiments.ablations",
    "repro.experiments.checkpoint_overhead",
    "repro.experiments.tournament",
)


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: declarative grid + pure point + reducer."""

    name: str
    title: str
    grid: Callable[..., list]
    point: Callable[[dict], dict]
    reduce: Callable[[list, list], "object"]
    #: paper artifact(s) this reproduces, e.g. "Table 1" / "Figure 6-7"
    artifact: str = ""
    #: whether ``nodes``/``total_time`` scaling applies (CLI --scale)
    scaled: bool = True
    tags: tuple = field(default_factory=tuple)

    def grid_kwargs(self, overrides: Optional[dict] = None) -> dict:
        """Filter ``overrides`` down to the kwargs this grid accepts."""
        overrides = overrides or {}
        sig = inspect.signature(self.grid)
        if any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in sig.parameters.values()
        ):
            return dict(overrides)
        return {k: v for k, v in overrides.items() if k in sig.parameters}

    def build_grid(self, overrides: Optional[dict] = None) -> list:
        grid = self.grid(**self.grid_kwargs(overrides))
        return [canonical_params(p) for p in grid]


_REGISTRY: dict = {}
_LOADED = False


def register(experiment: Experiment) -> Experiment:
    """Add an experiment to the registry.

    Re-registering the same declaration (same grid/point/reduce functions
    by module and qualname, as happens on a module reload) replaces the
    entry; any other name collision is an error so a copy-pasted name
    cannot silently drop an experiment.
    """
    existing = _REGISTRY.get(experiment.name)
    if existing is not None and existing is not experiment:
        def _ident(fn) -> tuple:
            return (fn.__module__, getattr(fn, "__qualname__", fn.__name__))

        same_declaration = all(
            _ident(getattr(existing, attr)) == _ident(getattr(experiment, attr))
            for attr in ("grid", "point", "reduce")
        )
        if not same_declaration:
            raise ValueError(
                f"experiment {experiment.name!r} registered twice "
                f"({existing.point.__module__}.{existing.point.__qualname__} "
                f"and {experiment.point.__module__}.{experiment.point.__qualname__})"
            )
    _REGISTRY[experiment.name] = experiment
    return experiment


def load_all() -> None:
    """Import every experiment module so its ``register`` calls run."""
    global _LOADED
    if _LOADED:
        return
    import importlib

    for module in _EXPERIMENT_MODULES:
        importlib.import_module(module)
    _LOADED = True


def names() -> list:
    load_all()
    return sorted(_REGISTRY)


def all_experiments() -> list:
    load_all()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get(name: str) -> Experiment:
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def canonical_params(params: dict) -> dict:
    """Validate that a grid point round-trips through JSON and return it.

    Grid points become cache keys *and* travel as self-contained JSON
    wire jobs to remote workers -- piped over SSH or spooled to disk for
    SLURM array tasks (:func:`repro.experiments.remote_worker.make_wire_job`)
    -- so lossless serialization is a hard requirement, not a
    convention.  Tuples are normalized to lists (JSON
    has no tuples); anything else that decodes differently than it was
    written -- non-string dict keys (``{1: ...}`` silently becomes
    ``{"1": ...}``), non-finite floats -- is rejected here, at grid-build
    time, rather than surfacing as a cache miss or a divergent remote
    result later.
    """
    try:
        encoded = json.dumps(params, sort_keys=True, allow_nan=False)
    except ValueError as exc:
        raise ValueError(
            f"grid point is not JSON-serializable (non-finite float?): "
            f"{params!r} ({exc})"
        ) from None
    decoded = json.loads(encoded)
    normalized = _jsonify(params)
    if decoded != normalized:
        raise ValueError(
            "grid point does not survive a JSON round-trip "
            f"(non-string dict keys?): {params!r} decoded as {decoded!r}"
        )
    return decoded


def _jsonify(obj):
    """What ``obj`` should look like after a *lossless* JSON round-trip."""
    if isinstance(obj, dict):
        return {k: _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    if isinstance(obj, bool) or obj is None:
        return obj
    if isinstance(obj, int):
        return obj
    if isinstance(obj, float):
        return json.loads(json.dumps(obj))  # canonical float repr
    return obj


def derive_seed(root_seed: int, *components) -> int:
    """Deterministic per-point seed from a root seed and identifying parts.

    Stable across processes and Python versions (unlike ``hash()``), so a
    sweep point computes the same seed no matter which worker runs it.
    """
    material = json.dumps([root_seed, *components], sort_keys=True, default=str)
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)
