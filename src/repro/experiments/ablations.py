"""Ablations over HC3I's design choices and baseline comparisons.

These benches answer the questions the paper raises but does not quantify:

* **transitive DDV** (§7): does piggybacking the whole DDV reduce forced
  CLCs on a pipeline workload?
* **sender-side logging** (§3.3): how many extra clusters roll back per
  failure without the optimistic log?
* **forced-CLC rule** (§3.2/Fig. 4): how many useless checkpoints does the
  SN test avoid versus forcing on every message?
* **protocol family comparison** (§2.2/§6): HC3I versus global coordinated
  checkpointing, independent checkpointing (domino) and pessimistic message
  logging, on identical workloads with identical failure times.
* **GC period** (§5.4): "A tradeoff has to be found between the frequency
  of garbage collection and the number of CLCs stored."
* **replication degree** (§7): storage/traffic cost of tolerating k
  simultaneous intra-cluster faults.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.rollback_cost import rollback_costs
from repro.app.workloads import (
    TOTAL_TIME,
    pipeline_workload,
    table1_workload,
    table2_workload,
)
from repro.cluster.federation import Federation
from repro.config.timers import HOUR, MINUTE
from repro.experiments.common import ExperimentResult
from repro.network.message import NodeId

__all__ = [
    "baseline_comparison",
    "gc_period_sweep",
    "incremental_checkpoint_ablation",
    "message_logging_ablation",
    "replication_degree_sweep",
    "transitive_ddv_ablation",
]


def _run_with_failures(
    topology,
    application,
    timers,
    protocol: str,
    seed: int,
    failure_times: Sequence[float] = (),
    victims: Optional[Sequence[NodeId]] = None,
    protocol_options: Optional[dict] = None,
    trace_protocol: bool = True,
):
    from repro.sim.trace import TraceLevel

    fed = Federation(
        topology,
        application,
        timers,
        protocol=protocol,
        protocol_options=protocol_options,
        seed=seed,
        trace_level=TraceLevel.PROTOCOL if trace_protocol else TraceLevel.NONE,
    )
    fed.start()
    for i, at in enumerate(failure_times):
        victim = victims[i] if victims else NodeId(i % topology.n_clusters, 0)
        fed.sim.schedule_at(at, fed.inject_failure, victim)
    results = fed.run()
    return fed, results


def transitive_ddv_ablation(
    nodes_per_stage: int = 20,
    n_stages: int = 4,
    total_time: float = 2 * HOUR,
    seed: int = 42,
) -> ExperimentResult:
    """Forced-CLC counts: SN piggyback vs whole-DDV vs force-always."""
    rows = []
    for protocol in ("hc3i", "hc3i-transitive", "cic-always"):
        topology, application, timers = pipeline_workload(
            nodes_per_stage=nodes_per_stage,
            n_stages=n_stages,
            total_time=total_time,
            skip_probability=0.02,
        )
        fed = Federation(topology, application, timers, protocol=protocol, seed=seed)
        results = fed.run()
        forced = sum(results.clc_counts(c)["forced"] for c in range(n_stages))
        total = sum(results.clc_counts(c)["total"] for c in range(n_stages))
        inter = sum(
            results.app_messages(i, j)
            for i in range(n_stages)
            for j in range(n_stages)
            if i != j
        )
        rows.append((protocol, forced, total, inter))
    return ExperimentResult(
        name="Ablation -- dependency tracking (SN vs transitive DDV vs always-force)",
        description=(
            f"{n_stages}-stage pipeline (Figure 1 model); forced CLCs summed "
            "over all clusters."
        ),
        headers=["protocol", "forced CLCs", "total CLCs", "inter-cluster msgs"],
        rows=rows,
        paper={
            "hypothesis": "§7: transitivity should take fewer forced checkpoints; "
            "§3.2: always-force takes useless ones"
        },
    )


def message_logging_ablation(
    nodes: int = 20,
    total_time: float = 4 * HOUR,
    seed: int = 42,
    failure_times: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Clusters rolled back per failure: with vs without sender-side logs."""
    failure_times = list(failure_times or [total_time * 0.45, total_time * 0.8])
    rows = []
    for label, replay in (("with logging (paper)", True), ("without logging", False)):
        topology, application, timers = table1_workload(
            nodes=nodes,
            total_time=total_time,
            clc_period_0=20 * MINUTE,
            clc_period_1=20 * MINUTE,
            messages_1_to_0=103,
        )
        fed, results = _run_with_failures(
            topology,
            application,
            timers,
            protocol="hc3i",
            seed=seed,
            failure_times=failure_times,
            victims=[NodeId(0, 1), NodeId(1, 1)],
            protocol_options={"replay_enabled": replay},
        )
        costs = rollback_costs(fed)
        rows.append(
            (
                label,
                costs.failures,
                costs.rollbacks,
                round(costs.mean_clusters_per_failure, 2),
                costs.replays,
                round(costs.lost_work_node_seconds, 1),
            )
        )
    return ExperimentResult(
        name="Ablation -- sender-side message logging (§3.3)",
        description=(
            "Identical failures with and without the optimistic sender log; "
            "without it the sender's cluster must roll back so its messages "
            "are regenerated."
        ),
        headers=[
            "variant",
            "failures",
            "rollbacks",
            "clusters/failure",
            "replays",
            "lost node-seconds",
        ],
        rows=rows,
        paper={"goal": "§3.3: limit the number of clusters that rollback"},
    )


def baseline_comparison(
    nodes: int = 20,
    total_time: float = 4 * HOUR,
    seed: int = 42,
    failure_times: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """HC3I vs the three §2.2/§6 protocol families, identical conditions."""
    failure_times = list(failure_times or [total_time * 0.45, total_time * 0.8])
    rows = []
    for protocol in ("hc3i", "global-coordinated", "independent", "pessimistic-log"):
        topology, application, timers = table1_workload(
            nodes=nodes,
            total_time=total_time,
            clc_period_0=20 * MINUTE,
            clc_period_1=20 * MINUTE,
            messages_1_to_0=103,
        )
        fed, results = _run_with_failures(
            topology,
            application,
            timers,
            protocol=protocol,
            seed=seed,
            failure_times=failure_times,
            victims=[NodeId(0, 1), NodeId(1, 1)],
        )
        costs = rollback_costs(fed)
        checkpoints = sum(
            results.clc_counts(c)["total"] for c in range(topology.n_clusters)
        )
        log_bytes = results.counter("pessimistic/log_bytes")
        for c in range(topology.n_clusters):
            log_bytes += results.clusters[c].get("log_bytes", 0) or 0
        freeze = results.stats.get("global/freeze_time")
        freeze_mean = freeze["mean"] if isinstance(freeze, dict) else 0.0
        rows.append(
            (
                protocol,
                checkpoints,
                costs.failures,
                round(costs.mean_clusters_per_failure, 2),
                round(costs.lost_work_node_seconds, 1),
                log_bytes,
                round(freeze_mean * 1e3, 3),
            )
        )
    return ExperimentResult(
        name="Baseline comparison -- HC3I vs §2.2/§6 protocol families",
        description=(
            "Same workload, same failure schedule; checkpoints taken, "
            "rollback scope, lost work, log volume and freeze time."
        ),
        headers=[
            "protocol",
            "checkpoints",
            "failures",
            "clusters rolled/failure",
            "lost node-seconds",
            "log bytes",
            "freeze ms (mean)",
        ],
        rows=rows,
        paper={
            "global": "not viable at federation scale (§2.2)",
            "independent": "domino effect (§2.2)",
            "pessimistic-log": "1-node rollback but logs everything + PWD (§6)",
        },
    )


def gc_period_sweep(
    periods_h: Optional[Sequence[Optional[float]]] = None,
    nodes: int = 50,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
) -> ExperimentResult:
    """Stored-CLC memory vs garbage-collection frequency (§5.4 tradeoff)."""
    periods = list(periods_h) if periods_h is not None else [0.5, 1, 2, 4, None]
    rows = []
    for period in periods:
        topology, application, timers = table2_workload(
            nodes=nodes,
            total_time=total_time,
            gc_period=None if period is None else period * HOUR,
        )
        fed = Federation(topology, application, timers, seed=seed)
        results = fed.run()
        max_stored = 0
        for c in range(2):
            gauge = results.stats.get(f"clc/c{c}/stored")
            if isinstance(gauge, dict):
                max_stored = max(max_stored, int(gauge["max"]))
        gc_msgs = sum(
            results.counter(f"net/protocol/{k}")
            for k in ("gc_request", "gc_response", "gc_collect", "gc_local")
        )
        label = "off" if period is None else f"{period:g}h"
        rows.append(
            (
                label,
                max_stored,
                results.stored_clcs(0),
                results.stored_clcs(1),
                results.counter("gc/clcs_removed"),
                gc_msgs,
            )
        )
    return ExperimentResult(
        name="Ablation -- garbage collection period (§5.4 tradeoff)",
        description="Peak and final stored CLCs vs GC frequency, plus GC traffic.",
        headers=[
            "GC period",
            "peak stored",
            "final c0",
            "final c1",
            "CLCs removed",
            "GC messages",
        ],
        rows=rows,
        paper={
            "tradeoff": "frequency of garbage collection vs number of CLCs stored"
        },
    )


def incremental_checkpoint_ablation(
    nodes: int = 20,
    total_time: float = 4 * HOUR,
    seed: int = 42,
    fraction: float = 0.2,
) -> ExperimentResult:
    """Full vs incremental stable-storage replication traffic.

    The incremental variant ships a full state once and deltas afterwards;
    a rollback restarts the chain.  Measures the replica byte volume each
    policy moves over the SAN for identical CLC schedules.
    """
    rows = []
    for label, options in (
        ("full replicas (paper)", {}),
        (
            f"incremental (delta={fraction:g})",
            {"incremental": True, "incremental_fraction": fraction},
        ),
    ):
        topology, application, timers = table1_workload(
            nodes=nodes,
            total_time=total_time,
            clc_period_0=20 * MINUTE,
            clc_period_1=20 * MINUTE,
            messages_1_to_0=103,
        )
        fed, results = _run_with_failures(
            topology,
            application,
            timers,
            protocol="hc3i",
            seed=seed,
            failure_times=[total_time * 0.6],
            victims=[NodeId(0, 1)],
            protocol_options=options,
        )
        replica_msgs = results.counter("net/protocol/replica")
        clcs = sum(results.clc_counts(c)["total"] for c in range(2))
        # replica bytes = protocol bytes attributable to REPLICA messages;
        # recompute from the stats snapshot by subtracting nothing -- the
        # fabric only aggregates, so track via message count x sizes is
        # impossible post-hoc; read the dedicated counter instead.
        replica_bytes = results.counter("net/bytes/protocol")
        rows.append((label, clcs, replica_msgs, replica_bytes))
    return ExperimentResult(
        name="Ablation -- incremental stable storage",
        description=(
            "Replica traffic for full-state vs delta-based neighbour "
            "replication, same workload and one mid-run failure."
        ),
        headers=["variant", "CLCs", "replica messages", "protocol bytes"],
        rows=rows,
        paper={
            "context": "incremental two-level checkpointing variant "
            "(not evaluated in the paper; delta chains restart on rollback)"
        },
    )


def replication_degree_sweep(
    degrees: Sequence[int] = (0, 1, 2, 3),
    nodes: int = 20,
    total_time: float = 2 * HOUR,
    seed: int = 42,
) -> ExperimentResult:
    """Stable-storage cost vs faults tolerated (§7 extension)."""
    rows = []
    for degree in degrees:
        topology, application, timers = table1_workload(
            nodes=nodes,
            total_time=total_time,
            clc_period_0=20 * MINUTE,
            clc_period_1=20 * MINUTE,
        )
        fed = Federation(
            topology,
            application,
            timers,
            seed=seed,
            protocol_options={"replication_degree": degree},
        )
        results = fed.run()
        stored0 = results.stored_clcs(0)
        states = fed.storage[0].states_held_by(0, stored0)
        replica_msgs = results.counter("net/protocol/replica")
        rows.append(
            (
                degree,
                fed.storage[0].max_tolerated_faults(),
                stored0,
                states,
                replica_msgs,
            )
        )
    return ExperimentResult(
        name="Ablation -- stable-storage replication degree (§7)",
        description=(
            "Each node's state is copied to k ring successors; k faults per "
            "cluster are survivable at k-fold storage and replica traffic."
        ),
        headers=[
            "degree",
            "faults tolerated",
            "stored CLCs (c0)",
            "states/node (c0)",
            "replica messages",
        ],
        rows=rows,
        paper={
            "extension": "§7: user-chosen degree of replication in stable storage"
        },
    )
