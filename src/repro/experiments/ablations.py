"""Ablations over HC3I's design choices and baseline comparisons.

These benches answer the questions the paper raises but does not quantify:

* **transitive DDV** (§7): does piggybacking the whole DDV reduce forced
  CLCs on a pipeline workload?
* **sender-side logging** (§3.3): how many extra clusters roll back per
  failure without the optimistic log?
* **forced-CLC rule** (§3.2/Fig. 4): how many useless checkpoints does the
  SN test avoid versus forcing on every message?
* **protocol family comparison** (§2.2/§6): HC3I versus global coordinated
  checkpointing, independent checkpointing (domino) and pessimistic message
  logging, on identical workloads with identical failure times.
* **GC period** (§5.4): "A tradeoff has to be found between the frequency
  of garbage collection and the number of CLCs stored."
* **replication degree** (§7): storage/traffic cost of tolerating k
  simultaneous intra-cluster faults.

Each ablation's variants are independent grid points, so the sweep engine
runs them concurrently.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.rollback_cost import rollback_costs
from repro.app.workloads import (
    TOTAL_TIME,
    pipeline_workload,
    table1_workload,
    table2_workload,
)
from repro.cluster.federation import Federation
from repro.config.timers import HOUR, MINUTE
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import Experiment, register
from repro.network.message import NodeId

__all__ = [
    "ABLATION_METRICS",
    "COMPONENTS",
    "baseline_comparison",
    "component_importance",
    "gc_period_sweep",
    "hc3i_component_ablation",
    "incremental_checkpoint_ablation",
    "message_logging_ablation",
    "render_importance_markdown",
    "replication_degree_sweep",
    "transitive_ddv_ablation",
]


def _run_with_failures(
    topology,
    application,
    timers,
    protocol: str,
    seed: int,
    failure_times: Sequence[float] = (),
    victims: Optional[Sequence[NodeId]] = None,
    protocol_options: Optional[dict] = None,
    trace_protocol: bool = True,
):
    from repro.sim.trace import TraceLevel

    fed = Federation(
        topology,
        application,
        timers,
        protocol=protocol,
        protocol_options=protocol_options,
        seed=seed,
        trace_level=TraceLevel.PROTOCOL if trace_protocol else TraceLevel.NONE,
    )
    fed.start()
    for i, at in enumerate(failure_times):
        victim = victims[i] if victims else NodeId(i % topology.n_clusters, 0)
        fed.sim.schedule_at(at, fed.inject_failure, victim)
    results = fed.run()
    return fed, results


# --------------------------------------------------------------------------
# transitive DDV ablation


def _transitive_grid(
    nodes_per_stage: int = 20,
    n_stages: int = 4,
    total_time: float = 2 * HOUR,
    seed: int = 42,
) -> list:
    return [
        {
            "protocol": protocol,
            "nodes_per_stage": nodes_per_stage,
            "n_stages": n_stages,
            "total_time": total_time,
            "seed": seed,
        }
        for protocol in ("hc3i", "hc3i-transitive", "cic-always")
    ]


def _transitive_point(params: dict) -> dict:
    n_stages = params["n_stages"]
    topology, application, timers = pipeline_workload(
        nodes_per_stage=params["nodes_per_stage"],
        n_stages=n_stages,
        total_time=params["total_time"],
        skip_probability=0.02,
    )
    fed = Federation(
        topology, application, timers, protocol=params["protocol"], seed=params["seed"]
    )
    results = fed.run()
    return {
        "forced": sum(results.clc_counts(c)["forced"] for c in range(n_stages)),
        "total": sum(results.clc_counts(c)["total"] for c in range(n_stages)),
        "inter": sum(
            results.app_messages(i, j)
            for i in range(n_stages)
            for j in range(n_stages)
            if i != j
        ),
    }


def _transitive_reduce(grid: list, points: list) -> ExperimentResult:
    rows = [
        (params["protocol"], point["forced"], point["total"], point["inter"])
        for params, point in zip(grid, points)
    ]
    return ExperimentResult(
        name="Ablation -- dependency tracking (SN vs transitive DDV vs always-force)",
        description=(
            f"{grid[0]['n_stages']}-stage pipeline (Figure 1 model); forced "
            "CLCs summed over all clusters."
        ),
        headers=["protocol", "forced CLCs", "total CLCs", "inter-cluster msgs"],
        rows=rows,
        paper={
            "hypothesis": "§7: transitivity should take fewer forced checkpoints; "
            "§3.2: always-force takes useless ones"
        },
    )


TRANSITIVE = register(
    Experiment(
        name="ablation-transitive",
        title="Ablation -- SN vs transitive DDV vs always-force (§7)",
        artifact="§7",
        grid=_transitive_grid,
        point=_transitive_point,
        reduce=_transitive_reduce,
        scaled=False,
    )
)


def transitive_ddv_ablation(
    nodes_per_stage: int = 20,
    n_stages: int = 4,
    total_time: float = 2 * HOUR,
    seed: int = 42,
) -> ExperimentResult:
    """Forced-CLC counts: SN piggyback vs whole-DDV vs force-always."""
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        TRANSITIVE,
        nodes_per_stage=nodes_per_stage,
        n_stages=n_stages,
        total_time=total_time,
        seed=seed,
    )


# --------------------------------------------------------------------------
# sender-side message logging ablation


def _logging_grid(
    nodes: int = 20,
    total_time: float = 4 * HOUR,
    seed: int = 42,
    failure_times: Optional[Sequence[float]] = None,
) -> list:
    failure_times = list(
        failure_times or [total_time * 0.45, total_time * 0.8]
    )
    return [
        {
            "label": label,
            "replay": replay,
            "nodes": nodes,
            "total_time": total_time,
            "seed": seed,
            "failure_times": failure_times,
        }
        for label, replay in (
            ("with logging (paper)", True),
            ("without logging", False),
        )
    ]


def _logging_point(params: dict) -> dict:
    topology, application, timers = table1_workload(
        nodes=params["nodes"],
        total_time=params["total_time"],
        clc_period_0=20 * MINUTE,
        clc_period_1=20 * MINUTE,
        messages_1_to_0=103,
    )
    fed, _results = _run_with_failures(
        topology,
        application,
        timers,
        protocol="hc3i",
        seed=params["seed"],
        failure_times=params["failure_times"],
        victims=[NodeId(0, 1), NodeId(1, 1)],
        protocol_options={"replay_enabled": params["replay"]},
    )
    costs = rollback_costs(fed)
    return {
        "failures": costs.failures,
        "rollbacks": costs.rollbacks,
        "mean_clusters": costs.mean_clusters_per_failure,
        "replays": costs.replays,
        "lost_work": costs.lost_work_node_seconds,
    }


def _logging_reduce(grid: list, points: list) -> ExperimentResult:
    rows = [
        (
            params["label"],
            point["failures"],
            point["rollbacks"],
            round(point["mean_clusters"], 2),
            point["replays"],
            round(point["lost_work"], 1),
        )
        for params, point in zip(grid, points)
    ]
    return ExperimentResult(
        name="Ablation -- sender-side message logging (§3.3)",
        description=(
            "Identical failures with and without the optimistic sender log; "
            "without it the sender's cluster must roll back so its messages "
            "are regenerated."
        ),
        headers=[
            "variant",
            "failures",
            "rollbacks",
            "clusters/failure",
            "replays",
            "lost node-seconds",
        ],
        rows=rows,
        paper={"goal": "§3.3: limit the number of clusters that rollback"},
    )


LOGGING = register(
    Experiment(
        name="ablation-logging",
        title="Ablation -- sender-side message logging (§3.3)",
        artifact="§3.3",
        grid=_logging_grid,
        point=_logging_point,
        reduce=_logging_reduce,
        scaled=False,
    )
)


def message_logging_ablation(
    nodes: int = 20,
    total_time: float = 4 * HOUR,
    seed: int = 42,
    failure_times: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Clusters rolled back per failure: with vs without sender-side logs."""
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        LOGGING,
        nodes=nodes,
        total_time=total_time,
        seed=seed,
        failure_times=list(failure_times) if failure_times is not None else None,
    )


# --------------------------------------------------------------------------
# protocol family baseline comparison


def _baseline_grid(
    nodes: int = 20,
    total_time: float = 4 * HOUR,
    seed: int = 42,
    failure_times: Optional[Sequence[float]] = None,
) -> list:
    failure_times = list(
        failure_times or [total_time * 0.45, total_time * 0.8]
    )
    return [
        {
            "protocol": protocol,
            "nodes": nodes,
            "total_time": total_time,
            "seed": seed,
            "failure_times": failure_times,
        }
        for protocol in (
            "hc3i",
            "global-coordinated",
            "independent",
            "pessimistic-log",
        )
    ]


def _baseline_point(params: dict) -> dict:
    topology, application, timers = table1_workload(
        nodes=params["nodes"],
        total_time=params["total_time"],
        clc_period_0=20 * MINUTE,
        clc_period_1=20 * MINUTE,
        messages_1_to_0=103,
    )
    fed, results = _run_with_failures(
        topology,
        application,
        timers,
        protocol=params["protocol"],
        seed=params["seed"],
        failure_times=params["failure_times"],
        victims=[NodeId(0, 1), NodeId(1, 1)],
    )
    costs = rollback_costs(fed)
    checkpoints = sum(
        results.clc_counts(c)["total"] for c in range(topology.n_clusters)
    )
    log_bytes = results.counter("pessimistic/log_bytes")
    for c in range(topology.n_clusters):
        log_bytes += results.clusters[c].get("log_bytes", 0) or 0
    freeze = results.stats.get("global/freeze_time")
    freeze_mean = freeze["mean"] if isinstance(freeze, dict) else 0.0
    return {
        "checkpoints": checkpoints,
        "failures": costs.failures,
        "mean_clusters": costs.mean_clusters_per_failure,
        "lost_work": costs.lost_work_node_seconds,
        "log_bytes": log_bytes,
        "freeze_mean": freeze_mean,
    }


def _baseline_reduce(grid: list, points: list) -> ExperimentResult:
    rows = [
        (
            params["protocol"],
            point["checkpoints"],
            point["failures"],
            round(point["mean_clusters"], 2),
            round(point["lost_work"], 1),
            point["log_bytes"],
            round(point["freeze_mean"] * 1e3, 3),
        )
        for params, point in zip(grid, points)
    ]
    return ExperimentResult(
        name="Baseline comparison -- HC3I vs §2.2/§6 protocol families",
        description=(
            "Same workload, same failure schedule; checkpoints taken, "
            "rollback scope, lost work, log volume and freeze time."
        ),
        headers=[
            "protocol",
            "checkpoints",
            "failures",
            "clusters rolled/failure",
            "lost node-seconds",
            "log bytes",
            "freeze ms (mean)",
        ],
        rows=rows,
        paper={
            "global": "not viable at federation scale (§2.2)",
            "independent": "domino effect (§2.2)",
            "pessimistic-log": "1-node rollback but logs everything + PWD (§6)",
        },
    )


BASELINES = register(
    Experiment(
        name="baselines",
        title="Baseline comparison -- HC3I vs §2.2/§6 protocol families",
        artifact="§2.2/§6",
        grid=_baseline_grid,
        point=_baseline_point,
        reduce=_baseline_reduce,
        scaled=False,
    )
)


def baseline_comparison(
    nodes: int = 20,
    total_time: float = 4 * HOUR,
    seed: int = 42,
    failure_times: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """HC3I vs the three §2.2/§6 protocol families, identical conditions."""
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        BASELINES,
        nodes=nodes,
        total_time=total_time,
        seed=seed,
        failure_times=list(failure_times) if failure_times is not None else None,
    )


# --------------------------------------------------------------------------
# GC period sweep


def _gc_period_grid(
    periods_h: Optional[Sequence[Optional[float]]] = None,
    nodes: int = 50,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
) -> list:
    periods = list(periods_h) if periods_h else [0.5, 1, 2, 4, None]
    return [
        {
            "period_h": period,
            "nodes": nodes,
            "total_time": total_time,
            "seed": seed,
        }
        for period in periods
    ]


def _gc_period_point(params: dict) -> dict:
    period = params["period_h"]
    topology, application, timers = table2_workload(
        nodes=params["nodes"],
        total_time=params["total_time"],
        gc_period=None if period is None else period * HOUR,
    )
    fed = Federation(topology, application, timers, seed=params["seed"])
    results = fed.run()
    max_stored = 0
    for c in range(2):
        gauge = results.stats.get(f"clc/c{c}/stored")
        if isinstance(gauge, dict):
            max_stored = max(max_stored, int(gauge["max"]))
    gc_msgs = sum(
        results.counter(f"net/protocol/{k}")
        for k in ("gc_request", "gc_response", "gc_collect", "gc_local")
    )
    return {
        "max_stored": max_stored,
        "final_c0": results.stored_clcs(0),
        "final_c1": results.stored_clcs(1),
        "removed": results.counter("gc/clcs_removed"),
        "gc_msgs": gc_msgs,
    }


def _gc_period_reduce(grid: list, points: list) -> ExperimentResult:
    rows = []
    for params, point in zip(grid, points):
        period = params["period_h"]
        label = "off" if period is None else f"{period:g}h"
        rows.append(
            (
                label,
                point["max_stored"],
                point["final_c0"],
                point["final_c1"],
                point["removed"],
                point["gc_msgs"],
            )
        )
    return ExperimentResult(
        name="Ablation -- garbage collection period (§5.4 tradeoff)",
        description="Peak and final stored CLCs vs GC frequency, plus GC traffic.",
        headers=[
            "GC period",
            "peak stored",
            "final c0",
            "final c1",
            "CLCs removed",
            "GC messages",
        ],
        rows=rows,
        paper={
            "tradeoff": "frequency of garbage collection vs number of CLCs stored"
        },
    )


GC_PERIOD = register(
    Experiment(
        name="ablation-gc-period",
        title="Ablation -- garbage collection period tradeoff (§5.4)",
        artifact="§5.4",
        grid=_gc_period_grid,
        point=_gc_period_point,
        reduce=_gc_period_reduce,
        scaled=False,
    )
)


def gc_period_sweep(
    periods_h: Optional[Sequence[Optional[float]]] = None,
    nodes: int = 50,
    total_time: float = TOTAL_TIME,
    seed: int = 42,
) -> ExperimentResult:
    """Stored-CLC memory vs garbage-collection frequency (§5.4 tradeoff)."""
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        GC_PERIOD,
        periods_h=list(periods_h) if periods_h is not None else None,
        nodes=nodes,
        total_time=total_time,
        seed=seed,
    )


# --------------------------------------------------------------------------
# incremental checkpointing ablation


def _incremental_grid(
    nodes: int = 20,
    total_time: float = 4 * HOUR,
    seed: int = 42,
    fraction: float = 0.2,
) -> list:
    return [
        {
            "label": "full replicas (paper)",
            "incremental": False,
            "fraction": fraction,
            "nodes": nodes,
            "total_time": total_time,
            "seed": seed,
        },
        {
            "label": f"incremental (delta={fraction:g})",
            "incremental": True,
            "fraction": fraction,
            "nodes": nodes,
            "total_time": total_time,
            "seed": seed,
        },
    ]


def _incremental_point(params: dict) -> dict:
    options = (
        {"incremental": True, "incremental_fraction": params["fraction"]}
        if params["incremental"]
        else {}
    )
    total_time = params["total_time"]
    topology, application, timers = table1_workload(
        nodes=params["nodes"],
        total_time=total_time,
        clc_period_0=20 * MINUTE,
        clc_period_1=20 * MINUTE,
        messages_1_to_0=103,
    )
    _fed, results = _run_with_failures(
        topology,
        application,
        timers,
        protocol="hc3i",
        seed=params["seed"],
        failure_times=[total_time * 0.6],
        victims=[NodeId(0, 1)],
        protocol_options=options,
    )
    return {
        "clcs": sum(results.clc_counts(c)["total"] for c in range(2)),
        "replica_msgs": results.counter("net/protocol/replica"),
        # replica bytes = protocol bytes attributable to REPLICA messages;
        # the fabric only aggregates, so read the dedicated counter.
        "replica_bytes": results.counter("net/bytes/protocol"),
    }


def _incremental_reduce(grid: list, points: list) -> ExperimentResult:
    rows = [
        (
            params["label"],
            point["clcs"],
            point["replica_msgs"],
            point["replica_bytes"],
        )
        for params, point in zip(grid, points)
    ]
    return ExperimentResult(
        name="Ablation -- incremental stable storage",
        description=(
            "Replica traffic for full-state vs delta-based neighbour "
            "replication, same workload and one mid-run failure."
        ),
        headers=["variant", "CLCs", "replica messages", "protocol bytes"],
        rows=rows,
        paper={
            "context": "incremental two-level checkpointing variant "
            "(not evaluated in the paper; delta chains restart on rollback)"
        },
    )


INCREMENTAL = register(
    Experiment(
        name="ablation-incremental",
        title="Ablation -- incremental stable-storage replication",
        artifact="§7 extension",
        grid=_incremental_grid,
        point=_incremental_point,
        reduce=_incremental_reduce,
        scaled=False,
    )
)


def incremental_checkpoint_ablation(
    nodes: int = 20,
    total_time: float = 4 * HOUR,
    seed: int = 42,
    fraction: float = 0.2,
) -> ExperimentResult:
    """Full vs incremental stable-storage replication traffic.

    The incremental variant ships a full state once and deltas afterwards;
    a rollback restarts the chain.  Measures the replica byte volume each
    policy moves over the SAN for identical CLC schedules.
    """
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        INCREMENTAL,
        nodes=nodes,
        total_time=total_time,
        seed=seed,
        fraction=fraction,
    )


# --------------------------------------------------------------------------
# replication degree sweep


def _replication_grid(
    degrees: Sequence[int] = (0, 1, 2, 3),
    nodes: int = 20,
    total_time: float = 2 * HOUR,
    seed: int = 42,
) -> list:
    return [
        {
            "degree": degree,
            "nodes": nodes,
            "total_time": total_time,
            "seed": seed,
        }
        for degree in degrees
    ]


def _replication_point(params: dict) -> dict:
    topology, application, timers = table1_workload(
        nodes=params["nodes"],
        total_time=params["total_time"],
        clc_period_0=20 * MINUTE,
        clc_period_1=20 * MINUTE,
    )
    fed = Federation(
        topology,
        application,
        timers,
        seed=params["seed"],
        protocol_options={"replication_degree": params["degree"]},
    )
    results = fed.run()
    stored0 = results.stored_clcs(0)
    return {
        "tolerated": fed.storage[0].max_tolerated_faults(),
        "stored0": stored0,
        "states": fed.storage[0].states_held_by(0, stored0),
        "replica_msgs": results.counter("net/protocol/replica"),
    }


def _replication_reduce(grid: list, points: list) -> ExperimentResult:
    rows = [
        (
            params["degree"],
            point["tolerated"],
            point["stored0"],
            point["states"],
            point["replica_msgs"],
        )
        for params, point in zip(grid, points)
    ]
    return ExperimentResult(
        name="Ablation -- stable-storage replication degree (§7)",
        description=(
            "Each node's state is copied to k ring successors; k faults per "
            "cluster are survivable at k-fold storage and replica traffic."
        ),
        headers=[
            "degree",
            "faults tolerated",
            "stored CLCs (c0)",
            "states/node (c0)",
            "replica messages",
        ],
        rows=rows,
        paper={
            "extension": "§7: user-chosen degree of replication in stable storage"
        },
    )


REPLICATION = register(
    Experiment(
        name="ablation-replication",
        title="Ablation -- stable-storage replication degree (§7)",
        artifact="§7",
        grid=_replication_grid,
        point=_replication_point,
        reduce=_replication_reduce,
        scaled=False,
    )
)


def replication_degree_sweep(
    degrees: Sequence[int] = (0, 1, 2, 3),
    nodes: int = 20,
    total_time: float = 2 * HOUR,
    seed: int = 42,
) -> ExperimentResult:
    """Stable-storage cost vs faults tolerated (§7 extension)."""
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        REPLICATION,
        degrees=list(degrees),
        nodes=nodes,
        total_time=total_time,
        seed=seed,
    )


# --------------------------------------------------------------------------
# HC3I component ablation (leave-one-out) + ranked importance report


#: leave-one-out components: config key -> (label, how removal is modelled)
COMPONENTS = {
    "ddv-piggyback": (
        "no DDV piggyback",
        "hc3i with mode='always': a CLC is forced on every inter-cluster "
        "message instead of the SN/DDV usefulness test",
    ),
    "message-logging": (
        "no message logging",
        "hc3i with replay_enabled=False: the sender cluster must roll back "
        "so its in-transit messages are regenerated",
    ),
    "garbage-collection": (
        "no garbage collection",
        "gc_period=None: every committed CLC stays in stable storage",
    ),
    "hierarchy": (
        "no hierarchy",
        "global-coordinated: one federation-wide 2PC instead of "
        "intra-cluster CLC + inter-cluster CIC",
    ),
}

#: metrics every ablation config reports (rankable via --metric)
ABLATION_METRICS = (
    "lost_work",
    "checkpoints",
    "forced",
    "mean_clusters",
    "log_bytes",
    "stored",
)


def _components_grid(
    nodes: int = 20,
    total_time: float = 4 * HOUR,
    seed: int = 42,
    failure_times: Optional[Sequence[float]] = None,
) -> list:
    failure_times = list(
        failure_times or [total_time * 0.45, total_time * 0.8]
    )
    configs = [("baseline", "full hc3i", "hc3i", None, True)]
    for key, (label, _how) in COMPONENTS.items():
        protocol, options, gc = "hc3i", None, True
        if key == "ddv-piggyback":
            options = {"mode": "always"}
        elif key == "message-logging":
            options = {"replay_enabled": False}
        elif key == "garbage-collection":
            gc = False
        elif key == "hierarchy":
            protocol = "global-coordinated"
        configs.append((key, label, protocol, options, gc))
    return [
        {
            "config": key,
            "label": label,
            "protocol": protocol,
            "protocol_options": options,
            "gc": gc,
            "nodes": nodes,
            "total_time": total_time,
            "seed": seed,
            "failure_times": failure_times,
        }
        for key, label, protocol, options, gc in configs
    ]


def _components_point(params: dict) -> dict:
    # The pipeline workload keeps inter-cluster traffic flowing at every
    # scale, so each component has observable work to do (table1 at tiny
    # scale exchanges almost no inter-cluster messages and would leave the
    # DDV/logging ablations without signal).
    topology, application, timers = pipeline_workload(
        nodes_per_stage=params["nodes"],
        n_stages=3,
        total_time=params["total_time"],
        skip_probability=0.02,
        gc_period=HOUR if params["gc"] else None,
    )
    fed, results = _run_with_failures(
        topology,
        application,
        timers,
        protocol=params["protocol"],
        seed=params["seed"],
        failure_times=params["failure_times"],
        victims=[NodeId(0, 1), NodeId(1, 1)],
        protocol_options=params["protocol_options"],
    )
    costs = rollback_costs(fed)
    n = topology.n_clusters
    checkpoints = sum(results.clc_counts(c)["total"] for c in range(n))
    forced = sum(results.clc_counts(c)["forced"] for c in range(n))
    stored = sum(results.stored_clcs(c) for c in range(n))
    log_bytes = 0
    for c in range(n):
        log_bytes += results.clusters[c].get("log_bytes", 0) or 0
    return {
        "checkpoints": checkpoints,
        "forced": forced,
        "stored": stored,
        "mean_clusters": costs.mean_clusters_per_failure,
        "lost_work": costs.lost_work_node_seconds,
        "log_bytes": log_bytes,
    }


def _components_reduce(grid: list, points: list) -> ExperimentResult:
    rows = [
        (
            params["label"],
            point["checkpoints"],
            point["forced"],
            point["stored"],
            round(point["mean_clusters"], 2),
            round(point["lost_work"], 1),
            point["log_bytes"],
        )
        for params, point in zip(grid, points)
    ]
    labels = [params["label"] for params in grid]
    series = {
        metric: [point[metric] for point in points]
        for metric in ABLATION_METRICS
    }
    result = ExperimentResult(
        name="Ablation -- HC3I component importance (leave-one-out)",
        description=(
            "Full HC3I vs HC3I minus one component on the 3-stage pipeline "
            "workload, same failure schedule; the lost-work delta ranks how "
            "much each component buys."
        ),
        headers=[
            "configuration",
            "checkpoints",
            "forced",
            "stored",
            "clusters/failure",
            "lost node-seconds",
            "log bytes",
        ],
        rows=rows,
        x_label="configuration",
        xs=labels,
        series=series,
        paper={
            "ddv-piggyback": "§3.2 usefulness test",
            "message-logging": "§3.3 optimistic sender log",
            "garbage-collection": "§5.4 storage tradeoff",
            "hierarchy": "§2.2 two-level design",
        },
    )
    ranking = component_importance(result)
    result.notes.append(
        "importance (lost-work delta when removed): "
        + ", ".join(
            f"{entry['component']} {entry['delta']:+.1f}"
            for entry in ranking["components"]
        )
    )
    return result


COMPONENT_ABLATION = register(
    Experiment(
        name="ablation-components",
        title="Ablation -- HC3I component importance (leave-one-out)",
        artifact="§3.2/§3.3/§5.4 synthesis",
        grid=_components_grid,
        point=_components_point,
        reduce=_components_reduce,
        scaled=True,
    )
)


def hc3i_component_ablation(
    nodes: int = 20,
    total_time: float = 4 * HOUR,
    seed: int = 42,
    failure_times: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Leave-one-out over HC3I's components, with a ranked importance note."""
    from repro.experiments.runner import run_grid_inline

    return run_grid_inline(
        COMPONENT_ABLATION,
        nodes=nodes,
        total_time=total_time,
        seed=seed,
        failure_times=list(failure_times) if failure_times is not None else None,
    )


def component_importance(result: ExperimentResult, metric: str = "lost_work") -> dict:
    """Ranked leave-one-out importance from an ``ablation-components`` result.

    Importance of a component = metric(without it) - metric(baseline):
    removing something load-bearing makes the metric worse (positive
    delta for cost metrics), so the largest delta ranks first.  A
    negative delta flags a component that *hurt* on this workload.
    """
    if metric not in result.series:
        raise KeyError(
            f"unknown ablation metric {metric!r}; "
            f"choose from {sorted(result.series)}"
        )
    values = result.series[metric]
    baseline_label, baseline = result.xs[0], values[0]
    entries = []
    for label, value in zip(result.xs[1:], values[1:]):
        component = label[3:] if label.startswith("no ") else label
        delta = value - baseline
        entries.append(
            {
                "component": component,
                "config": label,
                "value": value,
                "delta": delta,
                "harmful": delta < 0,
            }
        )
    entries.sort(key=lambda e: (-e["delta"], e["component"]))
    for rank, entry in enumerate(entries, 1):
        entry["rank"] = rank
    return {
        "metric": metric,
        "baseline_config": baseline_label,
        "baseline_value": baseline,
        "components": entries,
    }


def render_importance_markdown(ranking: dict) -> str:
    """Markdown component-importance report for one :func:`component_importance`."""
    metric = ranking["metric"]
    lines = [
        f"# HC3I component importance (metric: `{metric}`)",
        "",
        f"Baseline `{ranking['baseline_config']}`: "
        f"{ranking['baseline_value']:g} {metric}",
        "",
        "| rank | component | without it | delta | verdict |",
        "| --- | --- | --- | --- | --- |",
    ]
    for entry in ranking["components"]:
        if entry["delta"] > 0:
            verdict = "load-bearing (removal costs)"
        elif entry["delta"] < 0:
            verdict = "harmful on this workload"
        else:
            verdict = "neutral here"
        lines.append(
            f"| {entry['rank']} | {entry['component']} | {entry['value']:g} "
            f"| {entry['delta']:+g} | {verdict} |"
        )
    lines += [
        "",
        "Importance = metric(without component) - metric(baseline); the",
        "largest increase ranks first.",
    ]
    return "\n".join(lines)
