#!/usr/bin/env python
"""Compare HC3I against the protocol families of §2.2/§6.

Same federation, same workload, same two failures, four protocols:

* ``hc3i``               -- the paper's hierarchical protocol,
* ``global-coordinated`` -- one two-phase commit across the federation,
* ``independent``        -- uncoordinated checkpoints, domino rollback,
* ``pessimistic-log``    -- MPICH-V-style log-everything, 1-node rollback.

Run:  python examples/protocol_comparison.py
"""

from repro import Federation, table1_workload
from repro.analysis.reporting import format_table
from repro.analysis.rollback_cost import rollback_costs
from repro.network.message import NodeId
from repro.sim.trace import TraceLevel

PROTOCOLS = ["hc3i", "global-coordinated", "independent", "pessimistic-log"]


def run(protocol: str, seed: int = 13):
    topology, application, timers = table1_workload(
        nodes=10,
        total_time=2 * 3600.0,
        clc_period_0=10 * 60.0,
        clc_period_1=10 * 60.0,
        messages_1_to_0=103,   # chatty in both directions
    )
    fed = Federation(
        topology,
        application,
        timers,
        protocol=protocol,
        seed=seed,
        trace_level=TraceLevel.PROTOCOL,
    )
    fed.start()
    fed.sim.schedule_at(3000.0, fed.inject_failure, NodeId(0, 3))
    fed.sim.schedule_at(5500.0, fed.inject_failure, NodeId(1, 2))
    results = fed.run()
    return fed, results


def main() -> None:
    rows = []
    for protocol in PROTOCOLS:
        fed, results = run(protocol)
        costs = rollback_costs(fed)
        checkpoints = sum(results.clc_counts(c)["total"] for c in range(2))
        log_bytes = results.counter("pessimistic/log_bytes") + sum(
            results.clusters[c].get("log_bytes", 0) or 0 for c in range(2)
        )
        rows.append((
            protocol,
            checkpoints,
            costs.failures,
            f"{costs.mean_clusters_per_failure:.1f}",
            f"{costs.lost_work_node_seconds:.0f}",
            costs.replays,
            log_bytes,
        ))
    print(format_table(
        [
            "protocol",
            "checkpoints",
            "failures",
            "clusters rolled/failure",
            "lost node-sec",
            "replays",
            "log bytes",
        ],
        rows,
        title="Two failures, identical workload",
    ))
    print()
    print("HC3I keeps rollback scope near one cluster thanks to sender-side")
    print("logs; global coordination rolls everyone back; independent")
    print("checkpointing dominoes; pessimistic logging rolls back a single")
    print("node but logs every message and needs the PWD assumption.")


if __name__ == "__main__":
    main()
