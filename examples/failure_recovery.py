#!/usr/bin/env python
"""Walk through the paper's Figure 5: a fault and the rollback cascade.

Re-runs the worked example of §4 with deterministic, scripted messages
(m1..m5), crashes a node of the middle cluster, and narrates the protocol's
reaction step by step: forced CLCs, acknowledgement SNs, the rollback
alert cascade, and the recovery line it computes.

Run:  python examples/failure_recovery.py
"""

from repro.experiments.figure5 import figure5_scenario

PAPER_CLUSTER = {0: "cluster 1", 1: "cluster 2", 2: "cluster 3"}  # paper numbering


def main() -> None:
    outcome = figure5_scenario()

    print("== Before the fault (t = 75s) ==")
    for c in range(3):
        print(
            f"  {PAPER_CLUSTER[c]}: SN={outcome.pre_fault_sns[c]} "
            f"DDV={outcome.pre_fault_ddvs[c]} "
            f"forced CLCs={outcome.pre_fault_forced[c]}"
        )
    print()
    print("  message acknowledgements (= receiver SN + 1 at arrival):")
    for label in ("m1", "m2", "m3", "m4", "m5"):
        print(f"    {label}: ack SN {outcome.acks[label]}")
    print()
    print("  m1, m3, m4, m5 forced CLCs; m2 did not (its piggybacked SN")
    print("  was not greater than the receiver's DDV entry).")
    print()

    print("== Fault in", PAPER_CLUSTER[1], "at t = 80s ==")
    for cluster, to_sn in outcome.rollbacks:
        print(f"  {PAPER_CLUSTER[cluster]} rolled back to its CLC with SN {to_sn}")
    print()
    print("  alert cascade (faulty cluster, alert SN):", [
        (PAPER_CLUSTER[f], sn) for f, sn in outcome.alerts
    ])
    print(f"  logged messages replayed: {outcome.replays}")
    print()

    print("== After recovery ==")
    for c in range(3):
        print(f"  {PAPER_CLUSTER[c]}: SN={outcome.post_fault_sns[c]}")
    print()
    print("The cascade matches §4: the faulty cluster restored its last CLC;")
    print("cluster 3 depended on lost states (DDV entry >= alert SN) and")
    print("rolled back to the oldest CLC carrying that dependency; its alert")
    print("then pulled cluster 1 back the same way; nobody rolled back twice.")
    print()

    from repro.analysis.timeline import render_timeline

    print("== The execution, Figure 5 style ==")
    print(render_timeline(outcome.federation))


if __name__ == "__main__":
    main()
