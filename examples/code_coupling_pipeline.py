#!/usr/bin/env python
"""The Figure 1 scenario: Simulation -> Treatment -> Display.

A code-coupling application spread over three clusters, each hosting one
module; results stream downstream over the federation's slow links.  The
example contrasts the paper's protocol with the §7 *transitive* variant
(whole-DDV piggybacking) and the naive force-on-every-message policy,
showing how each handles pipelined inter-cluster dependencies.

Run:  python examples/code_coupling_pipeline.py
"""

from repro import Federation, pipeline_workload
from repro.analysis.reporting import format_table

STAGES = ["simulation", "treatment", "display"]


def run(protocol: str, seed: int = 11):
    topology, application, timers = pipeline_workload(
        nodes_per_stage=10,
        n_stages=3,
        total_time=2 * 3600.0,
        mean_compute=90.0,
        forward_probability=0.04,
        clc_period=10 * 60.0,
    )
    fed = Federation(topology, application, timers, protocol=protocol, seed=seed)
    return fed, fed.run()


def main() -> None:
    comparison = []
    for protocol in ("hc3i", "hc3i-transitive", "cic-always"):
        fed, results = run(protocol)
        forced = [results.clc_counts(c)["forced"] for c in range(3)]
        total = [results.clc_counts(c)["total"] for c in range(3)]
        downstream = [results.app_messages(0, 1), results.app_messages(1, 2)]
        comparison.append((
            protocol,
            *forced,
            sum(forced),
            sum(total),
            sum(downstream),
        ))
        if protocol == "hc3i":
            print("Per-stage view (hc3i):")
            rows = [
                (
                    STAGES[c],
                    results.clc_counts(c)["unforced"],
                    results.clc_counts(c)["forced"],
                    results.stored_clcs(c),
                )
                for c in range(3)
            ]
            print(format_table(
                ["stage", "unforced CLCs", "forced CLCs", "stored"], rows
            ))
            print()

    print(format_table(
        [
            "protocol",
            "forced@sim",
            "forced@treat",
            "forced@disp",
            "forced total",
            "CLC total",
            "downstream msgs",
        ],
        comparison,
        title="Dependency-tracking policies on the pipeline",
    ))
    print()
    print("Reading the table: the display stage only hears from treatment,")
    print("so with plain SN piggybacking it re-checkpoints whenever treatment")
    print("checkpointed; the transitive variant also learns simulation's SNs")
    print("through treatment, while force-always pays one CLC per message.")


if __name__ == "__main__":
    main()
