#!/usr/bin/env python
"""Quickstart: run HC3I on a small two-cluster federation.

Builds the paper's two-cluster code-coupling workload at reduced scale
(10 nodes per cluster, one simulated hour), runs the hierarchical
checkpointing protocol, and prints what it did: application traffic,
cluster-level checkpoints (unforced vs forced by inter-cluster messages),
and protocol overhead.

Run:  python examples/quickstart.py
"""

from repro import Federation, table1_workload
from repro.analysis.reporting import format_table


def main() -> None:
    # The paper's §5.2 workload: a simulation on cluster 0 feeding a trace
    # processor on cluster 1, scaled down for a quick run.
    topology, application, timers = table1_workload(
        nodes=10,
        total_time=3600.0,       # one simulated hour
        clc_period_0=10 * 60.0,  # unforced CLC every 10 min in cluster 0
        clc_period_1=15 * 60.0,  # and every 15 min in cluster 1
    )

    fed = Federation(topology, application, timers, protocol="hc3i", seed=7)
    results = fed.run()

    print(f"simulated {results.duration:g}s in {results.events} events\n")

    rows = [(f"cluster {i}", f"cluster {j}", count)
            for (i, j), count in sorted(results.messages.items())]
    print(format_table(["from", "to", "messages"], rows,
                       title="Application traffic"))
    print()

    clc_rows = []
    for c in range(2):
        counts = results.clc_counts(c)
        clc_rows.append((
            f"cluster {c}",
            counts["initial"],
            counts["unforced"],
            counts["forced"],
            results.stored_clcs(c),
        ))
    print(format_table(
        ["cluster", "initial", "unforced", "forced", "stored now"],
        clc_rows,
        title="Cluster Level Checkpoints (CLCs)",
    ))
    print()
    print(f"protocol control messages: {results.protocol_messages}")
    print(f"inter-cluster app messages logged by senders: "
          f"{sum(fed.protocol.cluster_states[c].sent_log.max_entries for c in range(2))} (peak)")

    # The forced CLCs are the communication-induced part of the protocol:
    # each one was triggered by a message arriving from a cluster that had
    # checkpointed since its previous message.
    forced_total = sum(results.clc_counts(c)["forced"] for c in range(2))
    print(f"\nforced CLCs: {forced_total} "
          "(taken before delivering a dependency-carrying message)")


if __name__ == "__main__":
    main()
