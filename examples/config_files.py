#!/usr/bin/env python
"""Driving the simulator exactly as the paper describes (§5.1).

"Our simulator is configurable.  The user has to provide three files: a
topology file, an application file and a timer file."

This example loads the three JSON files in ``examples/scenario_files/``,
runs the federation, and prints the lowest-trace-level output ("statistical
data, as messages count in clusters and between each cluster, number of
stored CLCs, number of protocol messages").  The same files work with the
CLI:

    hc3i-sim --topology examples/scenario_files/topology.json \
             --application examples/scenario_files/application.json \
             --timers examples/scenario_files/timers.json

Run:  python examples/config_files.py
"""

from pathlib import Path

from repro import Federation, load_scenario
from repro.analysis.reporting import format_table

FILES = Path(__file__).resolve().parent / "scenario_files"


def main() -> None:
    scenario = load_scenario(
        FILES / "topology.json",
        FILES / "application.json",
        FILES / "timers.json",
        seed=2004,
    )
    print(f"loaded: {scenario.topology.n_clusters} clusters, "
          f"{scenario.topology.total_nodes} nodes, "
          f"{scenario.application.total_time:g}s application, "
          f"protocol={scenario.protocol}")

    fed = Federation(
        scenario.topology,
        scenario.application,
        scenario.timers,
        protocol=scenario.protocol,
        protocol_options=scenario.protocol_options,
        seed=scenario.seed,
    )
    results = fed.run()

    print()
    rows = [(f"cluster {i}", f"cluster {j}", n)
            for (i, j), n in sorted(results.messages.items())]
    print(format_table(["sender", "receiver", "messages"], rows,
                       title="Application messages (Table 1 format)"))
    print()
    clc_rows = [
        (
            f"cluster {c}",
            results.clc_counts(c)["unforced"],
            results.clc_counts(c)["forced"],
            results.stored_clcs(c),
        )
        for c in range(scenario.topology.n_clusters)
    ]
    print(format_table(
        ["cluster", "unforced CLCs", "forced CLCs", "stored after GC"],
        clc_rows,
    ))
    print()
    print(f"protocol messages: {results.protocol_messages}")
    gc_rounds = len(results.gc_series(0))
    print(f"garbage collections: {gc_rounds}")


if __name__ == "__main__":
    main()
