#!/usr/bin/env python
"""Garbage collection at work (§3.5, Tables 2 & 3).

Runs the Table 2 scenario at reduced scale: heavy bidirectional
inter-cluster traffic makes both clusters accumulate forced CLCs and
logged messages; every (simulated) 30 minutes the centralized collector
simulates a failure in each cluster, computes the smallest SN anyone might
roll back to, and prunes everything older.

Also demonstrates the §7 "more distributed" token-ring collector.

Run:  python examples/garbage_collection.py
"""

from repro import Federation, table2_workload
from repro.analysis.reporting import format_table


def run(gc_mode: str, seed: int = 5):
    topology, application, timers = table2_workload(
        nodes=10,
        total_time=2 * 3600.0,
        gc_period=30 * 60.0,
        clc_period=10 * 60.0,
    )
    fed = Federation(
        topology,
        application,
        timers,
        seed=seed,
        protocol_options={"gc_mode": gc_mode},
    )
    return fed, fed.run()


def main() -> None:
    for gc_mode in ("centralized", "distributed"):
        fed, results = run(gc_mode)
        rows = []
        series0 = results.gc_series(0)
        series1 = results.gc_series(1)
        for k, ((t, b0, a0), (_t1, b1, a1)) in enumerate(zip(series0, series1), 1):
            rows.append((k, f"{t/60:.0f} min", b0, a0, b1, a1))
        print(format_table(
            ["GC #", "at", "c0 before", "c0 after", "c1 before", "c1 after"],
            rows,
            title=f"-- {gc_mode} collector --",
        ))
        gc_msgs = sum(
            results.counter(f"net/protocol/{k}")
            for k in ("gc_request", "gc_response", "gc_collect", "gc_local")
        )
        print(f"CLCs removed: {results.counter('gc/clcs_removed')}, "
              f"log entries removed: {results.counter('gc/log_entries_removed')}, "
              f"GC messages: {gc_msgs}")
        print()

    print("Old CLCs are removed once no reachable single-failure recovery")
    print("line can need them; logged messages acknowledged below the")
    print("receiver's bound go with them.  The distributed variant trades")
    print("the central gather/scatter for a two-lap token ring.")


if __name__ == "__main__":
    main()
