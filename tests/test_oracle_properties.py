"""Property suite: random traffic + random crash points, every protocol.

For each registered protocol family, hypothesis draws a scenario -- a
workload seed (which drives the chatty application's random communication
pattern), a federation shape and one or two crash points at arbitrary
times on arbitrary non-leader nodes -- and the run must satisfy two
properties:

* **consistency** -- the protocol-agnostic oracle
  (:mod:`tests.oracles.consistency`) finds no orphan, duplicate or lost
  message on the surviving timeline;
* **per-seed determinism** -- repeating the identical scenario produces a
  byte-identical run: the kernel dispatch-stream digest (every event's
  IEEE-754 timestamp, sequence number and callback) and the protocol's
  full stats snapshot both match exactly.

Together these turn "the baselines look plausible" into a checked
invariant over a randomized scenario space, not just the golden schedules.
"""

import itertools
import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.network.message as msgmod
from repro.core.protocol import protocol_names
from repro.network.message import NodeId
from repro.sim.trace_digest import TraceDigest
from tests.conftest import make_federation
from tests.oracles.consistency import assert_consistent, attach_oracle

PROTOCOL_CASES = [
    ("hc3i", None),
    ("hc3i-transitive", None),
    ("cic-always", None),
    ("global-coordinated", None),
    ("independent", None),
    ("pessimistic-log", None),
    ("min-process", None),
    ("clc-cic", {"predicate": "bcs"}),
    ("clc-cic", {"predicate": "bcs-aftersend"}),
]

CASE_IDS = [
    name if not opts else f"{name}-{opts['predicate']}"
    for name, opts in PROTOCOL_CASES
]

TOTAL_TIME = 400.0


def test_property_cases_cover_registry():
    assert {name for name, _ in PROTOCOL_CASES} == set(protocol_names())


@st.composite
def scenario(draw):
    """A workload seed, a federation shape and 1-2 spaced crash points."""
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n_clusters = draw(st.integers(min_value=2, max_value=3))
    n_crashes = draw(st.integers(min_value=1, max_value=2))
    crashes = []
    t = 10.0
    for _ in range(n_crashes):
        t += draw(st.floats(min_value=0.0, max_value=150.0))
        cluster = draw(st.integers(0, n_clusters - 1))
        node = draw(st.integers(1, 2))  # non-leader victims
        crashes.append((t, NodeId(cluster, node)))
        t += 30.0  # let the previous recovery finish
    return seed, n_clusters, crashes


def run_scenario(protocol, options, seed, n_clusters, crashes):
    msgmod._msg_ids = itertools.count(1)
    fed = make_federation(
        n_clusters=n_clusters,
        nodes=3,
        total_time=TOTAL_TIME,
        clc_period=90.0,
        protocol=protocol,
        protocol_options=options,
        seed=seed,
        chatty=True,
    )
    oracle = attach_oracle(fed)
    digest = TraceDigest()
    fed.sim.attach_digest(digest)
    fed.start()
    for t, victim in crashes:
        if t > fed.sim.now:
            fed.sim.run(until=t)
        node = fed.node(victim)
        if node.up:
            fed.inject_failure(victim)
    fed.run()
    return fed, oracle, digest


def run_fingerprint(fed, digest):
    """Everything a repeat run must reproduce byte-for-byte."""
    n = fed.topology.n_clusters
    return json.dumps(
        {
            "digest": digest.hexdigest(),
            "events": digest.events,
            "stats": fed.protocol.stats.snapshot(),
            "clusters": [fed.protocol.cluster_summary(c) for c in range(n)],
        },
        sort_keys=True,
        default=repr,
    ).encode()


@pytest.mark.parametrize(("protocol", "options"), PROTOCOL_CASES, ids=CASE_IDS)
@given(params=scenario())
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_consistent_and_deterministic(protocol, options, params):
    seed, n_clusters, crashes = params
    fed, oracle, digest = run_scenario(protocol, options, seed, n_clusters, crashes)
    assert_consistent(fed, oracle)
    first = run_fingerprint(fed, digest)

    fed2, oracle2, digest2 = run_scenario(
        protocol, options, seed, n_clusters, crashes
    )
    assert run_fingerprint(fed2, digest2) == first, (
        f"{protocol}: same seed produced a different run"
    )
