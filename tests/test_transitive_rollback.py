"""Rollback and recovery under transitive (whole-DDV) dependency tracking.

The §7 extension changes how dependencies are *learned* but not the
rollback rules; these tests pin the interaction: transitively learned
entries trigger rollbacks exactly like directly learned ones.
"""

from repro.analysis.consistency import check_invariants, verify_consistency
from repro.app.process import scripted_sender_factory
from repro.core.recovery_line import cascade_targets
from repro.network.message import NodeId
from tests.conftest import make_federation


def chain_fed(**kw):
    """c0 -> c1 at t=10 (forces), then c1 -> c2 at t=40 (forces, carries
    c0's entry transitively)."""
    return make_federation(
        n_clusters=3,
        nodes=2,
        clc_period=None,
        total_time=400.0,
        protocol_options={"mode": "ddv"},
        app_factory=scripted_sender_factory({
            NodeId(0, 0): [(10.0, NodeId(1, 0), 100)],
            NodeId(1, 0): [(40.0, NodeId(2, 0), 100)],
        }),
        **kw,
    )


class TestTransitiveDependencies:
    def test_indirect_entry_recorded(self):
        fed = chain_fed()
        fed.start()
        fed.sim.run(until=100.0)
        cs2 = fed.protocol.cluster_states[2]
        # c2 learned c0's SN through c1's piggybacked DDV
        assert cs2.ddv[0] == 1
        assert cs2.ddv[1] == 2

    def test_failure_of_transitive_source_rolls_receiver(self):
        """c0 fails; c2 never heard from c0 directly but depends on it
        through c1 -- and must roll back."""
        fed = chain_fed()
        fed.start()
        fed.sim.run(until=100.0)
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=400.0)
        # c0 rolled to its initial CLC (sn 1): alert(0, 1)
        # c1: ddv[0]=1 >= 1 -> rolls to its forced CLC (sn 2)
        # c2: ddv[0]=1 >= 1 -> rolls to its forced CLC (sn 2), which is
        #     exactly where the transitive entry was stamped
        assert fed.tracer.first("rollback", cluster=1) is not None
        assert fed.tracer.first("rollback", cluster=2) is not None
        report = verify_consistency(fed)
        assert report.ok, str(report)
        assert check_invariants(fed) == []

    def test_live_cascade_matches_pure_model_in_ddv_mode(self):
        fed = chain_fed()
        fed.start()
        fed.sim.run(until=100.0)
        states = fed.protocol.cluster_states
        stored = [cs.store.ddv_list() for cs in states]
        current = [cs.ddv_tuple() for cs in states]
        predicted = cascade_targets(stored, current, failed=0)
        fed.inject_failure(NodeId(0, 1))
        fed.sim.run(until=400.0)
        for c, target in enumerate(predicted):
            rec = fed.tracer.first("rollback", cluster=c)
            if target is None:
                assert rec is None
            else:
                assert rec is not None and rec["to_sn"] == target

    def test_ghost_check_uses_source_entry(self):
        """A replayed/late message in DDV mode is judged by the sender's
        own entry, not by the transitively carried ones."""
        fed = chain_fed()
        fed.start()
        fed.sim.run(until=100.0)
        cs2 = fed.protocol.cluster_states[2]
        # record a cut for c1 (as if c1 rolled back to sn 1)
        cs2.record_alert(faulty=1, alert_sn=1, new_epoch=1)
        from repro.core.hc3i import Piggyback

        ghost = Piggyback(sn=2, epoch=0, ddv=(1, 2, 0))
        fine = Piggyback(sn=0, epoch=0, ddv=(1, 0, 0))
        assert cs2.is_ghost(1, ghost)
        assert not cs2.is_ghost(1, fine)

    def test_transitive_consistency_with_failures(self):
        """Stochastic run in DDV mode with a failure stays consistent."""
        fed = make_federation(
            n_clusters=3, nodes=2, clc_period=80.0, total_time=1200.0,
            chatty=True, seed=77, protocol_options={"mode": "ddv"},
        )
        fed.start()
        fed.sim.run(until=600.0)
        fed.inject_failure(NodeId(1, 1))
        fed.run()
        report = verify_consistency(fed)
        assert report.ok, str(report)
        assert check_invariants(fed) == []


class TestGcRollbackRaces:
    def test_stale_gc_response_ignored(self):
        """A GC response from a previous round id must not corrupt the
        current round."""
        fed = make_federation(
            nodes=2, clc_period=60.0, gc_period=None, total_time=600.0,
            chatty=True,
        )
        fed.start()
        fed.sim.run(until=300.0)
        gc = fed.protocol.garbage_collector
        gc.collect_now()
        # forge a stale response (round id from the past)
        from repro.network.message import Message, MessageKind

        stale = Message(
            src=NodeId(1, 0), dst=NodeId(0, 0), kind=MessageKind.GC_RESPONSE,
            size=10,
            payload={"round": -99, "data": {"cluster": 1, "epoch": 0,
                                            "current_ddv": (0, 0), "ddvs": []}},
        )
        gc.on_message(fed.node(NodeId(0, 0)), stale)
        fed.sim.run(until=400.0)
        # the real round still completed correctly
        assert gc.rounds_completed == 1

    def test_gc_during_recovery_deferred(self):
        """The collector does not start a round while its own cluster is
        recovering."""
        fed = make_federation(
            nodes=2, clc_period=60.0, gc_period=None, total_time=800.0,
            chatty=True,
        )
        fed.start()
        fed.sim.run(until=300.0)
        fed.inject_failure(NodeId(0, 0))
        fed.sim.run(until=300.6)  # detection done, recovery in progress
        assert fed.protocol.cluster_states[0].recovering
        gc = fed.protocol.garbage_collector
        gc.collect_now()
        assert gc.rounds_started == 0  # refused while recovering
        fed.run()
        gc.collect_now()  # after recovery it works
        fed.sim.run(until=fed.sim.now)  # settle without advancing far

    def test_gc_applies_after_failure_recovered(self):
        fed = make_federation(
            nodes=2, clc_period=60.0, gc_period=None, total_time=1200.0,
            chatty=True, seed=12,
        )
        fed.start()
        fed.sim.run(until=400.0)
        fed.inject_failure(NodeId(1, 1))
        fed.sim.run(until=800.0)  # fully recovered
        stored_before = len(fed.protocol.cluster_states[0].store)
        fed.protocol.collect_garbage()
        fed.run()
        assert fed.protocol.garbage_collector.rounds_completed == 1
        assert len(fed.protocol.cluster_states[0].store) <= stored_before
        assert check_invariants(fed) == []
