"""Error paths and less-travelled configurations."""

import json

import pytest

from repro.cluster.federation import Federation
from repro.config.application import ApplicationConfig, ClusterAppSpec
from repro.config.loader import load_scenario
from repro.config.timers import TimersConfig
from repro.network.message import NodeId
from repro.network.topology import ClusterSpec, LinkSpec, Topology
from tests.conftest import make_federation


class TestAsymmetricTopologies:
    def build(self):
        """Three clusters with deliberately different pairwise links."""
        fast = LinkSpec(latency=1e-4, bandwidth=1e9)
        slow = LinkSpec(latency=5e-2, bandwidth=1e6)
        return Topology(
            clusters=[ClusterSpec(f"c{i}", 2) for i in range(3)],
            inter_links={(0, 1): fast, (1, 2): slow},
            default_inter_link=LinkSpec(latency=1e-3, bandwidth=1e8),
        )

    def test_per_pair_links_used(self):
        topo = self.build()
        fast_delay = topo.delay(NodeId(0, 0), NodeId(1, 0), 1000)
        slow_delay = topo.delay(NodeId(1, 0), NodeId(2, 0), 1000)
        default_delay = topo.delay(NodeId(0, 0), NodeId(2, 0), 1000)
        assert fast_delay < default_delay < slow_delay

    def test_protocol_works_across_heterogeneous_links(self):
        topo = self.build()
        app = ApplicationConfig(
            clusters=[
                ClusterAppSpec(mean_compute=20.0, send_probabilities=[0.7, 0.2, 0.1]),
                ClusterAppSpec(mean_compute=20.0, send_probabilities=[0.1, 0.8, 0.1]),
                ClusterAppSpec(mean_compute=20.0, send_probabilities=[0.1, 0.1, 0.8]),
            ],
            total_time=600.0,
        )
        fed = Federation(topo, app, TimersConfig(clc_periods=[120.0] * 3), seed=3)
        results = fed.run()
        for c in range(3):
            assert results.clc_counts(c)["total"] >= 1
        from repro.analysis.consistency import check_invariants

        assert check_invariants(fed) == []

    def test_slow_link_delays_alerts_not_correctness(self):
        """Rollback alerts over a 50 ms link still compute the same line."""
        topo = self.build()
        app = ApplicationConfig(
            clusters=[
                ClusterAppSpec(mean_compute=15.0, send_probabilities=[0.6, 0.2, 0.2]),
                ClusterAppSpec(mean_compute=15.0, send_probabilities=[0.2, 0.6, 0.2]),
                ClusterAppSpec(mean_compute=15.0, send_probabilities=[0.2, 0.2, 0.6]),
            ],
            total_time=1200.0,
        )
        fed = Federation(
            topo, app, TimersConfig(clc_periods=[100.0] * 3), seed=5
        )
        fed.start()
        fed.sim.run(until=600.0)
        fed.inject_failure(NodeId(1, 1))
        fed.run()
        from repro.analysis.consistency import verify_consistency

        report = verify_consistency(fed)
        assert report.ok, str(report)


class TestLoaderErrors:
    def test_malformed_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            load_scenario(bad, bad, bad)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_scenario(tmp_path / "nope.json", tmp_path / "a", tmp_path / "b")

    def test_missing_required_keys(self, tmp_path):
        topo = tmp_path / "t.json"
        topo.write_text(json.dumps({"clusters": [{"name": "a", "nodes": 1}]}))
        app = tmp_path / "a.json"
        app.write_text(json.dumps({"clusters": []}))  # total_time missing
        timers = tmp_path / "ti.json"
        timers.write_text("{}")
        with pytest.raises((KeyError, ValueError)):
            load_scenario(topo, app, timers)


class TestFederationValidation:
    def test_cluster_count_mismatch(self):
        topo = Topology(clusters=[ClusterSpec("a", 1)])
        app = ApplicationConfig(
            clusters=[ClusterAppSpec(mean_compute=1.0)] * 2, total_time=10.0
        )
        with pytest.raises(ValueError):
            Federation(topo, app, TimersConfig())

    def test_run_until_beyond_total_time(self):
        fed = make_federation(total_time=100.0)
        results = fed.run(until=500.0)
        # the clock advances to the requested horizon; the app simply
        # finished at its total time
        assert results.duration == 500.0

    def test_double_start_is_idempotent(self):
        fed = make_federation(total_time=50.0)
        fed.start()
        fed.start()
        results = fed.run()
        assert results.clc_counts(0)["initial"] == 1

    def test_results_before_run(self):
        fed = make_federation(total_time=50.0)
        results = fed.results()  # legal: empty snapshot
        assert results.duration == 0.0
        assert results.events == 0


class TestMessageKindCoverage:
    def test_all_kinds_have_accounting_category(self):
        """Every message kind is either app-like or protocol traffic."""
        from repro.network.message import MessageKind

        for kind in MessageKind:
            assert isinstance(kind.is_app, bool)

    def test_unhandled_kind_raises_in_agent(self):
        fed = make_federation(total_time=50.0)
        fed.start()
        fed.sim.run(until=5.0)
        from repro.network.message import Message, MessageKind

        agent = fed.node(NodeId(0, 0)).agent
        # HEARTBEAT is filtered at the node layer; feeding it directly to
        # the HC3I agent is a programming error and must fail loudly
        msg = Message(
            src=NodeId(0, 1), dst=NodeId(0, 0),
            kind=MessageKind.HEARTBEAT, size=8,
        )
        with pytest.raises(ValueError):
            agent.on_receive(msg)
