"""Additional edge-case coverage for the simulation substrate."""

import pytest

from repro.sim.process import Interrupt, Process, Signal, Timeout
from repro.sim.random import RandomStreams
from repro.sim.timers import PeriodicTimer


class TestKernelEdges:
    def test_event_at_exactly_now(self, sim):
        seen = []
        sim.schedule(5.0, lambda: sim.schedule_at(sim.now, seen.append, 1))
        sim.run()
        assert seen == [1]

    def test_cancel_already_fired_event(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.run()
        sim.cancel(ev)  # no-op, no error

    def test_callback_raising_propagates_and_clock_holds(self, sim):
        sim.schedule(3.0, lambda: (_ for _ in ()).throw(RuntimeError("x")))
        with pytest.raises(RuntimeError):
            sim.run()
        assert sim.now == 3.0
        # the simulator is usable again afterwards
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.run()
        assert seen == [1]

    def test_run_until_zero(self, sim):
        seen = []
        sim.schedule(0.0, seen.append, 1)
        sim.schedule(1.0, seen.append, 2)
        sim.run(until=0.0)
        assert seen == [1]
        assert sim.now == 0.0

    def test_many_cancellations_keep_heap_clean(self, sim):
        events = [sim.schedule(float(i), lambda: None) for i in range(100)]
        for ev in events[::2]:
            sim.cancel(ev)
        assert sim.pending == 50
        sim.run()
        assert sim.processed == 50


class TestProcessEdges:
    def test_generator_returning_immediately(self, sim):
        def proc():
            return 7
            yield  # pragma: no cover

        p = Process(sim, proc())
        sim.run()
        assert p.result == 7

    def test_chain_of_joins(self, sim):
        def leaf():
            yield Timeout(2.0)
            return "leaf"

        def middle(child):
            res = yield child
            return f"middle({res})"

        def root(m):
            res = yield m
            return f"root({res})"

        leaf_proc = Process(sim, leaf())
        m = Process(sim, middle(leaf_proc))
        r = Process(sim, root(m))
        sim.run()
        assert r.result == "root(middle(leaf))"

    def test_interrupt_wins_tie_with_timeout(self, sim):
        order = []

        def proc():
            try:
                yield Timeout(10.0)
                order.append("timeout")
            except Interrupt:
                order.append("interrupt")

        p = Process(sim, proc())
        # Scheduled before the process's first step, so the interrupt event
        # precedes the timeout's resume event in the same-instant ordering;
        # interrupt() also cancels the pending timeout.
        sim.schedule(10.0, p.interrupt)
        sim.run()
        assert order == ["interrupt"]

    def test_double_interrupt_single_delivery(self, sim):
        hits = []

        def proc():
            while True:
                try:
                    yield Timeout(100.0)
                except Interrupt:
                    hits.append(sim.now)

        p = Process(sim, proc())
        sim.schedule(1.0, p.interrupt)
        sim.schedule(1.0, p.interrupt)
        sim.run(until=50.0)
        # the second interrupt supersedes the first (single pending slot)
        assert hits == [1.0]

    def test_joiner_of_interrupted_process_resumes(self, sim):
        def victim():
            yield Timeout(100.0)

        def waiter(v):
            res = yield v
            return ("done", res, sim.now)

        v = Process(sim, victim())
        w = Process(sim, waiter(v))
        sim.schedule(5.0, v.interrupt)
        sim.run()
        assert w.result == ("done", None, 5.0)

    def test_signal_value_persists(self, sim):
        sig = Signal(sim, name="s")
        sig.trigger({"k": 1})
        assert sig.value == {"k": 1}
        assert sig.triggered


class TestRandomEdges:
    def test_shuffle_deterministic(self):
        a = list(range(20))
        b = list(range(20))
        RandomStreams(5).stream("s").shuffle(a)
        RandomStreams(5).stream("s").shuffle(b)
        assert a == b
        assert a != list(range(20))

    def test_uniform_degenerate(self):
        st = RandomStreams(0).stream("u")
        assert st.uniform(3.0, 3.0) == 3.0

    def test_large_seed_values(self):
        st = RandomStreams(2**63 - 1).stream("x")
        assert 0.0 <= st.random() < 1.0


class TestTimerEdges:
    def test_stop_then_start(self, sim):
        hits = []
        t = PeriodicTimer(sim, 10.0, lambda: hits.append(sim.now))
        t.start()
        sim.run(until=15.0)
        t.stop()
        sim.run(until=40.0)
        t.start()
        sim.run(until=59.0)
        assert hits == [10.0, 50.0]

    def test_set_period_to_none_disables(self, sim):
        hits = []
        t = PeriodicTimer(sim, 10.0, lambda: hits.append(sim.now))
        t.start()
        sim.schedule(15.0, t.set_period, None)
        sim.run(until=100.0)
        assert hits == [10.0]
        assert not t.enabled

    def test_action_stopping_timer(self, sim):
        hits = []
        t = PeriodicTimer(sim, 10.0, None)

        def action():
            hits.append(sim.now)
            if len(hits) == 2:
                t.stop()

        t.action = action
        t.start()
        sim.run(until=100.0)
        assert hits == [10.0, 20.0]
