"""Cross-backend equivalence: every experiment, every backend, one answer.

The engine's load-bearing invariant is that a grid point's params dict
(seed included) fully determines its simulation, so *where* it runs can
never change the result.  This suite enforces that end to end: all
registered experiments x {InProcess, LocalProcess, SSH-stub, SLURM-stub,
k8s-stub} must produce sweep results byte-identical to a ``--jobs 1``
serial run.

The serial baselines are computed once per experiment (module-scoped
fixture).  The in-process matrix is cheap and runs in the fast lane; the
subprocess-heavy lanes (LocalProcess pools, SSH/SLURM/k8s stubs over all
experiments) are ``slow``-marked, with a small unmarked smoke subset so
the fast lane still crosses every backend.
"""

from __future__ import annotations

import pytest

from conftest import (
    InMemoryK8sTransport,
    InMemorySlurmTransport,
    loopback_spec,
    make_k8s_backend,
    make_slurm_backend,
)
from repro.cli import SCALE_PROFILES, _sweep_overrides
from repro.experiments import registry
from repro.experiments.backends import InProcessBackend, SSHBackend
from repro.experiments.runner import run_experiment

ALL_EXPERIMENTS = registry.names()

#: unmarked smoke subset: every backend crossed in the fast lane
SMOKE_EXPERIMENTS = ("table1", "fig6-fig7", "protocol-tournament", "ablation-components")

#: tiny grids plus a fixed seed where the grid takes one, for cheap determinism
assert "tiny" in SCALE_PROFILES

#: non-scaled experiments that still accept shrinking kwargs
EXTRA_TINY = {"scaling": {"shapes": [[2, 4], [3, 3]], "total_time": 900.0}}

#: `scaling` measures wall-clock in whichever process runs the point (see
#: scalability.py): its first N columns are deterministic, the rest timing.
#: `checkpoint_overhead` reports pickle sizes, which drift by a few bytes
#: between interpreter instances (hash randomization reorders set iteration
#: and with it the pickle memo layout); interval/events/snapshots stay exact.
DETERMINISTIC_COLUMNS = {"scaling": 5, "checkpoint_overhead": 3}


def tiny_overrides(experiment) -> dict:
    overrides = _sweep_overrides(experiment, "tiny")
    overrides.update(EXTRA_TINY.get(experiment.name, {}))
    if "seed" in experiment.grid_kwargs({"seed": 0}):
        overrides.setdefault("seed", 7)
    return overrides


@pytest.fixture(scope="module")
def serial_baseline():
    """Lazily computed ``--jobs 1`` reports, shared across the whole matrix."""
    reports: dict = {}

    def get(name: str):
        if name not in reports:
            experiment = registry.get(name)
            reports[name] = run_experiment(
                experiment, overrides=tiny_overrides(experiment), jobs=1
            )
        return reports[name]

    return get


def run_on_backend(name: str, backend_kind: str, tmp_path, stub_ssh):
    experiment = registry.get(name)
    overrides = tiny_overrides(experiment)
    if backend_kind == "inprocess":
        backend = InProcessBackend(hosts=["w0", "w1", "w2"])
    elif backend_kind == "local":
        return run_experiment(experiment, overrides=overrides, jobs=2)
    elif backend_kind == "ssh":
        backend = SSHBackend([loopback_spec()], ssh_command=stub_ssh)
    elif backend_kind == "slurm":
        backend = make_slurm_backend(tmp_path / "spool", InMemorySlurmTransport())
    elif backend_kind == "k8s":
        backend = make_k8s_backend(tmp_path / "spool", InMemoryK8sTransport())
    else:  # pragma: no cover - parametrization bug
        raise AssertionError(backend_kind)
    try:
        return run_experiment(experiment, overrides=overrides, backend=backend)
    finally:
        backend.shutdown()


def assert_equivalent(report, serial, name: str, backend_kind: str) -> None:
    detail = f"{name} over {backend_kind} diverged from --jobs 1"
    cutoff = DETERMINISTIC_COLUMNS.get(name)
    if cutoff is None:
        assert report.result.render() == serial.result.render(), detail
        assert report.result.rows == serial.result.rows, detail
    else:
        trim = lambda rows: [tuple(row)[:cutoff] for row in rows]  # noqa: E731
        assert trim(report.result.rows) == trim(serial.result.rows), detail
        assert report.result.headers == serial.result.headers, detail
    assert report.result.series == serial.result.series, detail
    assert report.result.xs == serial.result.xs, detail
    assert report.points == serial.points
    assert report.executed == serial.points  # nothing was cached away


class TestEquivalenceFastLane:
    """Cheap coverage that still crosses every experiment and every backend."""

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_inprocess_matches_serial(self, name, serial_baseline, tmp_path, stub_ssh):
        report = run_on_backend(name, "inprocess", tmp_path, stub_ssh)
        assert_equivalent(report, serial_baseline(name), name, "inprocess")

    @pytest.mark.parametrize("backend_kind", ["local", "ssh", "slurm", "k8s"])
    @pytest.mark.parametrize("name", SMOKE_EXPERIMENTS)
    def test_smoke_subset_matches_serial(
        self, name, backend_kind, serial_baseline, tmp_path, stub_ssh
    ):
        report = run_on_backend(name, backend_kind, tmp_path, stub_ssh)
        assert_equivalent(report, serial_baseline(name), name, backend_kind)


@pytest.mark.slow
class TestEquivalenceFullMatrix:
    """The full registry x heavyweight-backend matrix (slow lane)."""

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_local_pool_matches_serial(self, name, serial_baseline, tmp_path, stub_ssh):
        report = run_on_backend(name, "local", tmp_path, stub_ssh)
        assert_equivalent(report, serial_baseline(name), name, "local")

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_ssh_stub_matches_serial(self, name, serial_baseline, tmp_path, stub_ssh):
        report = run_on_backend(name, "ssh", tmp_path, stub_ssh)
        assert_equivalent(report, serial_baseline(name), name, "ssh")

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_slurm_stub_matches_serial(self, name, serial_baseline, tmp_path, stub_ssh):
        report = run_on_backend(name, "slurm", tmp_path, stub_ssh)
        assert_equivalent(report, serial_baseline(name), name, "slurm")

    @pytest.mark.parametrize("name", ALL_EXPERIMENTS)
    def test_k8s_stub_matches_serial(self, name, serial_baseline, tmp_path, stub_ssh):
        report = run_on_backend(name, "k8s", tmp_path, stub_ssh)
        assert_equivalent(report, serial_baseline(name), name, "k8s")
