"""Tests for the serving layer: hot tier, HTTP API, backpressure, sharding.

Integration tests run the real stack -- ``ServeApp`` behind the
stdlib-asyncio ``HttpServer`` on an ephemeral port -- and talk to it
with ``http.client``, exactly like the benchmark rig.  The acceptance
bar from the issue: hot-tier hits must serve *without touching disk*
(asserted via the disk cache's own hit/miss counters), bodies must be
byte-identical whichever tier answered, and journal shards must not
serialize concurrent appenders on a single flock.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.experiments import registry
from repro.experiments.cache import ResultCache
from repro.experiments.registry import Experiment
from repro.serve import HotTier, ServeApp, start_in_thread
from repro.serve.stats import LatencyRing

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None


# --------------------------------------------------------------- hot tier


class TestHotTier:
    GEN = ("code-a", 100)

    def test_miss_then_hit(self):
        tier = HotTier(max_bytes=1024)
        assert tier.get("k1", self.GEN) is None
        tier.put("k1", b"payload", self.GEN)
        assert tier.get("k1", self.GEN) == b"payload"
        assert (tier.hits, tier.misses) == (1, 1)

    def test_lru_eviction_order(self):
        tier = HotTier(max_bytes=30)
        tier.put("a", b"x" * 10, self.GEN)
        tier.put("b", b"x" * 10, self.GEN)
        tier.put("c", b"x" * 10, self.GEN)
        assert tier.get("a", self.GEN) is not None  # a is now most-recent
        tier.put("d", b"x" * 10, self.GEN)  # evicts b, the LRU
        assert tier.get("b", self.GEN) is None
        assert tier.get("a", self.GEN) is not None
        assert tier.get("c", self.GEN) is not None
        assert tier.evictions == 1

    def test_rewriting_a_key_does_not_double_count_bytes(self):
        tier = HotTier(max_bytes=100)
        tier.put("k", b"x" * 40, self.GEN)
        tier.put("k", b"y" * 60, self.GEN)
        assert tier.current_bytes == 60
        assert tier.get("k", self.GEN) == b"y" * 60

    def test_code_hash_change_invalidates_everything(self):
        tier = HotTier(max_bytes=1024)
        tier.put("k", b"old", ("code-a", 100))
        assert tier.get("k", ("code-b", 100)) is None  # new code: flushed
        assert tier.invalidations == 1
        tier.put("k", b"new", ("code-b", 100))
        assert tier.get("k", ("code-b", 100)) == b"new"

    def test_watermark_advance_invalidates_everything(self):
        tier = HotTier(max_bytes=1024)
        tier.put("k", b"old", ("code-a", 100))
        assert tier.get("k", ("code-a", 101)) is None  # journal moved: flushed
        assert tier.invalidations == 1
        assert len(tier) == 0

    def test_oversized_payload_is_not_cached(self):
        tier = HotTier(max_bytes=10)
        tier.put("k", b"x" * 11, self.GEN)
        assert tier.get("k", self.GEN) is None

    def test_zero_budget_disables_the_tier(self):
        tier = HotTier(max_bytes=0)
        tier.put("k", b"x", self.GEN)
        assert tier.get("k", self.GEN) is None

    def test_snapshot_counters_feed_stats(self):
        tier = HotTier(max_bytes=1024)
        tier.put("k", b"x" * 8, self.GEN)
        tier.get("k", self.GEN)
        tier.get("missing", self.GEN)
        snap = tier.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["hit_ratio"] == 0.5
        assert snap["entries"] == 1 and snap["bytes"] == 8


class TestLatencyRing:
    def test_percentiles_nearest_rank(self):
        ring = LatencyRing(size=100)
        for ms in range(1, 101):
            ring.observe(ms / 1e3)
        assert ring.percentile(50) == pytest.approx(0.050, abs=1e-3)
        assert ring.percentile(99) == pytest.approx(0.099, abs=1e-3)
        assert ring.percentile(0) == pytest.approx(0.001)

    def test_empty_ring_reports_zero(self):
        assert LatencyRing().percentile(99) == 0.0


# ----------------------------------------------------- synthetic experiment

_EXECUTED: list = []


def _sleepy_grid(n_points: int = 5, delay: float = 0.001, **_) -> list:
    return [{"i": i, "delay": delay} for i in range(int(n_points))]


def _sleepy_point(params: dict) -> dict:
    time.sleep(params["delay"])
    _EXECUTED.append(params["i"])
    return {"i": params["i"]}


def _sleepy_reduce(grid: list, points: list):
    return {"n": len(points)}


@pytest.fixture()
def sleepy_experiment():
    """A registered synthetic experiment with controllable point latency."""
    registry.load_all()
    exp = Experiment(
        name="serve-test-sleepy",
        title="synthetic controllable-latency grid for serve tests",
        grid=_sleepy_grid,
        point=_sleepy_point,
        reduce=_sleepy_reduce,
        scaled=False,
    )
    registry.register(exp)
    _EXECUTED.clear()
    yield exp
    registry._REGISTRY.pop(exp.name, None)


# ------------------------------------------------------------- HTTP fixtures


@pytest.fixture()
def app(tmp_path):
    cache = ResultCache(tmp_path / "cache", journal_shards=4)
    app = ServeApp(
        cache=cache,
        hot_mb=8,
        max_inflight=2,
        queue_size=2,
        max_sweeps=1,
        request_timeout=60.0,
    )
    yield app
    app.close()


@pytest.fixture()
def server(app):
    handle = start_in_thread(app)
    yield handle
    handle.stop()


def http_get(handle, path: str):
    conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def http_post(handle, path: str, payload: dict):
    conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=60)
    try:
        conn.request(
            "POST",
            path,
            body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


#: fast real grid point: table1 at tiny scale with a short horizon
POINT = "/experiments/table1/points?scale=tiny&total_time=600.0"


# --------------------------------------------------------------- enumeration


class TestEnumeration:
    def test_experiments_lists_the_registry(self, server):
        status, _, body = http_get(server, "/experiments")
        assert status == 200
        listed = {e["name"] for e in json.loads(body)["experiments"]}
        assert listed == set(registry.names())

    def test_grid_enumerates_points_with_keys(self, server, app):
        status, _, body = http_get(server, "/experiments/table1/grid?scale=tiny")
        assert status == 200
        payload = json.loads(body)
        assert payload["points"] == len(payload["grid"]) >= 1
        first = payload["grid"][0]
        assert first["key"] == app.cache.key("table1", first["params"])

    def test_unknown_experiment_is_404(self, server):
        status, _, body = http_get(server, "/experiments/nope/points")
        assert status == 404
        assert "unknown experiment" in json.loads(body)["error"]

    def test_unknown_route_is_404(self, server):
        status, _, _ = http_get(server, "/totally/bogus")
        assert status == 404

    def test_unknown_scale_is_400(self, server):
        status, _, _ = http_get(server, "/experiments/table1/points?scale=huge")
        assert status == 400

    def test_unknown_grid_param_is_400(self, server):
        status, _, body = http_get(server, POINT + "&flux_capacitor=1")
        assert status == 400
        assert "flux_capacitor" in json.loads(body)["error"]

    def test_index_out_of_range_is_400(self, server):
        status, _, _ = http_get(server, POINT + "&index=99")
        assert status == 400

    def test_healthz(self, server):
        status, _, body = http_get(server, "/healthz")
        assert status == 200 and json.loads(body) == {"ok": True}


# ------------------------------------------------------------- tiered fetch


class TestTieredPointFetch:
    def test_cold_fetch_computes_then_hot_tier_serves(self, server, app):
        status, headers, body = http_get(server, POINT)
        assert status == 200
        assert headers["X-Repro-Source"] == "computed"
        payload = json.loads(body)
        assert payload["experiment"] == "table1"
        assert app.cache.entry_count() == 1  # written through to disk

        status2, headers2, body2 = http_get(server, POINT)
        assert status2 == 200
        assert headers2["X-Repro-Source"] == "hot"
        assert body2 == body  # byte-identical across tiers

    def test_hot_hits_do_not_touch_disk(self, server, app):
        http_get(server, POINT)  # compute
        http_get(server, POINT)  # populate/confirm hot
        disk_before = (app.cache.hits, app.cache.misses)
        hot_hits_before = app.hot.hits
        for _ in range(5):
            _, headers, _ = http_get(server, POINT)
            assert headers["X-Repro-Source"] == "hot"
        assert (app.cache.hits, app.cache.misses) == disk_before
        assert app.hot.hits == hot_hits_before + 5

    def test_watermark_advance_falls_back_to_disk_byte_identically(
        self, server, app
    ):
        _, _, body_computed = http_get(server, POINT)
        _, headers, body_hot = http_get(server, POINT)
        assert headers["X-Repro-Source"] == "hot"
        # another sweep appends provenance: the watermark moves, the hot
        # tier flushes, and the next fetch re-reads the disk tier
        app.cache.journal_append([{"key": "f" * 64, "host": "elsewhere"}])
        _, headers3, body_disk = http_get(server, POINT)
        assert headers3["X-Repro-Source"] == "disk"
        assert body_disk == body_hot == body_computed
        _, headers4, _ = http_get(server, POINT)
        assert headers4["X-Repro-Source"] == "hot"  # re-warmed

    def test_compute_is_recorded_in_the_journal(self, server, app):
        _, headers, body = http_get(server, POINT)
        key = json.loads(body)["key"]
        assert headers["X-Repro-Key"] == key
        entry = app.cache.journal_by_key()[key]
        assert entry["host"] == app.host_label


# ------------------------------------------------------------- backpressure


class TestBackpressure:
    def test_saturated_compute_tier_rejects_with_retry_after(self, server, app):
        app._inflight = app.max_inflight + app.queue_size
        try:
            status, headers, body = http_get(server, POINT + "&seed=9")
            assert status == 429
            assert headers["Retry-After"] == str(app.retry_after)
            assert "saturated" in json.loads(body)["error"]
        finally:
            app._inflight = 0
        assert app.stats.rejected == 1

    def test_hot_tier_still_serves_while_compute_is_saturated(self, server, app):
        http_get(server, POINT)  # warm one key through compute
        http_get(server, POINT)
        app._inflight = app.max_inflight + app.queue_size
        try:
            status, headers, _ = http_get(server, POINT)
            assert status == 200 and headers["X-Repro-Source"] == "hot"
        finally:
            app._inflight = 0

    def test_saturated_sweep_queue_rejects(self, server, app):
        app._active_sweeps = app.max_sweeps
        try:
            status, headers, _ = http_post(
                server, "/sweeps", {"experiment": "table1"}
            )
            assert status == 429
            assert "Retry-After" in headers
        finally:
            app._active_sweeps = 0

    def test_compute_deadline_returns_504(self, tmp_path, sleepy_experiment):
        cache = ResultCache(tmp_path / "c504")
        app = ServeApp(cache=cache, request_timeout=0.05)
        with start_in_thread(app) as handle:
            status, _, body = http_get(
                handle, "/experiments/serve-test-sleepy/points?index=0&delay=2.0"
            )
            assert status == 504
            assert "exceeded" in json.loads(body)["error"]
            assert app.stats.timeouts == 1
        app.close()


# ------------------------------------------------------------------ sweeps


class TestSweepStreaming:
    def test_sweep_streams_ndjson_to_completion(self, server, app, sleepy_experiment):
        status, headers, body = http_post(
            server,
            "/sweeps",
            {"experiment": "serve-test-sleepy", "overrides": {"n_points": 5}},
        )
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        events = [json.loads(line) for line in body.decode().splitlines()]
        assert events[0]["event"] == "start"
        assert events[-1]["event"] == "done"
        assert events[-1]["points"] == 5 and events[-1]["executed"] == 5
        assert [e["done"] for e in events if e["event"] == "point"] == [1, 2, 3, 4, 5]
        assert app.cache.entry_count() == 5  # sweep populated the shared cache

    def test_second_sweep_is_fully_cache_served(self, server, app, sleepy_experiment):
        spec = {"experiment": "serve-test-sleepy", "overrides": {"n_points": 3}}
        http_post(server, "/sweeps", spec)
        _, _, body = http_post(server, "/sweeps", spec)
        done = json.loads(body.decode().splitlines()[-1])
        assert done["cache_hits"] == 3 and done["executed"] == 0

    def test_sweep_error_is_streamed_not_dropped(self, server):
        status, _, body = http_post(server, "/sweeps", {"experiment": "nope"})
        assert status == 404

    def test_invalid_sweep_spec_is_400(self, server):
        status, _, _ = http_post(server, "/sweeps", {"no": "experiment"})
        assert status == 400

    def test_client_disconnect_cancels_the_sweep(
        self, server, app, sleepy_experiment
    ):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        conn.request(
            "POST",
            "/sweeps",
            body=json.dumps(
                {
                    "experiment": "serve-test-sleepy",
                    "overrides": {"n_points": 200, "delay": 0.02},
                }
            ),
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        assert resp.status == 200
        assert json.loads(resp.readline())["event"] == "start"
        resp.readline()  # one point event, so the sweep is demonstrably live
        # close the response too: http.client defers the real OS close
        # while the response's buffered reader still holds the socket
        resp.close()
        conn.close()  # walk away mid-stream

        deadline = time.monotonic() + 15
        while app._active_sweeps and time.monotonic() < deadline:
            time.sleep(0.05)
        assert app._active_sweeps == 0, "sweep slot never freed after disconnect"
        executed_at_stop = len(_EXECUTED)
        assert executed_at_stop < 200, "sweep ran to completion despite disconnect"
        time.sleep(0.3)  # the runner thread must actually have stopped
        assert len(_EXECUTED) == executed_at_stop


# ------------------------------------------------------------------- stats


class TestStatsEndpoint:
    def test_stats_reports_tiers_admission_and_latency(self, server, app):
        http_get(server, POINT)
        http_get(server, POINT)
        status, _, body = http_get(server, "/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["hot_tier"]["hits"] == 1
        assert stats["disk_cache"]["journal_shards"] == 4
        assert stats["disk_cache"]["journal_watermark"] > 0
        assert stats["admission"]["max_inflight"] == app.max_inflight
        route = stats["requests"]["routes"]["/experiments/{name}/points"]
        assert route["count"] == 2
        assert route["p99_ms"] >= route["p50_ms"] >= 0
        assert stats["requests"]["statuses"]["200"] == 2


# ------------------------------------------------------------ shard locking


@pytest.mark.skipif(fcntl is None, reason="flock requires POSIX")
class TestJournalShardConcurrency:
    def test_appenders_on_different_shards_do_not_share_a_lock(self, tmp_path):
        """Hold shard 0's flock: an append bound for shard 1 must complete
        anyway (pre-sharding, every appender serialized on one file)."""
        cache = ResultCache(tmp_path, journal_shards=4)
        shard0_entry = {"key": "00000000" + "0" * 56, "host": "s0"}
        shard1_entry = {"key": "00000001" + "0" * 56, "host": "s1"}
        path0 = cache.journal_shard_path(shard0_entry["key"])
        path1 = cache.journal_shard_path(shard1_entry["key"])
        assert path0 != path1

        cache.root.mkdir(parents=True, exist_ok=True)
        path0.touch()
        blocked = threading.Event()
        unblocked = threading.Event()

        with open(path0, "a") as holder:
            fcntl.flock(holder.fileno(), fcntl.LOCK_EX)

            def append_shard0():
                blocked.set()
                cache.journal_append([shard0_entry])  # blocks on the flock
                unblocked.set()

            t0 = threading.Thread(target=append_shard0, daemon=True)
            t0.start()
            assert blocked.wait(5)

            # while shard 0 is wedged, shard 1 sails through
            start = time.monotonic()
            cache.journal_append([shard1_entry])
            assert time.monotonic() - start < 2.0
            assert [e["host"] for e in cache.journal_entries()] == ["s1"]
            assert not unblocked.is_set(), "shard-0 appender got past a held flock"

            fcntl.flock(holder.fileno(), fcntl.LOCK_UN)
        assert unblocked.wait(5), "shard-0 appender never finished after unlock"
        t0.join(5)
        assert {e["host"] for e in cache.journal_entries()} == {"s0", "s1"}


# ---------------------------------------------------------------- CLI shape


class TestServeCli:
    def test_parser_defaults(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.hot_mb == 64.0
        assert args.max_inflight == 4
        assert args.journal_shards == 4

    def test_parser_overrides(self):
        from repro.cli import build_serve_parser

        args = build_serve_parser().parse_args(
            ["--port", "0", "--hot-mb", "8", "--max-inflight", "2"]
        )
        assert args.port == 0 and args.hot_mb == 8.0 and args.max_inflight == 2
