"""LOCK001 negative fixture: the fixed raw-fd appender shape.

Mirrors ``repro/experiments/cache.py:_locked_append`` post-PR 8: raw
``os.open`` fd (no buffered layer to flush late), unlock in the inner
``finally``, ``os.close`` in the outer ``finally``.  The unlock lives in
a *sibling* nested try relative to the flock call -- the rule must find
it anywhere in the enclosing function, not just in ancestor tries.
"""

import fcntl
import os


def journal_append(path, record):
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)  # silent: unlock+close in finallys
        try:
            written = 0
            while written < len(record):
                written += os.write(fd, record[written:])
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)
