"""DET002 negative fixture: hash() inside ``__hash__`` is the point."""


class Key:
    def __init__(self, cluster, node):
        self.cluster = cluster
        self.node = node

    def __hash__(self):
        return hash((self.cluster, self.node))  # silent: __hash__ body

    def __eq__(self, other):
        return (self.cluster, self.node) == (other.cluster, other.node)

    def stable_key(self):
        return (self.cluster, self.node)  # silent: derive a stable key
