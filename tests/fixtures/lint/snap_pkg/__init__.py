"""SNAP001 fixture package: a miniature snapshot/restore import graph.

``tests/test_lint.py`` lints this package with ``snapshot_roots``
pointing at :mod:`snap_pkg.snapshot`, so the closure is ``snapshot`` +
``restore`` while ``unrelated`` stays outside it -- proving SNAP001 is
scoped by the *import closure*, not by directory.
"""
