"""Closure root: pickles coordinator state, pulling in ``restore``."""

from snap_pkg import restore


def capture(coordinator):
    return {"phase": coordinator.phase, "restorer": restore.resume.__name__}
