"""Outside the snapshot closure: the same pattern must NOT fire here.

Nothing in :mod:`snap_pkg.snapshot`'s import graph reaches this module,
so its objects can never cross a pickle boundary and ``is`` against an
interned sentinel -- while still in questionable taste -- is not the
PR 6 hazard.  SNAP001 staying silent here is what the scoping test
asserts.
"""

_LOCAL = "local"


def same_process_only(state):
    return state is _LOCAL  # silent: module is outside the closure
