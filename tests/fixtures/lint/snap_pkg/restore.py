"""The PR 6 bug, reconstructed: ``is`` against interned sentinels.

In one process the module-level string sentinel is interned and the
identity test passes; after the coordinator round-trips through a
checkpoint pickle, the restored phase string is equal-but-not-identical
and every ``is`` below goes quietly false.
"""

_COMMITTING = "committing"
_WEDGED = "wedged"


def resume(coordinator):
    if coordinator.phase is _COMMITTING:  # fires: sentinel identity
        coordinator.finish_commit()
    if coordinator.phase is not _WEDGED:  # fires: is not, same hazard
        coordinator.resume_clc()
    # fires: int-literal identity (noqa keeps the seeded bug ruff-clean)
    if coordinator.retries is 0:  # noqa: F632
        coordinator.rearm()
    if coordinator.phase == _COMMITTING:  # silent: equality is the fix
        coordinator.finish_commit()
    if coordinator.pending is None:  # silent: None identity survives pickle
        coordinator.rearm()
