"""Suppression-syntax fixture: every finding here is waived inline.

Exercises single-rule, multi-rule (comma-separated), and justified
suppressions; ``tests/test_lint.py`` asserts zero *unsuppressed*
findings but a non-empty ``suppressed`` list for this file, plus that
a suppression for rule A does not silence rule B on another line.
"""

import random


def bucket(item, width):
    return hash(item) % width  # repro-lint: ignore[DET002] -- fixture waiver


def entropy_pair(items):
    return hash(random.random())  # repro-lint: ignore[DET001, DET002]


def wrong_rule_named(obj):
    return id(obj)  # repro-lint: ignore[DET001] -- names the WRONG rule; DET002 still fires
