"""ASYNC001 positive fixture: blocking calls lexically on the event loop."""

import subprocess
import time
from pathlib import Path


async def handle_request(cmd, path):
    time.sleep(0.05)  # fires: sync sleep on the loop
    subprocess.run(cmd, check=False)  # fires: child-process wait on the loop
    with open(path) as fh:  # fires: sync file IO on the loop
        body = fh.read()
    stats = Path(path).read_text()  # fires: .read_text on the loop
    return body, stats


async def compute_inline(registry, params):
    return registry.run_experiment(params)  # fires: minutes of work inline
