"""LOCK001 positive fixture: the PR 8 pre-fix ``journal_append`` shape.

``journal_append`` is (structurally) the exact code that shipped the
torn-journal bug: exclusive flock on a *buffered* appender, unlock in a
``finally`` -- but the ``with open(...)`` close runs after the unlock,
so an error path flushes buffered bytes outside the lock.
``lock_and_hope`` covers the other message: no unlock in any finally.
"""

import fcntl


def journal_append(path, record):
    with open(path, "ab") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)  # fires: close not in finally
        try:
            fh.write(record)
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


def lock_and_hope(fd, record):
    import os

    fcntl.flock(fd, fcntl.LOCK_EX)  # fires: unlock not in any finally
    os.write(fd, record)
    fcntl.flock(fd, fcntl.LOCK_UN)
    os.close(fd)
