"""DET001 positive fixture: every unseeded-nondeterminism shape fires.

Linted by ``tests/test_lint.py`` with a :class:`~repro.lint.engine.LintConfig`
whose ``determinism_scopes`` include this module; never imported or run.
"""

import os
import random
import time
from datetime import datetime
from random import shuffle
from time import perf_counter


def jitter():
    return random.random()  # fires: process-global PRNG


def reorder(items):
    shuffle(items)  # fires: from-imported global PRNG function
    return items


def stamp():
    return time.time(), perf_counter(), datetime.now()  # fires three times


def env_mode():
    mode = os.environ["REPRO_MODE"]  # fires: os.environ read
    return mode, os.getenv("REPRO_SEED")  # fires: os.getenv


def schedule():
    order = []
    for node in {3, 1, 2}:  # fires: bare-set iteration order
        order.append(node)
    return order


def materialize():
    return list({"b", "a"})  # fires: list() over a set display


def spread(nodes):
    return [n * 2 for n in set(nodes)]  # fires: comprehension over a set
