"""WIRE001 negative fixture: a grid that round-trips canonical JSON."""


def grid(scale="smoke"):
    if scale == "full":
        return [{"seed": s, "protocol": "hc3i"} for s in range(2, 10)]
    return [
        {"seed": 1, "levels": [1, 2], "protocol": "hc3i"},
        {"timeout": 30.0, "ratio": 0.5},
        {"shape": (4, 2)},  # silent: canonical_params normalizes tuples
    ]


def _grid():
    yield {"replicas": ["a", "b"]}


def helper_uses_sets_internally(nodes):
    # silent: not a grid function -- sets are fine as internal scratch
    return sorted(set(nodes))
