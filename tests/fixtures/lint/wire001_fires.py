"""WIRE001 positive fixture: grid values that cannot travel as wire jobs.

The rule inspects parameter defaults and ``return``/``yield``
expressions, so every seeded violation sits directly in one of those
(a grid returning a name built elsewhere is a documented blind spot --
``canonical_params`` stays the runtime backstop).
"""

import math


class Experiment:
    """Stand-in for ``repro.experiments.registry.Experiment`` (never run)."""

    def __init__(self, name, grid, point):
        self.name, self.grid, self.point = name, grid, point


def grid(scale="smoke"):
    return [
        {"seed": 1, "levels": {1, 2}},  # fires: set display
        {"timeout": float("inf")},  # fires: non-finite float
        {"payload": b"raw"},  # fires: bytes
        {"steps": range(4)},  # fires: range()
        {"mask": frozenset([3])},  # fires: frozenset()
        {"weight": math.nan},  # fires: math.nan
        {1: "one"},  # fires: non-str dict key
        {"scale": scale},
    ]


def _grid():
    yield {"replicas": set()}  # fires: set() in a yielded point


# fires (set parameter default); noqa keeps the seeded B006 ruff-clean
def sweep_points(limit={"cap", "hard"}):  # noqa: B006
    return [{"limit": sorted(limit)}]


def _point(params):
    return params


EXPERIMENT = Experiment(name="wire-fixture", grid=sweep_points, point=_point)
