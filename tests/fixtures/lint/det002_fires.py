"""DET002 positive fixture: hash()/id() outside ``__hash__`` fires."""


def bucket(item, width):
    return hash(item) % width  # fires: PYTHONHASHSEED-dependent placement


def label(obj):
    return f"obj-{id(obj)}"  # fires: address leaks into output
