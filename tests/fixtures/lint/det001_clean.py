"""DET001 negative fixture: the sanctioned alternatives stay silent."""

import random


def jitter(seed):
    rng = random.Random(seed)  # silent: per-run seeded stream
    return rng.random()


def env_mode(mode, seed):
    return mode, seed  # silent: environment passed as explicit parameters


def schedule():
    order = []
    for node in sorted({3, 1, 2}):  # silent: sorted before iteration
        order.append(node)
    return order


def materialize():
    return sorted({"b", "a"})  # silent: sorted() fixes the order


def spread(nodes):
    return [n * 2 for n in sorted(set(nodes))]  # silent: sorted comprehension
