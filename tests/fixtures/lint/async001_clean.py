"""ASYNC001 negative fixture: the executor patterns the serve layer uses."""

import asyncio
import time


async def handle_request(loop, registry, params):
    await asyncio.sleep(0.05)  # silent: async sleep
    # silent: blocking functions passed *by reference* to the executor --
    # the call happens on a worker thread, not the loop
    result = await loop.run_in_executor(None, registry.run_experiment, params)
    await asyncio.to_thread(time.sleep, 0.01)
    return result


def sync_helper(path):
    with open(path) as fh:  # silent: not an async def body
        return fh.read()
