"""Property-based tests of the discrete-event kernel.

Hypothesis drives random interleavings of ``schedule`` / ``schedule_at`` /
``schedule_many`` / ``cancel`` / ``stop`` / ``run`` / ``step`` against a
simple reference model, asserting the kernel's load-bearing invariants:

* dispatch time is monotonically non-decreasing,
* same-instant events fire in scheduling order (FIFO by sequence number),
* ``pending`` / ``processed`` accounting is exact at every observation
  point (this is what pins the O(1) live-counter + compaction bookkeeping),
* two identically-seeded runs produce identical dispatch digests,
* ``schedule_many`` and ``reschedule`` are dispatch-stream-equivalent to
  plain ``schedule`` loops.

The reference model is deliberately naive (sorted list of records); the
kernel's lazy cancellation, compaction sweeps and entry reuse must be
invisible next to it.
"""

from __future__ import annotations

import pickle
from math import inf

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Simulator, event_pending
from repro.sim.trace_digest import TraceDigest

# -- operation grammar -----------------------------------------------------

delays = st.floats(min_value=0.0, max_value=50.0, allow_nan=False, width=32)

ops = st.one_of(
    st.tuples(st.just("schedule"), delays),
    st.tuples(st.just("schedule_at_offset"), delays),
    st.tuples(st.just("schedule_many"), st.lists(delays, min_size=0, max_size=4)),
    st.tuples(st.just("cancel"), st.integers(min_value=0)),
    st.tuples(st.just("cancel_fired"), st.integers(min_value=0)),
    st.tuples(st.just("run_for"), delays),
    st.just(("step",)),
    st.tuples(st.just("stop_after"), delays),
)

op_lists = st.lists(ops, min_size=1, max_size=60)


class Model:
    """Reference bookkeeping: every scheduled record, with its fate."""

    def __init__(self):
        self.records = []  # [time, scheduled_idx, cancelled, fired]

    def add(self, time: float) -> int:
        self.records.append([time, len(self.records), False, False])
        return len(self.records) - 1

    def cancel(self, idx: int) -> None:
        rec = self.records[idx]
        if not rec[3]:  # cancelling a fired record is a no-op
            rec[2] = True

    def fire_up_to(self, horizon: float, limit: int = -1) -> int:
        """Fire eligible records in (time, scheduled order); returns count."""
        fired = 0
        while limit < 0 or fired < limit:
            candidates = [
                r for r in self.records if not r[2] and not r[3] and r[0] <= horizon
            ]
            if not candidates:
                break
            rec = min(candidates, key=lambda r: (r[0], r[1]))
            rec[3] = True
            fired += 1
        return fired

    @property
    def pending(self) -> int:
        return sum(1 for r in self.records if not r[2] and not r[3])

    @property
    def processed(self) -> int:
        return sum(1 for r in self.records if r[3])


def apply_ops(op_list, sim: Simulator):
    """Drive ``sim`` and the reference model through one op sequence.

    Returns ``(model, dispatched, stops_fired)``: the reference model, the
    observed ``(time, tag)`` stream from inside the callbacks, and how many
    ``sim.stop`` helper events fired (kernel events with no model record).
    """
    model = Model()
    handles = []  # kernel event handles, same index as model records
    dispatched = []
    stops_fired = 0

    def make_cb(idx):
        def cb():
            dispatched.append((sim.now, idx))
        return cb

    for op in op_list:
        name = op[0]
        if name == "schedule":
            idx = model.add(sim.now + op[1])
            handles.append(sim.schedule(op[1], make_cb(idx)))
        elif name == "schedule_at_offset":
            idx = model.add(sim.now + op[1])
            handles.append(sim.schedule_at(sim.now + op[1], make_cb(idx)))
        elif name == "schedule_many":
            idxs = [model.add(sim.now + d) for d in op[1]]
            handles.extend(
                sim.schedule_many([(d, make_cb(i)) for d, i in zip(op[1], idxs)])
            )
        elif name == "cancel":
            if handles:
                k = op[1] % len(handles)
                model.cancel(k)
                sim.cancel(handles[k])
        elif name == "cancel_fired":
            # aim specifically at already-fired records: must be a no-op
            fired = [i for i, r in enumerate(model.records) if r[3]]
            if fired:
                k = fired[op[1] % len(fired)]
                model.cancel(k)
                sim.cancel(handles[k])
        elif name == "run_for":
            horizon = sim.now + op[1]
            sim.run(until=horizon)
            model.fire_up_to(horizon)
        elif name == "step":
            before = sim.now
            progressed = sim.step()
            assert progressed == (model.fire_up_to(float("inf"), limit=1) == 1)
            assert sim.now >= before
        elif name == "stop_after":
            horizon = sim.now + op[1]
            stop_ev = sim.schedule(op[1], sim.stop)
            sim.run()
            # everything up to (and including) the stop instant fires; the
            # stop callback itself is a dispatched kernel event with no
            # model record (it was scheduled last, so same-instant records
            # all precede it)
            model.fire_up_to(horizon)
            stops_fired += 1
            assert sim.now == horizon
            sim.cancel(stop_ev)  # already fired: must be a no-op
        # accounting must be exact after *every* operation
        assert sim.pending == model.pending, (name, op)
    return model, dispatched, stops_fired


class TestRandomInterleavings:
    @settings(max_examples=120, deadline=None)
    @given(op_lists)
    def test_kernel_matches_reference_model(self, op_list):
        sim = Simulator()
        model, dispatched, stops_fired = apply_ops(op_list, sim)
        # drain whatever is left so every surviving record fires
        sim.run()
        model.fire_up_to(float("inf"))

        assert sim.pending == model.pending == 0
        # every model record that fired produced exactly one callback, plus
        # one kernel event per `stop_after` helper (no model record)
        assert model.processed == len(dispatched)
        assert sim.processed == len(dispatched) + stops_fired

        # monotonic time
        times = [t for t, _ in dispatched]
        assert times == sorted(times)

        # exactly the non-cancelled records fired, in (time, schedule) order
        expected = sorted((r[0], r[1]) for r in model.records if r[3])
        observed = sorted((t, i) for t, i in dispatched)
        assert observed == expected

    @settings(max_examples=60, deadline=None)
    @given(op_lists)
    def test_fifo_ties_break_by_schedule_order(self, op_list):
        sim = Simulator()
        _, dispatched, _ = apply_ops(op_list, sim)
        sim.run()
        by_time: dict = {}
        for t, idx in dispatched:
            by_time.setdefault(t, []).append(idx)
        for t, idxs in by_time.items():
            assert idxs == sorted(idxs), f"tie at t={t} broke schedule order"

    @settings(max_examples=50, deadline=None)
    @given(op_lists)
    def test_identically_seeded_runs_have_identical_digests(self, op_list):
        digests = []
        for _ in range(2):
            sim = Simulator()
            digest = TraceDigest()
            sim.attach_digest(digest)
            apply_ops(op_list, sim)
            sim.run()
            digests.append((digest.hexdigest(), digest.events))
        assert digests[0] == digests[1]


class TestBatchEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(delays, min_size=1, max_size=20))
    def test_schedule_many_equals_schedule_loop(self, batch):
        streams = []
        for use_many in (False, True):
            sim = Simulator()
            digest = TraceDigest()
            sim.attach_digest(digest)
            order = []
            if use_many:
                sim.schedule_many([(d, order.append, (i,)) for i, d in enumerate(batch)])
            else:
                for i, d in enumerate(batch):
                    sim.schedule(d, order.append, i)
            sim.run()
            streams.append((digest.hexdigest(), order))
        assert streams[0] == streams[1]

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        st.integers(min_value=1, max_value=20),
    )
    def test_reschedule_reuse_equals_fresh_schedules(self, period, firings):
        """A self-rearming timer via reschedule == one via plain schedule."""

        def drive(use_reschedule):
            sim = Simulator()
            digest = TraceDigest()
            sim.attach_digest(digest)
            count = 0
            entry = None

            def fire():
                nonlocal count, entry
                count += 1
                if count < firings:
                    if use_reschedule:
                        entry = sim.reschedule(entry, period, fire)
                    else:
                        entry = sim.schedule(period, fire)

            entry = sim.schedule(period, fire)
            sim.run()
            return digest.hexdigest(), count, sim.processed

        assert drive(True) == drive(False)


class SnapshotRecorder:
    """Picklable callback target (closures cannot cross a snapshot).

    Bound methods pickle by (instance, method name), so scheduling
    ``rec.hit`` gives the kernel queue entries that survive a
    ``pickle`` round-trip -- the same trick the federation snapshot
    machinery relies on.
    """

    def __init__(self) -> None:
        self.seen: list = []

    def hit(self, idx: int) -> None:
        self.seen.append(idx)


snapshot_ops = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), delays),
        st.tuples(st.just("cancel"), st.integers(min_value=0)),
        st.tuples(st.just("run_for"), delays),
        st.just(("peek",)),
        st.just(("step",)),
    ),
    min_size=1,
    max_size=40,
)


def apply_picklable_ops(op_list, sim, rec, handles, model):
    """Drive ``sim`` with snapshot-safe callbacks, mirrored in ``model``."""
    for op in op_list:
        name = op[0]
        if name == "schedule":
            idx = model.add(sim.now + op[1])
            handles.append(sim.schedule(op[1], rec.hit, idx))
        elif name == "cancel":
            if handles:
                k = op[1] % len(handles)
                model.cancel(k)
                sim.cancel(handles[k])
        elif name == "run_for":
            horizon = sim.now + op[1]
            sim.run(until=horizon)
            model.fire_up_to(horizon)
        elif name == "peek":
            # peek is observational: it may pop cancelled corpses off the
            # heap top (with their accounting), but pending must not move
            before = sim.pending
            sim.peek()
            assert sim.pending == before
        elif name == "step":
            progressed = sim.step()
            assert progressed == (model.fire_up_to(inf, limit=1) == 1)
        # accounting must be exact after *every* operation, and the
        # cancelled-corpse counter can never exceed the physical heap
        assert sim.pending == model.pending, (name, op)
        assert 0 <= sim._cancelled_in_heap <= len(sim._queue)


class TestSnapshotAccounting:
    """The peek()/snapshot satellite audit, pinned as properties.

    ``peek()`` mutates the heap (it pops cancelled corpses and moves
    ``_cancelled_in_heap``); a snapshot taken in the window between
    ``peek()`` and ``step()`` must round-trip that accounting exactly,
    and ``pending`` must stay exact across ``__getstate__`` /
    ``__setstate__`` with corpses still in the heap.
    """

    @settings(max_examples=100, deadline=None)
    @given(snapshot_ops)
    def test_snapshot_between_peek_and_step_roundtrips_exactly(self, op_list):
        sim = Simulator()
        rec = SnapshotRecorder()
        handles: list = []
        model = Model()
        apply_picklable_ops(op_list, sim, rec, handles, model)

        # the window under audit: peek() (corpse-popping), then snapshot
        sim.peek()
        cancelled_before = sim._cancelled_in_heap
        pending_before = sim.pending
        assert pending_before == model.pending

        sim2, rec2, handles2 = pickle.loads(pickle.dumps((sim, rec, handles)))
        assert sim2._cancelled_in_heap == cancelled_before
        assert sim2.pending == pending_before
        assert sim2.now == sim.now and sim2.processed == sim.processed

        # step both through the same window, then drain both: the restored
        # kernel must dispatch the identical remaining stream
        assert sim.step() == sim2.step()
        assert (sim.now, sim.pending, sim.processed) == (
            sim2.now,
            sim2.pending,
            sim2.processed,
        )
        sim.run()
        sim2.run()
        assert rec2.seen == rec.seen
        assert sim.pending == sim2.pending == 0
        assert sim._cancelled_in_heap == sim2._cancelled_in_heap == 0
        assert sim.processed == sim2.processed

    @settings(max_examples=60, deadline=None)
    @given(snapshot_ops, st.integers(min_value=0))
    def test_restored_handles_alias_the_restored_queue(self, op_list, pick):
        """Event handles pickled alongside the kernel stay live: cancelling
        through a restored handle must move the restored kernel's pending
        count (pickle-memo aliasing, which the federation snapshots lean on)."""
        sim = Simulator()
        rec = SnapshotRecorder()
        handles: list = []
        model = Model()
        apply_picklable_ops(op_list, sim, rec, handles, model)
        sim2, rec2, handles2 = pickle.loads(pickle.dumps((sim, rec, handles)))
        live = [h for h in handles2 if event_pending(h)]
        assert len(live) == sim2.pending
        if live:
            target = live[pick % len(live)]
            before = sim2.pending
            sim2.cancel(target)
            assert sim2.pending == before - 1

    def test_corpse_at_heap_top_survives_snapshot(self):
        """Deterministic pin: cancel the earliest event so a corpse sits at
        the heap top, snapshot, and check the counter round-trips and that
        a restored peek() pops the corpse without going negative."""
        sim = Simulator()
        rec = SnapshotRecorder()
        first = sim.schedule(1.0, rec.hit, 0)
        sim.schedule(2.0, rec.hit, 1)
        sim.cancel(first)
        assert sim._cancelled_in_heap == 1 and sim.pending == 1

        sim2, rec2 = pickle.loads(pickle.dumps((sim, rec)))
        assert sim2._cancelled_in_heap == 1 and sim2.pending == 1
        assert sim2.peek() == 2.0  # pops the corpse, accounting follows
        assert sim2._cancelled_in_heap == 0 and sim2.pending == 1
        # snapshot again in the post-peek window: still exact
        sim3, rec3 = pickle.loads(pickle.dumps((sim2, rec2)))
        assert sim3._cancelled_in_heap == 0 and sim3.pending == 1
        sim3.run()
        assert rec3.seen == [1] and sim3.pending == 0


class TestCompaction:
    def test_mass_cancel_compacts_and_preserves_behavior(self):
        """Cancelling >1/2 of a big queue sweeps it without changing what
        fires -- and pending stays exact throughout."""
        sim = Simulator()
        seen = []
        events = [sim.schedule(float(i % 97), seen.append, i) for i in range(1000)]
        survivors = []
        for i, ev in enumerate(events):
            if i % 3 == 0:
                survivors.append(i)
            else:
                sim.cancel(ev)
                assert sim.pending == 1000 - (i - len(survivors) + 1)
        # compaction happened: the internal queue holds ~ the live entries
        assert len(sim._queue) < 1000
        assert sim.pending == len(survivors)
        sim.run()
        assert sorted(seen) == survivors
        assert sim.processed == len(survivors)
        # time order was respected
        times = [i % 97 for i in seen]
        assert times == sorted(times)

    def test_digest_unaffected_by_compaction(self):
        def drive(cancel_fraction):
            sim = Simulator()
            digest = TraceDigest()
            sim.attach_digest(digest)
            events = [sim.schedule(float(i % 13), lambda: None) for i in range(500)]
            # cancel the same set either way; fraction only changes whether
            # the sweep triggers (cancel order differs, behavior must not)
            doomed = [ev for i, ev in enumerate(events) if i % 2 == 0]
            if cancel_fraction == "interleaved":
                for ev in doomed:
                    sim.cancel(ev)
            else:
                for ev in reversed(doomed):
                    sim.cancel(ev)
            sim.run()
            return digest.hexdigest(), sim.processed

        assert drive("interleaved") == drive("reversed")
